"""F3 — regenerate Figure 3 (the application view, ER diagram).

Artifact: the client / company-stock / trade ER diagram as ASCII.
Benchmark: schema construction + validation + rendering, and the
ER→relational instantiation the view ultimately feeds.
"""

from conftest import emit

from repro.er.diagram import render_er_diagram
from repro.er.relational_mapping import er_to_relational
from repro.er.validation import validate_er_schema
from repro.experiments.scenarios import trading_er_schema


def _build_and_render() -> str:
    er = trading_er_schema()
    assert validate_er_schema(er) == []
    return render_er_diagram(
        er, title="Figure 3: Application view", legend=False
    )


def test_figure3_application_view(benchmark):
    artifact = benchmark(_build_and_render)
    emit("F3: Figure 3 (application view)", artifact)
    # The figure's content, per §3.1.
    assert "account_number: STR <*key*>" in artifact
    assert "ticker_symbol: STR <*key*>" in artifact
    assert "share_price: FLOAT" in artifact
    assert "research_report: STR" in artifact
    assert "<trade>  client (N) --- company_stock (N)" in artifact
    for attribute in (". date: DATE", ". quantity: INT", ". trade_price: FLOAT"):
        assert attribute in artifact


def test_figure3_relational_instantiation(benchmark):
    er = trading_er_schema()
    database = benchmark(er_to_relational, er)
    assert set(database.relation_names) == {"client", "company_stock", "trade"}
    # Keys and FKs wired.
    assert database.relation("client").schema.key == ("account_number",)
    fk_names = {c.name for c in database.constraints}
    assert "fk_trade_client" in fk_names
    assert "fk_trade_company_stock" in fk_names
