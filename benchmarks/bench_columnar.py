"""Columnar execution — the vectorized access path for base relations.

Not a paper artifact: a performance ablation of the QSQL engine.  The
planner routes scan-heavy statements over plain relations through
array-per-column batches with selection vectors (DESIGN.md §12); this
benchmark quantifies that choice against the row-at-a-time planned
path and the naive AST-walking reference on the same statement.

All legs are measured *interleaved* (the naive baseline is re-timed in
the same rounds as the fast paths), and every speedup recorded in
BENCH_COLUMNAR.json is a ratio of same-round numbers.
"""

from conftest import emit

from repro.relational.relation import Relation
from repro.relational.schema import Column, RelationSchema
from repro.sql import clear_plan_cache, execute

N_ROWS = 20_000

READINGS_SCHEMA = RelationSchema(
    "readings",
    [
        Column("sensor_id", "INT"),
        Column("reading", "FLOAT"),
        Column("station", "STR"),
        Column("grade", "INT"),
    ],
)

#: Equality-led conjunction: the leading ``station =`` runs as a
#: C-level ``list.index`` hop over the whole array, and the remaining
#: predicates only probe its survivors — the access pattern the
#: columnar path is designed around (DESIGN.md §12).
QUERY = (
    "SELECT sensor_id, reading FROM readings "
    "WHERE station = 'st_7' AND reading >= 1000.0 AND grade IN (1, 2) "
    "ORDER BY reading DESC LIMIT 50"
)


_CACHE = {}


def _relation():
    if "rel" not in _CACHE:
        _CACHE["rel"] = Relation.from_tuples(
            READINGS_SCHEMA,
            [
                (
                    i,
                    None if i % 17 == 0 else float(i * 7919 % 10_000),
                    f"st_{i % 11}",
                    i % 5,
                )
                for i in range(N_ROWS)
            ],
        )
    return _CACHE["rel"]


def test_columnar_plan_chosen():
    """The planner must actually route this statement through arrays."""
    clear_plan_cache()
    plan = "\n".join(
        row["plan"] for row in execute(f"EXPLAIN {QUERY}", _relation())
    )
    assert "Scan [readings (plain, columnar)]" in plan
    assert "Materialize [columnar -> rows]" in plan
    row_plan = "\n".join(
        row["plan"]
        for row in execute(f"EXPLAIN {QUERY}", _relation(), columnar=False)
    )
    assert "columnar" not in row_plan


def test_columnar_json_vs_row_vs_naive():
    """Emit BENCH_COLUMNAR.json: vectorized vs row path vs naive.

    Floors enforced by the bench-trend CI gate: the columnar path must
    hold 4x over the row-at-a-time planned path on this scan-heavy
    statement (measured ~9x on a quiet machine, derated for CI noise),
    and its advantage over the naive reference must be at least as
    large.
    """
    from conftest import REPO_ROOT, best_seconds_interleaved

    from repro.experiments.harness import bench_record, write_bench_json
    from repro.experiments.naive import naive_execute

    relation = _relation()
    relation.columnar_store()  # build outside the timed region

    clear_plan_cache()
    columnar_result = execute(QUERY, relation)  # warm the plan cache
    row_result = execute(QUERY, relation, columnar=False)
    naive_result = naive_execute(QUERY, relation)
    canonical = lambda rel: [r.values_tuple() for r in rel]
    assert canonical(columnar_result) == canonical(row_result)
    assert canonical(columnar_result) == canonical(naive_result)
    assert 0 < len(columnar_result) <= 50

    columnar_s, row_s, naive_s = best_seconds_interleaved(
        [
            lambda: execute(QUERY, relation),
            lambda: execute(QUERY, relation, columnar=False),
            lambda: naive_execute(QUERY, relation),
        ]
    )
    vs_row = row_s / columnar_s
    vs_naive = naive_s / columnar_s
    write_bench_json(
        "BENCH_COLUMNAR.json",
        [
            bench_record(
                "columnar_scan_filter_topk",
                N_ROWS,
                columnar_s,
                speedup=vs_row,
            ),
            bench_record(
                "columnar_vs_naive",
                N_ROWS,
                columnar_s,
                speedup=vs_naive,
            ),
            bench_record("row_scan_filter_topk", N_ROWS, row_s, speedup=1.0),
            bench_record(
                "naive_scan_filter_topk", N_ROWS, naive_s,
                speedup=row_s / naive_s if naive_s else 1.0,
            ),
        ],
        REPO_ROOT,
    )
    emit(
        "Columnar: vectorized vs row vs naive",
        f"columnar {columnar_s * 1e3:.2f} ms, row {row_s * 1e3:.2f} ms, "
        f"naive {naive_s * 1e3:.2f} ms over {N_ROWS} rows\n"
        f"columnar vs row:   {vs_row:.1f}x\n"
        f"columnar vs naive: {vs_naive:.1f}x",
    )
    assert vs_row >= 4.0
    assert vs_naive >= vs_row
