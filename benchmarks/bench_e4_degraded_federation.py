"""E4: fault-tolerant federation — retry-path overhead and degradation.

Two claims are measured (ISSUE 5 / DESIGN §11):

- *Overhead*: with zero injected faults, routing every export through
  the full fault-tolerance machinery (``UnreliableSource`` → breaker
  check → retry loop → report assembly) costs at most 10% over the
  direct ``union_all`` path.  The retry layer must be cheap enough to
  leave on everywhere.
- *Degradation*: at a 30% injected error rate the tolerant union still
  returns a partial result, and the degraded-source report matches the
  injector's decision log exactly.  This is recorded for context, not
  gated — how many sources fail is a property of the seed.

All time inside the federation (injected latency, backoff, acquisition
stamps) flows through a ``ManualClock``, so wall-clock measurements see
only real compute.
"""

from conftest import REPO_ROOT, best_seconds_interleaved, emit

from repro.experiments.harness import bench_record, write_bench_json
from repro.experiments.scenarios import degraded_federation
from repro.polygen.faults import FederationResult

N_SOURCES = 3
N_ROWS = 400


def test_e4_degraded_federation_json():
    """Emit BENCH_E4.json: zero-fault retry-path overhead <= 1.10x."""
    # Identical data in both federations; only the acquisition path
    # differs (plain LocalDatabase vs the zero-fault retry machinery).
    direct, _, _ = degraded_federation(
        n_sources=N_SOURCES, n_rows=N_ROWS, error_rate=0.0
    )
    for name in direct.database_names:
        direct._locals[name] = direct._locals[name].local  # unwrap
    tolerant, _, _ = degraded_federation(
        n_sources=N_SOURCES, n_rows=N_ROWS, error_rate=0.0
    )

    baseline = direct.union_all("quotes")
    via_retry = tolerant.union_all("quotes", require_all=True)
    assert isinstance(via_retry, FederationResult)
    assert not via_retry.is_degraded
    assert via_retry.relation.rows == baseline.rows  # byte-identical

    direct_s, retry_s = best_seconds_interleaved(
        [
            lambda: direct.union_all("quotes"),
            lambda: tolerant.union_all("quotes", require_all=True),
        ],
        repeats=15,
    )
    overhead = retry_s / direct_s

    # Context: the same federation under a 30% injected error rate.
    degraded, injectors, _ = degraded_federation(
        n_sources=N_SOURCES, n_rows=N_ROWS, error_rate=0.3
    )
    result = degraded.union_all("quotes", require_all=False)
    for name, report in result.reports.items():
        assert report.attempts == injectors[name].calls_for(name)
    n_degraded = len(result.degraded_sources)

    def run_degraded():
        # Replay the exact same acquisition every repeat: the injector
        # rng and breaker state are otherwise stateful across calls.
        for name, injector in injectors.items():
            injector.reset()
            degraded._locals[name].breaker.reset()
        return degraded.union_all("quotes", require_all=False)

    degraded_s = best_seconds_interleaved([run_degraded], repeats=9)[0]

    n = N_SOURCES * N_ROWS
    write_bench_json(
        "BENCH_E4.json",
        [
            bench_record("e4_federation_direct", n, direct_s),
            bench_record(
                "e4_federation_retry_zero_fault", n, retry_s,
                overhead=overhead,
            ),
            bench_record(
                "e4_federation_degraded_30pct", n, degraded_s,
                error_rate=0.3,
                degraded_sources=n_degraded,
            ),
        ],
        REPO_ROOT,
    )
    emit(
        "E4: fault-tolerant federation",
        f"direct union_all          {direct_s * 1e3:.3f} ms\n"
        f"retry path, zero fault    {retry_s * 1e3:.3f} ms "
        f"({overhead:.3f}x)\n"
        f"30% faults, partial union {degraded_s * 1e3:.3f} ms "
        f"({n_degraded}/{N_SOURCES} sources degraded)",
    )
    # The CI-enforced ceiling: fault tolerance at zero fault rate is
    # within 10% of the direct path.
    assert overhead <= 1.10
