"""E5 — the administrator's toolkit: SPC alarm + electronic trail.

§4: the administrator monitors and controls data quality and, "in
handling an exceptional situation, such as tracking an erred
transaction", follows the electronic trail.

Workload: a manufacturing stream whose collection device degrades
mid-run (error rate steps from 1% to 40%).  The p-chart built from
inspection batches must flag the process *after* the step change; the
trail must reconstruct an erred datum's full manufacturing history.
"""

import datetime as dt

from conftest import emit

from repro.experiments.reporting import TextTable
from repro.manufacturing.collection import CollectionMethod
from repro.manufacturing.generator import make_companies
from repro.manufacturing.pipeline import ManufacturingPipeline
from repro.manufacturing.sources import DataSource
from repro.manufacturing.world import World
from repro.quality.spc import p_chart
from repro.relational.schema import schema

N_COMPANIES = 600
DEGRADE_AT = 400  # entity index where the device fails
BATCH = 50


def _run_stream():
    companies = make_companies(N_COMPANIES, seed=21)
    world = World(dt.date(1991, 1, 1), companies, seed=21)
    method = CollectionMethod("voice_decoder", 0.01, seed=21)
    source = DataSource("registry", world, error_rate=0.0, seed=21)
    pipeline = ManufacturingPipeline(
        world,
        schema(
            "customer",
            [("co_name", "STR"), ("address", "STR")],
            key=["co_name"],
        ),
        "co_name",
    )
    pipeline.assign("address", source, method)
    keys = list(world.keys)
    pipeline.manufacture(keys=keys[:DEGRADE_AT])
    method.degrade(0.40)
    pipeline.manufacture(keys=keys[DEGRADE_AT:])
    return pipeline


def test_e5_spc_detects_degraded_device(benchmark):
    pipeline = _run_stream()
    counts, sizes = pipeline.defect_counts_by_batch(BATCH)

    chart = benchmark(p_chart, counts, sizes, DEGRADE_AT // BATCH)
    emit("E5: p-chart over the manufactured stream", chart.render())

    signal = chart.first_signal_index()
    change_batch = DEGRADE_AT // BATCH
    table = TextTable(["metric", "value"], title="E5: detection summary")
    table.add_row(["batches", len(counts)])
    table.add_row(["step change at batch", change_batch])
    table.add_row(["first SPC signal at batch", signal])
    emit("E5: detection", table.render())

    # Shape: no false alarm before the change; detection at/after it,
    # and quickly (within two batches).
    assert signal is not None
    assert change_batch <= signal <= change_batch + 2
    pre_change_signals = [
        p.index for p in chart.signals if p.index < change_batch
    ]
    assert pre_change_signals == []


def test_e5_trail_traces_erred_datum(benchmark):
    pipeline = _run_stream()
    erred = next(
        record
        for record in pipeline.manufactured
        if record.erroneous
    )

    trace = benchmark(
        pipeline.trail.trace_erred_transaction, "customer", (erred.key,)
    )
    emit(
        "E5: electronic trail of an erred datum",
        "\n".join(event.summary() for event in trace["events"]),
    )
    assert trace["steps"] == ["collected", "captured", "inserted"]
    assert "registry" in trace["actors"]
    assert "voice_decoder" in trace["actors"]
    # The trail records the corrupted capture.
    captured_events = [
        event for event in trace["events"] if event.step == "captured"
    ]
    assert captured_events[0].detail["value"] == erred.value


def test_e5_per_method_defect_attribution(benchmark):
    """The administrator's report: defects attributed per collection
    method — the evidence behind a device-replacement decision."""
    pipeline = _run_stream()
    stats = benchmark(pipeline.defect_counts_by_method)
    defects, total = stats["voice_decoder"]
    emit(
        "E5: defect attribution",
        f"voice_decoder: {defects}/{total} defective "
        f"({defects / total:.1%})",
    )
    # Overall defect rate sits between the clean and degraded rates.
    assert 0.01 < defects / total < 0.40
