"""T2 — regenerate Table 2 (customer information with quality tags).

Artifact: the paper's tagged relation, rendered cell-by-cell with
``value (date, source)`` tags.
Benchmark: tag lookup and quality-filtered retrieval over a scaled
tagged relation.
"""

from conftest import emit

from repro.experiments.scenarios import customer_database, table2_relation
from repro.tagging.query import QualityQuery


def test_table2_canonical(benchmark):
    relation = benchmark(table2_relation)
    artifact = relation.render(
        title="Table 2: Customer information with quality tags"
    )
    emit("T2: Table 2 (canonical)", artifact)
    assert "62 Lois Av (10-24-91, acct'g)" in artifact
    assert "700 (10-09-91, estimate)" in artifact
    assert "12 Jay St (01-02-91, sales)" in artifact
    assert "4004 (10-03-91, Nexis)" in artifact


def test_table2_filtering_example(benchmark):
    """The manager's judgment made executable: drop estimate-sourced
    employee counts."""
    relation = table2_relation()

    def run_query():
        return (
            QualityQuery(relation)
            .require("employees", "source", "!=", "estimate")
            .values()
        )

    values = benchmark(run_query)
    assert values == [
        {"co_name": "Fruit Co", "address": "12 Jay St", "employees": 4004}
    ]


def test_table2_scaled_tag_lookup(benchmark):
    _, _, relation = customer_database(n_companies=300, seed=2, simulated_days=60)

    def count_estimates():
        return sum(
            1
            for row in relation
            if row["employees"].tag_value("source") == "estimate"
        )

    count = benchmark(count_estimates)
    assert count == 300  # all employee counts routed via the estimate source
