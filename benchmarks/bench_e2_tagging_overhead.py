"""E2 — the cost of tags: storage and query overhead vs. untagged data.

The paper acknowledges "cost-benefit tradeoffs in tagging and tracking
data quality must be considered" (§4) but never quantifies them.  This
experiment does: the same customer data is stored untagged
(:class:`Relation`) and tagged (:class:`TaggedRelation`) across tag
densities, and we measure build time, scan time, and stored-object
counts.

Expected shape: overhead grows with tag density (0 → 3 tags/cell);
tagged scans are a constant factor slower than untagged scans; tagging
never changes query *answers* (values are identical).
"""

import datetime as dt

from conftest import emit

from repro.experiments.reporting import TextTable, render_series
from repro.experiments.scenarios import CUSTOMER_SCHEMA
from repro.manufacturing.generator import make_companies
from repro.relational.relation import Relation
from repro.tagging.cell import QualityCell
from repro.tagging.indicators import IndicatorDefinition, IndicatorValue, TagSchema
from repro.tagging.relation import TaggedRelation

N_ROWS = 800

_ALL_INDICATORS = [
    IndicatorDefinition("source", "STR"),
    IndicatorDefinition("creation_time", "DATE"),
    IndicatorDefinition("collection_method", "STR"),
]


def _rows():
    companies = make_companies(N_ROWS, seed=6)
    return [
        {"co_name": name, **values} for name, values in companies.items()
    ]


def _tags_for(density: int, row_index: int) -> list[IndicatorValue]:
    tags = [
        IndicatorValue("source", "acct'g"),
        IndicatorValue(
            "creation_time", dt.date(1991, 1, 1) + dt.timedelta(days=row_index % 300)
        ),
        IndicatorValue("collection_method", "manual_entry"),
    ]
    return tags[:density]


def _build_tagged(rows, density: int) -> TaggedRelation:
    names = [d.name for d in _ALL_INDICATORS[:density]]
    tag_schema = TagSchema(
        indicators=_ALL_INDICATORS[:density],
        allowed={
            "address": names,
            "employees": names,
        }
        if density
        else None,
    )
    relation = TaggedRelation(CUSTOMER_SCHEMA, tag_schema)
    for i, row in enumerate(rows):
        relation.insert(
            {
                "co_name": row["co_name"],
                "address": QualityCell(row["address"], _tags_for(density, i)),
                "employees": QualityCell(row["employees"], _tags_for(density, i)),
            }
        )
    return relation


def test_e2_build_untagged_baseline(benchmark):
    rows = _rows()
    relation = benchmark(Relation.from_dicts, CUSTOMER_SCHEMA, rows)
    assert len(relation) == N_ROWS


def test_e2_build_tagged_density3(benchmark):
    rows = _rows()
    relation = benchmark(_build_tagged, rows, 3)
    assert relation.tag_count() == N_ROWS * 2 * 3


def test_e2_overhead_curve(benchmark):
    """One benchmark run sweeps densities and reports the curve."""
    rows = _rows()

    def sweep():
        import time

        results = []
        for density in (0, 1, 2, 3):
            # Noise-robust: best of three measurements.
            build_seconds = float("inf")
            scan_seconds = float("inf")
            for _ in range(3):
                start = time.perf_counter()
                relation = _build_tagged(rows, density)
                build_seconds = min(
                    build_seconds, time.perf_counter() - start
                )
                start = time.perf_counter()
                count = sum(
                    1 for r in relation if r.value("employees") > 1000
                )
                scan_seconds = min(scan_seconds, time.perf_counter() - start)
            results.append(
                {
                    "density": density,
                    "build_s": build_seconds,
                    "scan_s": scan_seconds,
                    "tags": relation.tag_count(),
                    "answer": count,
                }
            )
        return results

    results = benchmark.pedantic(sweep, rounds=3, iterations=1)
    table = TextTable(
        ["tags/cell", "build_s", "scan_s", "stored_tags", "rows_matching"],
        title=f"E2: tagging overhead over {N_ROWS} rows",
    )
    for entry in results:
        table.add_row(
            [
                entry["density"],
                entry["build_s"],
                entry["scan_s"],
                entry["tags"],
                entry["answer"],
            ]
        )
    emit("E2: tagging overhead", table.render())
    emit(
        "E2: build-time curve",
        render_series(
            "tags/cell",
            "build seconds",
            [(e["density"], e["build_s"]) for e in results],
        ),
    )
    # Shape: answers identical regardless of tags; storage grows
    # linearly in density; build cost grows monotonically (weakly).
    answers = {entry["answer"] for entry in results}
    assert len(answers) == 1
    tag_counts = [entry["tags"] for entry in results]
    assert tag_counts == [0, N_ROWS * 2, N_ROWS * 4, N_ROWS * 6]
    assert results[-1]["build_s"] > results[0]["build_s"]


def test_e2_ablation_per_cell_vs_columnar(benchmark):
    """DESIGN.md §7 ablation: per-cell tag objects vs a columnar side
    table.  Both must answer identically; the columnar scan touches one
    array and is expected to win on filter latency."""
    import time

    from repro.tagging.columnar import ColumnarTagStore
    from repro.tagging.query import QualityQuery

    rows = _rows()
    tagged = _build_tagged(rows, 3)
    store = ColumnarTagStore.from_tagged_relation(tagged)

    def per_cell_filter():
        return (
            QualityQuery(tagged)
            .require("address", "source", "==", "acct'g")
            .count()
        )

    def columnar_filter():
        return len(
            store.filter_indices("address", "source", "==", "acct'g")
        )

    # Equivalence first.
    assert per_cell_filter() == columnar_filter() == N_ROWS

    def measure():
        best_cell = min(
            _timed(per_cell_filter) for _ in range(3)
        )
        best_columnar = min(
            _timed(columnar_filter) for _ in range(3)
        )
        return best_cell, best_columnar

    def _timed(fn):
        start = time.perf_counter()
        fn()
        return time.perf_counter() - start

    per_cell_s, columnar_s = benchmark.pedantic(measure, rounds=3, iterations=1)
    emit(
        "E2 ablation: tag representation",
        f"per-cell filter:  {per_cell_s * 1e3:.3f} ms\n"
        f"columnar filter:  {columnar_s * 1e3:.3f} ms\n"
        f"columnar speedup: {per_cell_s / columnar_s:.1f}x",
    )
    # The columnar layout's one-array scan should not lose.
    assert columnar_s <= per_cell_s


def test_e2_json_fast_vs_naive_scan():
    """Emit BENCH_E2.json: compiled and columnar tagged scans vs naive.

    10 000 density-3 tagged rows filtered on one indicator constraint.
    The fast path resolves column positions once and moves surviving
    rows through the trusted insert; the columnar path scans one
    contiguous tag array and gathers survivors late; the naive path
    re-resolves names per row and re-validates every value and tag.
    All three legs are timed interleaved so each speedup is a ratio of
    same-round measurements (the naive baseline is never reused from a
    different run).  Floors: 2x (fast), 10x (columnar).
    """
    from conftest import REPO_ROOT, best_seconds_interleaved

    from repro.experiments.harness import bench_record, write_bench_json
    from repro.experiments.naive import naive_quality_filter
    from repro.tagging.query import IndicatorConstraint, QualityFilter

    n = 10_000
    names = [d.name for d in _ALL_INDICATORS]
    tag_schema = TagSchema(
        indicators=_ALL_INDICATORS,
        allowed={"address": names, "employees": names},
    )
    relation = TaggedRelation(CUSTOMER_SCHEMA, tag_schema)
    for i in range(n):
        relation.insert(
            {
                "co_name": f"co_{i}",
                "address": QualityCell(f"{i} Main St", _tags_for(3, i)),
                "employees": QualityCell(i % 5000, _tags_for(3, i)),
            }
        )
    grade = QualityFilter(
        [IndicatorConstraint("address", "source", "==", "acct'g")],
        name="bench_scan",
    )

    fast_result = grade.apply(relation)
    columnar_result = grade.apply_columnar(relation)
    naive_result = naive_quality_filter(relation, grade)
    assert len(fast_result) == len(naive_result) == n
    assert [r.cells for r in columnar_result] == [
        r.cells for r in naive_result
    ]

    relation.columnar_store()  # build outside the timed region
    fast_s, columnar_s, naive_s = best_seconds_interleaved(
        [
            lambda: grade.apply(relation),
            lambda: grade.apply_columnar(relation),
            lambda: naive_quality_filter(relation, grade),
        ]
    )
    speedup = naive_s / fast_s
    columnar_speedup = naive_s / columnar_s
    write_bench_json(
        "BENCH_E2.json",
        [
            bench_record("e2_tagged_scan_fast", n, fast_s, speedup=speedup),
            bench_record(
                "e2_tagged_scan_columnar",
                n,
                columnar_s,
                speedup=columnar_speedup,
            ),
            bench_record("e2_tagged_scan_naive", n, naive_s, speedup=1.0),
        ],
        REPO_ROOT,
    )
    emit(
        "E2: fast vs naive tagged scan",
        f"fast {fast_s * 1e3:.1f} ms, columnar {columnar_s * 1e3:.1f} ms, "
        f"naive {naive_s * 1e3:.1f} ms; speedups {speedup:.1f}x / "
        f"{columnar_speedup:.1f}x over {n} rows",
    )
    assert speedup >= 2.0
    assert columnar_speedup >= 10.0
