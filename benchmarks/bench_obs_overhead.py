"""Observability overhead: instrumentation must be ~free when off.

The obs layer threads a ``stats`` slot through every compiled physical
operator and installs one thin timing wrapper per operator at compile
time.  The contract (ISSUE 4 / DESIGN §10): with instrumentation
*disabled* — no collector passed, ambient flag off — the E2 hot path
(a selective columnar tag scan over a wide tagged relation) pays under
5% versus a plan compiled with no wrappers at all
(``compile_plan(..., instrument=False)``).

Three measured configurations, coldest machinery stripped away so the
ratio isolates exactly the wrapper + ``stats is None`` checks:

- *baseline*: uninstrumented compiled plan, executed directly;
- *disabled*: normally compiled plan (wrappers installed), ``stats``
  left ``None`` — the default production path;
- *enabled*: same plan executed against a fresh ``ExecutionStats``
  tree per call (what ``EXPLAIN ANALYZE`` pays).
"""

from conftest import REPO_ROOT, best_seconds, best_seconds_interleaved, emit

from repro.experiments.harness import bench_record, write_bench_json
from repro.obs import enabled as obs_enabled
from repro.sql import clear_plan_cache, execute, optimize, parse
from repro.sql.optimizer import PlanContext
from repro.sql.physical import compile_plan
from repro.sql.plan import logical_plan


def _ticks_relation(n=30000):
    """A wide tagged relation for planner scan benchmarks."""
    from repro.relational.schema import Column, RelationSchema
    from repro.tagging.cell import QualityCell
    from repro.tagging.indicators import (
        IndicatorDefinition,
        IndicatorValue,
        TagSchema,
    )
    from repro.tagging.relation import TaggedRelation

    schema = RelationSchema(
        "ticks", [Column("ticker", "STR"), Column("price", "FLOAT")]
    )
    tags = TagSchema(
        [IndicatorDefinition("source", "STR"), IndicatorDefinition("age", "INT")],
        allowed={"price": ["source", "age"]},
    )
    relation = TaggedRelation(schema, tags)
    for i in range(n):
        relation.insert(
            {
                "ticker": f"T{i % 500}",
                "price": QualityCell(
                    float(i % 997),
                    [
                        IndicatorValue(
                            "source", "reuters" if i % 50 else "manual"
                        ),
                        IndicatorValue("age", i % 30),
                    ],
                ),
            }
        )
    return relation


SQL = (
    "SELECT ticker, price FROM ticks "
    "WHERE QUALITY(price.source) = 'manual' AND price > 10 "
    "ORDER BY price DESC LIMIT 50"
)


def test_obs_overhead_json():
    """Emit BENCH_OBS.json: disabled-instrumentation overhead < 5%."""
    assert not obs_enabled()  # the ambient flag must be off by default

    n = 30000
    ticks = _ticks_relation(n)
    ticks.columnar_store()  # build outside the timed region
    binding = {"ticks": ticks}

    statement = parse(SQL)
    plan = optimize(
        logical_plan(statement, tagged=True),
        PlanContext.from_relations(binding),
    )
    bare = compile_plan(plan, binding, instrument=False)
    instrumented = compile_plan(plan, binding)

    expected = len(bare.execute(binding))
    assert len(instrumented.execute(binding)) == expected
    stats = instrumented.new_stats()
    assert len(instrumented.execute(binding, stats)) == expected
    assert stats.rows == expected

    # Interleaved so frequency drift hits all three configurations
    # alike: the disabled/baseline ratio is the contract under test and
    # their true difference is a handful of wrapper calls per batch.
    baseline_s, disabled_s, enabled_s = best_seconds_interleaved(
        [
            lambda: bare.execute(binding),
            lambda: instrumented.execute(binding),
            lambda: instrumented.execute(binding, instrumented.new_stats()),
        ],
        repeats=25,
    )
    disabled_overhead = disabled_s / baseline_s
    enabled_overhead = enabled_s / baseline_s

    # The full entry point with the cache warm, for context: this is
    # what applications actually call with instrumentation off.
    clear_plan_cache()
    execute(SQL, ticks)
    full_s = best_seconds(lambda: execute(SQL, ticks), repeats=9)

    # Verified mode, for the record (no CI bound): the same warm-cache
    # entry point with REPRO_VERIFY_PLANS=1, which re-audits the cache
    # entry (DQ409) and runs the columnar sanitizer on every hit.
    import os

    os.environ["REPRO_VERIFY_PLANS"] = "1"
    try:
        clear_plan_cache()
        execute(SQL, ticks)
        verified_s = best_seconds(lambda: execute(SQL, ticks), repeats=9)
    finally:
        os.environ.pop("REPRO_VERIFY_PLANS", None)
        clear_plan_cache()
    verified_overhead = verified_s / full_s

    write_bench_json(
        "BENCH_OBS.json",
        [
            bench_record("obs_baseline_uninstrumented", n, baseline_s),
            bench_record(
                "obs_disabled_execute", n, disabled_s,
                overhead=disabled_overhead,
            ),
            bench_record(
                "obs_enabled_execute", n, enabled_s,
                overhead=enabled_overhead,
            ),
            bench_record("obs_full_execute_warm_cache", n, full_s),
            bench_record(
                "obs_verified_execute", n, verified_s,
                overhead=verified_overhead,
            ),
        ],
        REPO_ROOT,
    )
    emit(
        "Observability overhead (E2 hot path)",
        f"uninstrumented plan  {baseline_s * 1e3:.3f} ms\n"
        f"instrumented, off    {disabled_s * 1e3:.3f} ms "
        f"({disabled_overhead:.3f}x)\n"
        f"instrumented, stats  {enabled_s * 1e3:.3f} ms "
        f"({enabled_overhead:.3f}x)\n"
        f"execute() warm cache {full_s * 1e3:.3f} ms\n"
        f"verified + sanitized {verified_s * 1e3:.3f} ms "
        f"({verified_overhead:.3f}x)",
    )
    # The CI-enforced ceiling: disabled instrumentation stays under 5%.
    assert disabled_overhead <= 1.05
