"""Materialized parameter scoring — incremental rescore + pushdown.

Not a paper artifact: a performance ablation of the scoring subsystem.
A registered :class:`ScoringProfile` materializes one score array per
quality parameter beside the relation's tag store, maintained per
partition: only buckets whose shard version moved since the last
refresh recompute, the rest reuse their block.  The planner pushes
``QUALITY(parameter)`` comparisons into those arrays (ScoreFilter), so
a score-constrained scan never re-runs a scorer per row.

Both speedups recorded in BENCH_SCORING.json are ratios of same-round
interleaved timings: incremental refresh vs a cold full rebuild, and
the pushed-down filter vs the per-cell scoring path (planner off).
"""

from conftest import emit

from repro.experiments.scenarios import customer_database
from repro.quality.materialize import (
    ScoreMaterializer,
    ScoringProfile,
    materializer_for,
    register_profile,
)
from repro.quality.scoring import credibility_scorer, timeliness_scorer
from repro.relational import hash_partitions
from repro.sql import clear_plan_cache, execute
from repro.tagging.cell import QualityCell
from repro.tagging.indicators import IndicatorValue

N_COMPANIES = 3000
N_BUCKETS = 64
SHELF_LIFE_DAYS = 365.0

_CACHE = {}


def _setup():
    """The scaled customer DB, hash-partitioned, with a bound profile."""
    if "relation" not in _CACHE:
        world, _, relation = customer_database(
            n_companies=N_COMPANIES, seed=9
        )
        relation.repartition(hash_partitions("co_name", N_BUCKETS))
        profile = ScoringProfile(
            "bench-scoring",
            [
                credibility_scorer({"acct'g": 0.9, "estimate": 0.3}),
                timeliness_scorer(SHELF_LIFE_DAYS),
            ],
            context={"today": world.today},
            thresholds={"credibility": 0.5},
            doc="benchmark profile: credibility + timeliness",
        )
        register_profile(profile, relations=[relation.schema.name])
        _CACHE["relation"] = relation
        _CACHE["world"] = world
    return _CACHE["relation"], _CACHE["world"]


def _selective_query(relation):
    """A timeliness filter that ~5% of rows pass (threshold from data).

    Timeliness varies per row (creation times spread over the simulated
    half year), so the 95th-percentile score makes a stable, selective
    predicate regardless of the manufactured distribution.
    """
    materializer = materializer_for(relation)
    materializer.refresh()
    scores = sorted(
        s for s in materializer.row_scores("timeliness") if s is not None
    )
    threshold = scores[int(len(scores) * 0.95)]
    return (
        "SELECT co_name, employees FROM customer "
        f"WHERE QUALITY(timeliness) > {threshold!r}"
    )


def test_scoring_pushdown_plan_shape():
    """The optimizer must route the score predicate into ScoreFilter."""
    relation, _ = _setup()
    clear_plan_cache()
    plan = "\n".join(
        row["plan"]
        for row in execute(
            "EXPLAIN SELECT co_name FROM customer "
            "WHERE QUALITY(timeliness) > 0.5",
            relation,
        )
    )
    assert "ScoreFilter" in plan
    assert "QUALITY(timeliness) > 0.5" in plan


def test_scoring_json_incremental_and_pushdown():
    """Emit BENCH_SCORING.json: incremental rescore + pushdown speedups.

    Floors enforced by the bench-trend CI gate: refreshing after one
    dirtied bucket must hold 8x over a cold full rebuild (ideal is
    ~64x on this layout, derated for reuse bookkeeping and CI noise),
    and the pushed-down score filter must hold 4x over the per-cell
    scoring path.
    """
    from conftest import REPO_ROOT, best_seconds_interleaved

    from repro.experiments.harness import bench_record, write_bench_json

    relation, world = _setup()
    materializer = materializer_for(relation)
    materializer.refresh()  # every bucket warm
    counter = {"n": 0}

    def mutate_one_bucket():
        # One insert routes to exactly one hash bucket; the other 63
        # shard versions are untouched, so refresh() reuses them.
        tags = lambda: [  # noqa: E731 - fresh IndicatorValues per cell
            IndicatorValue("creation_time", world.today),
            IndicatorValue("source", "acct'g"),
        ]
        relation.insert(
            {
                "co_name": f"bench_co_{counter['n']}",
                "address": QualityCell(f"{counter['n']} Bench St", tags()),
                "employees": QualityCell(100 + counter["n"], tags()),
            }
        )
        counter["n"] += 1

    def incremental_refresh():
        mutate_one_bucket()
        materializer.refresh()

    def full_rebuild():
        # A fresh materializer has no blocks: every bucket recomputes.
        ScoreMaterializer(relation).refresh()

    incremental_s, full_s = best_seconds_interleaved(
        [incremental_refresh, full_rebuild], repeats=3
    )
    rescore_speedup = full_s / incremental_s

    query = _selective_query(relation)
    canonical = lambda rel: sorted(r.values_tuple() for r in rel)  # noqa: E731
    clear_plan_cache()
    pushed_result = execute(query, relation)
    percell_result = execute(query, relation, planner=False)
    assert 0 < len(pushed_result) < len(relation)
    assert canonical(pushed_result) == canonical(percell_result)

    pushed_s, percell_s = best_seconds_interleaved(
        [
            lambda: execute(query, relation),
            lambda: execute(query, relation, planner=False),
        ]
    )
    filter_speedup = percell_s / pushed_s

    write_bench_json(
        "BENCH_SCORING.json",
        [
            bench_record(
                "scoring_incremental_rescore",
                len(relation),
                incremental_s,
                speedup=rescore_speedup,
            ),
            bench_record(
                "scoring_pushdown_filter",
                len(relation),
                pushed_s,
                speedup=filter_speedup,
            ),
            bench_record(
                "scoring_full_rebuild", len(relation), full_s, speedup=1.0
            ),
            bench_record(
                "scoring_percell_filter",
                len(relation),
                percell_s,
                speedup=1.0,
            ),
        ],
        REPO_ROOT,
    )
    emit(
        "Scoring: incremental rescore + pushed-down filter",
        f"incremental refresh {incremental_s * 1e3:.2f} ms, full rebuild "
        f"{full_s * 1e3:.2f} ms over {len(relation)} rows "
        f"({N_BUCKETS} hash buckets)\n"
        f"pushed filter {pushed_s * 1e3:.2f} ms, per-cell filter "
        f"{percell_s * 1e3:.2f} ms ({len(pushed_result)} hits)\n"
        f"incremental vs full rescore: {rescore_speedup:.1f}x\n"
        f"pushdown vs per-cell:        {filter_speedup:.1f}x",
    )
    assert rescore_speedup >= 8.0
    assert filter_speedup >= 4.0
