"""E4 — Step 4 at scale: integrating many quality views.

The paper motivates Step 4 with large designs where "more than one set
of application requirements is involved".  This experiment integrates v
overlapping quality views over one application view and measures:

- integration time vs. v;
- deduplication work (annotations in vs. annotations out);
- derivability reductions found (the age/creation-time rule), as the
  ablation of the keep-both alternative.

Expected shape: output annotations ≪ input annotations as overlap
grows; derivability reductions occur whenever both members of a rule
pair survive at one target; integration time grows with v.
"""

import time

from conftest import emit

from repro.core.integration import integrate_views
from repro.core.terminology import QualityIndicatorSpec
from repro.core.views import ApplicationView, IndicatorAnnotation, QualityView
from repro.experiments.reporting import TextTable
from repro.experiments.scenarios import trading_er_schema

#: The indicator pool views draw from (with one derivable pair).
_POOL = [
    QualityIndicatorSpec("source", "STR"),
    QualityIndicatorSpec("creation_time", "DATE"),
    QualityIndicatorSpec("age", "FLOAT"),
    QualityIndicatorSpec("collection_method", "STR"),
    QualityIndicatorSpec("analyst_name", "STR"),
    QualityIndicatorSpec("media", "STR"),
    QualityIndicatorSpec("price", "FLOAT"),
    QualityIndicatorSpec("inspection", "STR"),
]


def _make_views(app_view: ApplicationView, n_views: int) -> list[QualityView]:
    """Deterministically build n overlapping views.

    View i annotates every attribute target with pool indicators i, i+1,
    i+2 (mod pool) — adjacent views overlap on two of three indicators.
    """
    targets = [
        path
        for path in app_view.er_schema.annotation_targets()
        if len(path) == 2
    ]
    views = []
    for view_index in range(n_views):
        view = QualityView(app_view)
        for target_index, target in enumerate(targets):
            for offset in range(3):
                indicator = _POOL[
                    (view_index + target_index + offset) % len(_POOL)
                ]
                annotation = IndicatorAnnotation(
                    target,
                    indicator,
                    derived_from=(f"param_v{view_index}",),
                )
                if not any(a == annotation for a in view.annotations):
                    view.add(annotation)
        views.append(view)
    return views


def test_e4_integration_dedup_and_derivability(benchmark):
    app_view = ApplicationView(trading_er_schema())
    views = _make_views(app_view, 8)
    input_annotations = sum(len(v.annotations) for v in views)

    schema = benchmark(integrate_views, views)

    output_annotations = len(schema.annotations)
    derivability_notes = [
        note for note in schema.integration_notes if "dropped" in note
    ]
    merge_notes = [
        note for note in schema.integration_notes if "merged" in note
    ]
    table = TextTable(
        ["metric", "value"], title="E4: integration of 8 overlapping views"
    )
    table.add_row(["input annotations", input_annotations])
    table.add_row(["output annotations", output_annotations])
    table.add_row(["duplicate merges", len(merge_notes)])
    table.add_row(["derivability reductions", len(derivability_notes)])
    emit("E4: view integration", table.render())

    assert output_annotations < input_annotations
    assert derivability_notes  # age collapsed into creation_time somewhere
    # Parameter provenance from all views survives integration.
    all_provenance = {
        p for a in schema.annotations for p in a.derived_from
    }
    assert {f"param_v{i}" for i in range(8)} <= all_provenance


def test_e4_scaling_curve(benchmark):
    app_view = ApplicationView(trading_er_schema())

    def sweep():
        results = []
        for v in (2, 4, 8, 16, 32):
            views = _make_views(app_view, v)
            start = time.perf_counter()
            schema = integrate_views(views)
            seconds = time.perf_counter() - start
            results.append(
                {
                    "views": v,
                    "seconds": seconds,
                    "in": sum(len(x.annotations) for x in views),
                    "out": len(schema.annotations),
                }
            )
        return results

    results = benchmark.pedantic(sweep, rounds=3, iterations=1)
    table = TextTable(
        ["views", "annotations in", "annotations out", "seconds"],
        title="E4: integration scaling",
    )
    for entry in results:
        table.add_row(
            [entry["views"], entry["in"], entry["out"], entry["seconds"]]
        )
    emit("E4: scaling", table.render())
    # Shape: the output saturates (the pool is finite) while input grows
    # linearly — integration's dedup ratio improves with overlap.
    ratios = [entry["out"] / entry["in"] for entry in results]
    assert ratios == sorted(ratios, reverse=True)
    assert results[-1]["out"] <= results[-1]["in"] / 4


def test_e4_ablation_no_derivability_rules(benchmark):
    """Ablation: disable derivability analysis — both members of the
    age/creation-time pair survive, inflating the schema."""
    app_view = ApplicationView(trading_er_schema())
    views = _make_views(app_view, 8)

    with_rules = integrate_views(views)
    without_rules = benchmark(integrate_views, views, rules=())
    emit(
        "E4 ablation",
        f"with derivability rules: {len(with_rules.annotations)} annotations\n"
        f"without:                 {len(without_rules.annotations)} annotations",
    )
    assert len(without_rules.annotations) > len(with_rules.annotations)
