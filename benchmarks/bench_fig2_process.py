"""F2 — regenerate Figure 2 (the data quality modeling process).

Artifact: the four-step pipeline run end to end on the trading example,
with each step's input → output named as in the figure.
Benchmark: the full Steps 1-4 run.
"""

from conftest import emit

from repro.experiments.scenarios import run_trading_methodology


def _process_figure(modeling) -> str:
    er = modeling.application_view.er_schema
    parameter_view = modeling.parameter_views[0]
    quality_view = modeling.quality_views[0]
    schema = modeling.quality_schema
    lines = [
        "application requirements",
        "        |",
        "   [Step 1: determine the application view of data]",
        f"        |--> application view ({len(er.entities)} entities, "
        f"{len(er.relationships)} relationships)",
        "        |   + application quality requirements + candidate attributes",
        "   [Step 2: determine (subjective) quality parameters]",
        f"        |--> parameter view ({len(parameter_view.annotations)} "
        f"parameter annotations)",
        "   [Step 3: determine (objective) quality indicators]",
        f"        |--> quality view ({len(quality_view.annotations)} "
        f"indicator annotations)",
        "   [Step 4: quality view integration]",
        f"        |--> quality schema ({len(schema.annotations)} integrated "
        f"annotations, {len(schema.integration_notes)} decisions)",
    ]
    return "\n".join(lines)


def test_figure2_full_process(benchmark):
    modeling = benchmark(run_trading_methodology)
    artifact = _process_figure(modeling)
    emit("F2: Figure 2 (the data quality modeling process)", artifact)
    # Every step produced its artifact.
    assert modeling.application_view is not None
    assert modeling.parameter_views and modeling.quality_views
    assert modeling.quality_schema is not None
    # Step 2 produced the paper's six parameter annotations; Step 3
    # operationalized each into exactly one indicator (Figure 5).
    assert len(modeling.parameter_views[0].annotations) == 6
    assert len(modeling.quality_views[0].annotations) == 6
    # The decision log documents the whole process.
    steps = {d.step for d in modeling.session.decisions}
    assert steps == {"step1", "step2", "step3", "step4"}


def test_figure2_specification_document(benchmark):
    modeling = run_trading_methodology()
    spec = benchmark(modeling.specification)
    emit("F2: specification document (excerpt)", spec[:1200])
    for section in (
        "Application view (Step 1)",
        "Parameter view 1 (Step 2)",
        "Quality view 1 (Step 3)",
        "Integrated quality schema (Step 4)",
    ):
        assert section in spec
