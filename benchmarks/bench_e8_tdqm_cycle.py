"""E8 — the TDQM improvement cycle, measured (§4 / Wang & Kon [27]).

§4: organizational data quality work is "measurement or assessment of
data quality, analysis of impacts ..., and improvement of data quality
through process and systems redesign".  The cycle is runnable on the
simulator, so its effect is a number: after analysis flags the
rumor-mill route and the improve phase swaps in a verified registry,
the next measurement's composite score must rise.

Expected shape: cycle-2 score > cycle-1 score; the flagged column is the
one routed through the bad source; ground-truth accuracy of the
re-manufactured data improves accordingly.
"""

import datetime as dt

from conftest import emit

from repro.core import DataQualityModeling
from repro.core.terminology import QualityIndicatorSpec
from repro.er.model import Entity, ERAttribute, ERSchema
from repro.experiments.reporting import TextTable
from repro.manufacturing.collection import CollectionMethod
from repro.manufacturing.generator import make_companies
from repro.manufacturing.pipeline import ManufacturingPipeline
from repro.manufacturing.sources import DataSource
from repro.manufacturing.world import World
from repro.quality.dimensions import accuracy_against
from repro.quality.scoring import QualityScorecard, credibility_scorer
from repro.quality.tdqm import TDQMCycle
from repro.relational.schema import schema


def _quality_schema():
    er = ERSchema("crm")
    er.add_entity(
        Entity(
            "customer",
            [
                ERAttribute("co_name", "STR"),
                ERAttribute("address", "STR"),
                ERAttribute("employees", "INT"),
            ],
            key=["co_name"],
        )
    )
    modeling = DataQualityModeling()
    app_view = modeling.step1(er)
    param_view = modeling.step2(
        app_view,
        [
            (("customer", "address"), "source_credibility", ""),
            (("customer", "employees"), "source_credibility", ""),
        ],
    )
    quality_view = modeling.step3(
        param_view,
        decisions={
            (("customer", "address"), "source_credibility"): [
                QualityIndicatorSpec("source")
            ],
            (("customer", "employees"), "source_credibility"): [
                QualityIndicatorSpec("source")
            ],
        },
        auto=False,
    )
    return modeling.step4([quality_view])


def _build_cycle():
    world = World(dt.date(1991, 1, 1), make_companies(200, seed=91), seed=91)
    pipeline = ManufacturingPipeline(
        world,
        schema(
            "customer",
            [("co_name", "STR"), ("address", "STR"), ("employees", "INT")],
            key=["co_name"],
        ),
        "co_name",
    )
    pipeline.assign(
        "address",
        DataSource("acct'g", world, error_rate=0.01, seed=91),
        CollectionMethod("scanner", 0.005, seed=91),
    )
    pipeline.assign(
        "employees",
        DataSource("rumor_mill", world, error_rate=0.45, seed=92),
        CollectionMethod("voice_decoder", 0.02, seed=92),
    )
    scorecard = QualityScorecard(
        [
            credibility_scorer(
                {
                    "acct'g": 0.95,
                    "rumor_mill": 0.2,
                    "verified_registry": 0.95,
                }
            )
        ]
    )
    cycle = TDQMCycle(
        _quality_schema(), "customer", scorecard, pipeline,
        deficit_threshold=0.3,
    )
    return world, pipeline, cycle


def test_e8_cycle_improves_scores(benchmark):
    def run_two_cycles():
        world, pipeline, cycle = _build_cycle()
        better = DataSource(
            "verified_registry", world, error_rate=0.03, seed=93
        )
        first, analysis, changes = cycle.run_cycle(
            today=world.today,
            replacement_sources={"employees": better},
        )
        second, _, _ = cycle.run_cycle(today=world.today)
        return world, cycle, first, analysis, changes, second

    world, cycle, first, analysis, changes, second = benchmark.pedantic(
        run_two_cycles, rounds=1, iterations=1
    )

    table = TextTable(
        ["cycle", "conformance", "overall score"],
        title="E8: TDQM cycle-over-cycle",
    )
    for measurement in cycle.measurements:
        table.add_row(
            [
                measurement.cycle,
                "PASS" if measurement.admin_report.conforms else "FAIL",
                measurement.overall_score,
            ]
        )
    emit("E8: TDQM improvement", table.render() + "\n" + "\n".join(changes))

    # Shapes.
    assert analysis.column_deficits[0][0] == "employees"
    assert changes  # the redesign was applied
    assert second.overall_score > first.overall_score


def test_e8_accuracy_follows_score(benchmark):
    """The score is a proxy; ground truth confirms the improvement."""

    def run():
        world, pipeline, cycle = _build_cycle()
        relation_before = pipeline.manufacture()
        accuracy_before = accuracy_against(
            relation_before, world.truth(), "co_name"
        )["employees"]
        better = DataSource(
            "verified_registry", world, error_rate=0.03, seed=93
        )
        measurement = cycle.measure(relation_before, today=world.today)
        analysis = cycle.analyze(measurement)
        cycle.improve(analysis, replacement_sources={"employees": better})
        relation_after = pipeline.manufacture()
        accuracy_after = accuracy_against(
            relation_after, world.truth(), "co_name"
        )["employees"]
        return accuracy_before, accuracy_after

    accuracy_before, accuracy_after = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    emit(
        "E8: ground-truth accuracy",
        f"employees accuracy before redesign: {accuracy_before:.3f}\n"
        f"employees accuracy after redesign:  {accuracy_after:.3f}",
    )
    assert accuracy_after > accuracy_before + 0.2
