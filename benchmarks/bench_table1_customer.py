"""T1 — regenerate Table 1 (untagged customer information).

Artifact: the paper's two-row customer relation, rendered.
Benchmark: building and rendering a scaled (1000-company) variant —
the plain-relation baseline that E2 compares tagging against.
"""

from conftest import emit

from repro.experiments.scenarios import CUSTOMER_SCHEMA, table1_relation
from repro.manufacturing.generator import make_companies
from repro.relational.relation import Relation


def test_table1_canonical(benchmark):
    relation = benchmark(table1_relation)
    artifact = relation.render(title="Table 1: Customer information")
    emit("T1: Table 1 (canonical)", artifact)
    rows = relation.to_dicts()
    assert rows[0] == {
        "co_name": "Fruit Co",
        "address": "12 Jay St",
        "employees": 4004,
    }
    assert rows[1] == {
        "co_name": "Nut Co",
        "address": "62 Lois Av",
        "employees": 700,
    }


def _scaled_relation() -> Relation:
    companies = make_companies(1000, seed=1)
    return Relation.from_dicts(
        CUSTOMER_SCHEMA,
        [
            {"co_name": name, **values}
            for name, values in companies.items()
        ],
    )


def test_table1_scaled_build(benchmark):
    relation = benchmark(_scaled_relation)
    assert len(relation) == 1000
    emit(
        "T1: Table 1 (scaled, first rows)",
        relation.render(max_rows=4, title="customer x1000"),
    )
