"""E6 — Premises 2.1/2.2: per-user quality standards over the same data.

The paper's example: "An investor loosely following a stock may consider
a ten minute delay for share price sufficiently timely, whereas a trader
who needs price quotes in real time may not."

Workload: a tick stream whose ``age`` tags span seconds to days.  Each
user maps the same indicator to a *different* timeliness parameter value
and acceptance threshold; the acceptance-rate matrix shows "data quality
is in the eye of the beholder".

Expected shape: acceptance rates strictly ordered
archivist > investor > trader; every user's filtered view satisfies that
user's own standard exactly.
"""

from conftest import emit

from repro.core.mapping import (
    UserQualityStandard,
    compare_standards,
    timeliness_from_age,
)
from repro.experiments.reporting import TextTable
from repro.experiments.scenarios import trading_ticks

MINUTE = 1 / (24 * 60)


def _standards():
    def accept(timely):
        return timely

    return [
        UserQualityStandard(
            "trader (1 min)",
            mappings=[timeliness_from_age(1 * MINUTE)],
            acceptance={"timeliness": accept},
        ),
        UserQualityStandard(
            "investor (10 min)",
            mappings=[timeliness_from_age(10 * MINUTE)],
            acceptance={"timeliness": accept},
        ),
        UserQualityStandard(
            "archivist (1 day)",
            mappings=[timeliness_from_age(1.0)],
            acceptance={"timeliness": accept},
        ),
    ]


def test_e6_acceptance_matrix(benchmark):
    ticks = trading_ticks(n_ticks=600, seed=31)
    standards = _standards()

    rates = benchmark(compare_standards, standards, ticks, "price")

    table = TextTable(
        ["user", "standard", "acceptance_rate"],
        title="E6: the same ticks, three users",
    )
    for standard in standards:
        table.add_row(
            [
                standard.user,
                standard.mapping("timeliness").doc,
                rates[standard.user],
            ]
        )
    emit("E6: per-user standards", table.render())

    trader, investor, archivist = (rates[s.user] for s in standards)
    assert 0.0 < trader < investor < archivist < 1.0


def test_e6_filtered_views_satisfy_owners(benchmark):
    ticks = trading_ticks(n_ticks=400, seed=31)
    standards = _standards()

    def filter_all():
        return {
            standard.user: standard.filter_relation(ticks, "price")
            for standard in standards
        }

    views = benchmark(filter_all)
    for standard in standards:
        view = views[standard.user]
        # Each user's own view is 100% acceptable to that user.
        assert all(
            standard.accepts_cell(row["price"]) for row in view
        )
    # Strictness ordering carries to view sizes.
    sizes = [len(views[s.user]) for s in standards]
    assert sizes == sorted(sizes)


def test_e6_mapping_vs_derived_age_ablation(benchmark):
    """Ablation of the E4/derivability decision: a user whose mapping
    derives age from creation_time + today answers the same question as
    one reading a precomputed age tag."""
    import datetime as dt

    from repro.core.mapping import timeliness_from_creation_time
    from repro.tagging.cell import QualityCell
    from repro.tagging.indicators import (
        IndicatorDefinition,
        IndicatorValue,
        TagSchema,
    )
    from repro.tagging.relation import TaggedRelation
    from repro.relational.schema import schema

    today = dt.date(1991, 7, 1)
    tag_schema = TagSchema(
        indicators=[
            IndicatorDefinition("age", "FLOAT"),
            IndicatorDefinition("creation_time", "DATE"),
        ],
        allowed={"price": ["age", "creation_time"]},
    )
    relation = TaggedRelation(
        schema("ticks", [("ticker", "STR"), ("price", "FLOAT")]), tag_schema
    )
    for days_old in range(0, 40, 3):
        relation.insert(
            {
                "ticker": f"T{days_old}",
                "price": QualityCell(
                    10.0,
                    [
                        IndicatorValue("age", float(days_old)),
                        IndicatorValue(
                            "creation_time",
                            today - dt.timedelta(days=days_old),
                        ),
                    ],
                ),
            }
        )
    from_age = UserQualityStandard(
        "u", mappings=[timeliness_from_age(10.0)],
        acceptance={"timeliness": lambda t: t},
    )
    from_creation = UserQualityStandard(
        "u", mappings=[timeliness_from_creation_time(10.0)],
        acceptance={"timeliness": lambda t: t},
    )

    def both():
        return (
            from_age.acceptance_rate(relation, "price"),
            from_creation.acceptance_rate(relation, "price", {"today": today}),
        )

    rate_age, rate_creation = benchmark(both)
    emit(
        "E6 ablation",
        f"precomputed-age mapping:     {rate_age:.4f}\n"
        f"derived-from-creation_time:  {rate_creation:.4f}",
    )
    assert rate_age == rate_creation
