"""QSQL — parse/execute cost and equivalence with the fluent API.

Not a paper artifact: an ablation of the *interface* to quality
filtering.  The paper requires "the ability to query over [tags]"; QSQL
provides it to strings.  We verify the string path answers exactly like
the programmatic path and measure its overhead.
"""

import datetime as dt

from conftest import emit

from repro.experiments.scenarios import customer_database
from repro.sql import execute, parse
from repro.tagging.query import QualityQuery

_CACHE = {}


def _relation():
    if "rel" not in _CACHE:
        _, _, relation = customer_database(
            n_companies=300, seed=9, simulated_days=90
        )
        _CACHE["rel"] = relation
    return _CACHE["rel"]


QUERY = (
    "SELECT co_name, employees FROM customer "
    "WHERE employees > 1000 AND QUALITY(employees.source) = 'estimate' "
    "ORDER BY employees DESC LIMIT 20"
)


def test_qsql_parse(benchmark):
    statement = benchmark(parse, QUERY)
    assert statement.relation == "customer"
    assert statement.uses_quality()
    assert statement.limit == 20


def test_qsql_execute_equivalence(benchmark):
    relation = _relation()

    sql_result = benchmark(execute, QUERY, relation)

    fluent_result = (
        QualityQuery(relation)
        .where_value("employees", ">", 1000)
        .require("employees", "source", "==", "estimate")
        .order_by("employees", descending=True)
        .select("co_name", "employees")
        .limit(20)
        .run()
    )
    sql_values = [row.values_dict() for row in sql_result]
    # Column order of projection differs from pipeline order; compare as
    # value dicts after aligning row order by the sort key.
    fluent_values = [row.values_dict() for row in fluent_result]
    assert [v["co_name"] for v in sql_values] == [
        v["co_name"] for v in fluent_values
    ]
    assert len(sql_values) == 20
    emit(
        "QSQL equivalence",
        f"string path rows == fluent path rows == {len(sql_values)}",
    )


def test_qsql_overhead_vs_fluent(benchmark):
    """String interface overhead: parse once per call, filter 300 rows."""
    import time

    relation = _relation()

    def fluent():
        return (
            QualityQuery(relation)
            .require("employees", "source", "==", "estimate")
            .count()
        )

    def sql():
        return len(
            execute(
                "SELECT * FROM customer "
                "WHERE QUALITY(employees.source) = 'estimate'",
                relation,
            )
        )

    assert fluent() == sql()

    def measure():
        best_fluent = min(_timed(fluent) for _ in range(3))
        best_sql = min(_timed(sql) for _ in range(3))
        return best_fluent, best_sql

    def _timed(fn):
        start = time.perf_counter()
        fn()
        return time.perf_counter() - start

    fluent_s, sql_s = benchmark.pedantic(measure, rounds=3, iterations=1)
    emit(
        "QSQL overhead",
        f"fluent API: {fluent_s * 1e3:.3f} ms\n"
        f"QSQL:       {sql_s * 1e3:.3f} ms\n"
        f"ratio:      {sql_s / fluent_s:.2f}x",
    )
    # The string path should stay within a small constant factor.
    assert sql_s < fluent_s * 10
