"""QSQL — parse/execute cost and equivalence with the fluent API.

Not a paper artifact: an ablation of the *interface* to quality
filtering.  The paper requires "the ability to query over [tags]"; QSQL
provides it to strings.  We verify the string path answers exactly like
the programmatic path and measure its overhead.
"""

import datetime as dt

from conftest import emit

from repro.experiments.scenarios import customer_database
from repro.sql import execute, parse
from repro.tagging.query import QualityQuery

_CACHE = {}


def _relation():
    if "rel" not in _CACHE:
        _, _, relation = customer_database(
            n_companies=300, seed=9, simulated_days=90
        )
        _CACHE["rel"] = relation
    return _CACHE["rel"]


QUERY = (
    "SELECT co_name, employees FROM customer "
    "WHERE employees > 1000 AND QUALITY(employees.source) = 'estimate' "
    "ORDER BY employees DESC LIMIT 20"
)


def test_qsql_parse(benchmark):
    statement = benchmark(parse, QUERY)
    assert statement.relation == "customer"
    assert statement.uses_quality()
    assert statement.limit == 20


def test_qsql_execute_equivalence(benchmark):
    relation = _relation()

    sql_result = benchmark(execute, QUERY, relation)

    fluent_result = (
        QualityQuery(relation)
        .where_value("employees", ">", 1000)
        .require("employees", "source", "==", "estimate")
        .order_by("employees", descending=True)
        .select("co_name", "employees")
        .limit(20)
        .run()
    )
    sql_values = [row.values_dict() for row in sql_result]
    # Column order of projection differs from pipeline order; compare as
    # value dicts after aligning row order by the sort key.
    fluent_values = [row.values_dict() for row in fluent_result]
    assert [v["co_name"] for v in sql_values] == [
        v["co_name"] for v in fluent_values
    ]
    assert len(sql_values) == 20
    emit(
        "QSQL equivalence",
        f"string path rows == fluent path rows == {len(sql_values)}",
    )


def test_qsql_overhead_vs_fluent(benchmark):
    """String interface overhead: parse once per call, filter 300 rows."""
    import time

    relation = _relation()

    def fluent():
        return (
            QualityQuery(relation)
            .require("employees", "source", "==", "estimate")
            .count()
        )

    def sql():
        return len(
            execute(
                "SELECT * FROM customer "
                "WHERE QUALITY(employees.source) = 'estimate'",
                relation,
            )
        )

    assert fluent() == sql()

    def measure():
        best_fluent = min(_timed(fluent) for _ in range(3))
        best_sql = min(_timed(sql) for _ in range(3))
        return best_fluent, best_sql

    def _timed(fn):
        start = time.perf_counter()
        fn()
        return time.perf_counter() - start

    fluent_s, sql_s = benchmark.pedantic(measure, rounds=3, iterations=1)
    emit(
        "QSQL overhead",
        f"fluent API: {fluent_s * 1e3:.3f} ms\n"
        f"QSQL:       {sql_s * 1e3:.3f} ms\n"
        f"ratio:      {sql_s / fluent_s:.2f}x",
    )
    # The string path should stay within a small constant factor.
    assert sql_s < fluent_s * 10


def _ticks_relation(n=30000):
    """A wide tagged relation for planner scan benchmarks."""
    from repro.relational.schema import Column, RelationSchema
    from repro.tagging.cell import QualityCell
    from repro.tagging.indicators import (
        IndicatorDefinition,
        IndicatorValue,
        TagSchema,
    )
    from repro.tagging.relation import TaggedRelation

    schema = RelationSchema(
        "ticks", [Column("ticker", "STR"), Column("price", "FLOAT")]
    )
    tags = TagSchema(
        [IndicatorDefinition("source", "STR"), IndicatorDefinition("age", "INT")],
        allowed={"price": ["source", "age"]},
    )
    relation = TaggedRelation(schema, tags)
    for i in range(n):
        relation.insert(
            {
                "ticker": f"T{i % 500}",
                "price": QualityCell(
                    float(i % 997),
                    [
                        IndicatorValue(
                            "source", "reuters" if i % 50 else "manual"
                        ),
                        IndicatorValue("age", i % 30),
                    ],
                ),
            }
        )
    return relation


def test_qsql_planner_json():
    """Emit BENCH_QSQL.json: the planner's two speedup claims.

    - *columnar-routed vs per-cell scan*: a cached plan routes
      ``QUALITY(...)`` equality through the columnar tag store's
      C-level array scan; the planner-free path evaluates a per-cell
      closure on every row.  Floor for this PR: 10x.
    - *cached vs cold statement*: a repeated statement text skips
      lexing/parsing/analysis/planning/compilation entirely; cold runs
      pay all of it per call.  Floor for this PR: 5x.
    """
    from conftest import REPO_ROOT, best_seconds

    from repro.experiments.harness import bench_record, write_bench_json
    from repro.sql import clear_plan_cache

    # -- columnar routing: large relation, selective tag predicate -----
    n = 30000
    ticks = _ticks_relation(n)
    scan_sql = "SELECT * FROM ticks WHERE QUALITY(price.source) = 'manual'"
    ticks.columnar_store()  # build outside the timed region
    clear_plan_cache()
    planned = execute(scan_sql, ticks)
    per_cell = execute(scan_sql, ticks, planner=False)
    assert len(planned) == len(per_cell) == n // 50
    columnar_s = best_seconds(lambda: execute(scan_sql, ticks))
    per_cell_s = best_seconds(
        lambda: execute(scan_sql, ticks, planner=False)
    )
    scan_speedup = per_cell_s / columnar_s

    # -- plan cache: small relation, heavyweight statement --------------
    _, _, customers = customer_database(
        n_companies=12, seed=9, simulated_days=30
    )
    cached_sql = (
        "SELECT co_name AS company, address AS addr, employees AS headcount "
        "FROM customer "
        "WHERE employees > 10 AND employees < 900000 "
        "AND co_name IS NOT NULL AND address IS NOT NULL "
        "AND QUALITY(employees.source) IN ('estimate', 'Nexis', 'sales') "
        "AND (QUALITY(address.source) <> 'fax' "
        "     OR QUALITY(address.creation_time) IS NOT NULL) "
        "AND NOT (employees IN (1, 2, 3) AND co_name = 'Nobody Inc') "
        "ORDER BY employees DESC, co_name ASC LIMIT 10"
    )
    clear_plan_cache()
    execute(cached_sql, customers)  # populate the cache
    warm_s = best_seconds(lambda: execute(cached_sql, customers))

    def cold():
        clear_plan_cache()
        return execute(cached_sql, customers)

    cold_s = best_seconds(cold)
    cache_speedup = cold_s / warm_s

    write_bench_json(
        "BENCH_QSQL.json",
        [
            bench_record(
                "qsql_columnar_scan", n, columnar_s, speedup=scan_speedup
            ),
            bench_record("qsql_percell_scan", n, per_cell_s, speedup=1.0),
            bench_record(
                "qsql_cached_statement",
                len(customers),
                warm_s,
                speedup=cache_speedup,
            ),
            bench_record(
                "qsql_cold_statement", len(customers), cold_s, speedup=1.0
            ),
        ],
        REPO_ROOT,
    )
    emit(
        "QSQL planner speedups",
        f"columnar scan {columnar_s * 1e3:.3f} ms vs per-cell "
        f"{per_cell_s * 1e3:.3f} ms: {scan_speedup:.1f}x "
        f"({n} rows)\n"
        f"cached stmt   {warm_s * 1e3:.3f} ms vs cold "
        f"{cold_s * 1e3:.3f} ms: {cache_speedup:.1f}x",
    )
    assert scan_speedup >= 10
    assert cache_speedup >= 5
