"""Query service under concurrency — latency, throughput, isolation.

Not a paper artifact: a performance characterization of the
:mod:`repro.service` layer.  N concurrent clients drive QSQL through
:class:`QueryService` sessions and we record p50/p99 latency and
aggregate throughput, then repeat the same read load while one writer
continuously lands ``insert_many`` batches.  Because reads run against
pinned copy-on-write snapshots, readers should keep most of their
solo throughput under write pressure — BENCH_SERVICE.json records the
ratio and the bench-trend gate enforces its floor (0.5x).

The snapshot-isolation assertion is deterministic, not statistical: a
query whose execution is held at a gate pins its snapshot at *submit*
time, sentinel rows are inserted while it is parked, and the released
result must not contain them.
"""

import statistics
import threading
import time

from conftest import REPO_ROOT, emit

from repro.relational import hash_partitions
from repro.relational.catalog import Database
from repro.relational.schema import Column, RelationSchema
from repro.service import QueryService
from repro.sql import clear_plan_cache

N_ROWS = 20_000
N_BUCKETS = 64
N_CLIENTS = 4
QUERIES_PER_CLIENT = 60

#: Selective pruned lookup: the planner restricts the scan to one of
#: the 64 hash buckets, so per-query work is dominated by the service
#: path (snapshot pin, queue, dispatch) rather than the scan itself.
QUERY = (
    "SELECT event_id, amount FROM events "
    "WHERE region = 'region_7' AND amount >= 100.0 "
    "ORDER BY amount DESC LIMIT 20"
)

_CACHE = {}


def _database():
    if "db" not in _CACHE:
        database = Database("bench_service")
        relation = database.create_relation(
            RelationSchema(
                "events",
                [
                    Column("event_id", "INT"),
                    Column("region", "STR"),
                    Column("amount", "FLOAT"),
                ],
            ),
            enforce_key=False,
            partition_by=hash_partitions("region", N_BUCKETS),
        )
        relation.insert_many(
            {
                "event_id": i,
                "region": f"region_{i % 97}",
                "amount": float(i * 7919 % 10_000),
            }
            for i in range(N_ROWS)
        )
        _CACHE["db"] = database
    return _CACHE["db"]


def _run_clients(service):
    """Drive the read load from N_CLIENTS threads.

    Returns (per-query latencies flattened across clients, wall time
    for the whole load).
    """

    latencies: list[list[float]] = [[] for _ in range(N_CLIENTS)]

    def client(index: int):
        with service.session() as session:
            for _ in range(QUERIES_PER_CLIENT):
                start = time.perf_counter()
                session.execute(QUERY)
                latencies[index].append(time.perf_counter() - start)

    threads = [
        threading.Thread(target=client, args=(i,)) for i in range(N_CLIENTS)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - start
    flat = [latency for per_client in latencies for latency in per_client]
    return flat, wall


def test_service_snapshot_isolation_is_exact():
    """A parked query must answer from its submit-time snapshot."""
    database = _database()
    base_count = len(database.relation("events"))
    gate = threading.Event()
    with QueryService(
        database, workers=1, runner=lambda fn: (gate.wait(10), fn())[1]
    ) as service:
        ticket = service.submit("SELECT event_id FROM events")
        database.insert_many(
            "events",
            [
                {"event_id": -1 - i, "region": "region_7", "amount": 0.0}
                for i in range(50)
            ],
        )
        gate.set()
        parked = ticket.result(timeout=30)
    assert len(parked) == base_count  # sentinels invisible to the snapshot
    with QueryService(database, workers=1) as service:
        with service.session() as session:
            fresh = session.execute("SELECT event_id FROM events")
    assert len(fresh) == base_count + 50  # ...but a fresh pin sees them
    database.delete("events", lambda row: row["event_id"] < 0)


def test_service_json_concurrent_latency_and_throughput():
    """Emit BENCH_SERVICE.json: client latency + throughput under writes.

    Floor enforced by the bench-trend CI gate: aggregate reader
    throughput with a concurrent writer landing batches must hold at
    least 0.5x of the readers-alone throughput — snapshot reads never
    wait on row locks, so write pressure costs coordination, not
    blocking.
    """
    from repro.experiments.harness import bench_record, write_bench_json

    database = _database()
    clear_plan_cache()
    total = N_CLIENTS * QUERIES_PER_CLIENT

    with QueryService(database, workers=N_CLIENTS) as service:
        # Warm the plan cache and snapshot cache outside the timed region.
        with service.session() as session:
            session.execute(QUERY)
        alone_latencies, alone_wall = _run_clients(service)

    writer_stop = threading.Event()
    batches = {"count": 0}

    def writer():
        batch_index = 0
        while not writer_stop.is_set():
            database.insert_many(
                "events",
                [
                    {
                        "event_id": N_ROWS + batch_index * 50 + i,
                        "region": f"region_{i % 97}",
                        "amount": float(i),
                    }
                    for i in range(50)
                ],
            )
            batch_index += 1
            batches["count"] = batch_index
            # Paced writer: a short gap between batches keeps this a
            # sustained-write workload rather than a tight loop that
            # starves snapshot acquisition of the transaction gate.
            time.sleep(0.005)

    with QueryService(database, workers=N_CLIENTS) as service:
        with service.session() as session:
            session.execute(QUERY)
        writer_thread = threading.Thread(target=writer)
        writer_thread.start()
        try:
            contended_latencies, contended_wall = _run_clients(service)
        finally:
            writer_stop.set()
            writer_thread.join()

    assert batches["count"] > 0  # the writer really ran alongside
    alone_tput = total / alone_wall
    contended_tput = total / contended_wall
    ratio = contended_tput / alone_tput
    p50 = statistics.median(alone_latencies)
    p99 = statistics.quantiles(alone_latencies, n=100)[98]

    write_bench_json(
        "BENCH_SERVICE.json",
        [
            bench_record(
                "service_reader_throughput_under_writer",
                total,
                contended_wall,
                speedup=ratio,
            ),
            bench_record("service_readers_alone", total, alone_wall),
            bench_record("service_latency_p50", 1, p50),
            bench_record("service_latency_p99", 1, p99),
        ],
        REPO_ROOT,
    )
    emit(
        "Service: concurrent clients, snapshot reads under write load",
        f"{N_CLIENTS} clients x {QUERIES_PER_CLIENT} queries: "
        f"alone {alone_tput:.0f} q/s, under writer {contended_tput:.0f} q/s "
        f"(ratio {ratio:.2f}x, {batches['count']} write batches landed)\n"
        f"latency p50 {p50 * 1e3:.2f} ms, p99 "
        f"{statistics.quantiles(contended_latencies, n=100)[98] * 1e3:.2f}"
        f" ms under writer / {p99 * 1e3:.2f} ms alone",
    )
    # Same floor the bench-trend job enforces, asserted here too so a
    # local run fails loudly.
    assert ratio >= 0.5, f"reader throughput collapsed under writer: {ratio:.2f}x"
