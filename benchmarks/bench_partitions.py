"""Partitioned relations — static pruning and incremental snapshots.

Not a paper artifact: a performance ablation of the QSQL engine.  A
hash-partitioned relation lets the planner's ``prune_partitions``
rewrite turn a selective equality predicate into a static bucket
restriction (the scan touches ~1/64 of the rows), and lets the storage
layer rewrite only the mutated partition directories on save.  This
benchmark quantifies both against their unpartitioned counterparts.

All legs are measured *interleaved* and every speedup recorded in
BENCH_PART.json is a ratio of same-round numbers.
"""

import shutil
import tempfile
from pathlib import Path

from conftest import emit

from repro.obs import metrics
from repro.relational import hash_partitions
from repro.relational.catalog import Database
from repro.relational.schema import Column, RelationSchema
from repro.relational.storage import save
from repro.sql import clear_plan_cache, execute

N_ROWS = 100_000
N_BUCKETS = 64

EVENTS_COLUMNS = [
    Column("event_id", "INT"),
    Column("region", "STR"),
    Column("amount", "FLOAT"),
]

#: A selective equality on the partition key: the optimizer prunes the
#: scan to the single bucket the literal hashes into, so the row path
#: reads ~1/64 of the relation instead of all of it.
QUERY = (
    "SELECT event_id, amount FROM events WHERE region = 'region_7'"
)

_CACHE = {}


def _rows():
    return [
        {
            "event_id": i,
            "region": f"region_{i % 997}",
            "amount": float(i * 7919 % 10_000),
        }
        for i in range(N_ROWS)
    ]


def _partitioned():
    if "part" not in _CACHE:
        database = Database("bench_part")
        relation = database.create_relation(
            RelationSchema("events", list(EVENTS_COLUMNS)),
            enforce_key=False,
            partition_by=hash_partitions("region", N_BUCKETS),
        )
        for row in _rows():
            relation.insert(row)
        _CACHE["part"] = database
    return _CACHE["part"]


def _flat():
    if "flat" not in _CACHE:
        database = Database("bench_flat")
        relation = database.create_relation(
            RelationSchema("events", list(EVENTS_COLUMNS)),
            enforce_key=False,
        )
        for row in _rows():
            relation.insert(row)
        _CACHE["flat"] = database
    return _CACHE["flat"]


def test_partition_pruned_plan_shape():
    """The optimizer must bake the static bucket restriction in."""
    clear_plan_cache()
    plan = "\n".join(
        row["plan"] for row in execute(f"EXPLAIN {QUERY}", _partitioned())
    )
    assert f"partitions=1/{N_BUCKETS}" in plan
    flat_plan = "\n".join(
        row["plan"] for row in execute(f"EXPLAIN {QUERY}", _flat())
    )
    assert "partitions=" not in flat_plan


def test_partition_scan_reads_one_bucket():
    """partition.scanned shows the pruned scan fed ~1/64 of the rows."""
    database = _partitioned()
    relation = database.relation("events")
    spec = relation.partition_spec
    bucket = spec.bucket_of("region_7")
    with metrics.instrumented() as registry:
        clear_plan_cache()
        result = execute(QUERY, database, columnar=False)
        snapshot = registry.snapshot()
    assert 0 < len(result) < N_ROWS / N_BUCKETS
    scanned = snapshot["partition.scanned"]["value"]
    pruned = snapshot["partition.pruned"]["value"]
    assert scanned == len(relation.partition(bucket))
    # ~uniform hash layout: one bucket is a small fraction of the rows.
    assert scanned <= 3 * N_ROWS / N_BUCKETS
    assert pruned == N_BUCKETS - 1


def test_partition_json_pruned_vs_flat_and_incremental_save(tmp_path):
    """Emit BENCH_PART.json: pruned scan + incremental save speedups.

    Floors enforced by the bench-trend CI gate: the pruned row scan
    must hold 8x over the unpartitioned row scan (ideal is ~64x on
    this layout, derated for per-statement overhead and CI noise), and
    the one-dirty-partition save must hold 4x over a full snapshot
    rewrite.
    """
    from conftest import REPO_ROOT, best_seconds_interleaved

    from repro.experiments.harness import bench_record, write_bench_json

    partitioned = _partitioned()
    flat = _flat()
    canonical = lambda rel: sorted(r.values_tuple() for r in rel)  # noqa: E731

    clear_plan_cache()
    pruned_result = execute(QUERY, partitioned, columnar=False)
    flat_result = execute(QUERY, flat, columnar=False)
    assert canonical(pruned_result) == canonical(flat_result)

    pruned_s, flat_s = best_seconds_interleaved(
        [
            lambda: execute(QUERY, partitioned, columnar=False),
            lambda: execute(QUERY, flat, columnar=False),
        ]
    )
    scan_speedup = flat_s / pruned_s

    relation = partitioned.relation("events")
    standing = tmp_path / "standing"
    save(relation, standing)  # all partitions now clean
    fresh_root = tmp_path / "fresh"
    fresh_root.mkdir()
    counter = {"n": 0}

    def incremental_save():
        # One insert dirties exactly one bucket; save rewrites only it.
        relation.insert(
            {
                "event_id": N_ROWS + counter["n"],
                "region": "region_7",
                "amount": 1.0,
            }
        )
        counter["n"] += 1
        save(relation, standing)

    def full_save():
        # A fresh target has no clean partitions: every bucket rewrites.
        target = fresh_root / f"run_{counter['n']}"
        counter["n"] += 1
        save(relation, target)
        shutil.rmtree(target)

    incremental_s, full_s = best_seconds_interleaved(
        [incremental_save, full_save], repeats=3
    )
    save_speedup = full_s / incremental_s

    write_bench_json(
        "BENCH_PART.json",
        [
            bench_record(
                "partition_pruned_scan",
                N_ROWS,
                pruned_s,
                speedup=scan_speedup,
            ),
            bench_record(
                "partition_incremental_save",
                N_ROWS,
                incremental_s,
                speedup=save_speedup,
            ),
            bench_record("flat_row_scan", N_ROWS, flat_s, speedup=1.0),
            bench_record("partition_full_save", N_ROWS, full_s, speedup=1.0),
        ],
        REPO_ROOT,
    )
    emit(
        "Partitions: pruned scan + incremental save",
        f"pruned scan {pruned_s * 1e3:.2f} ms, flat scan "
        f"{flat_s * 1e3:.2f} ms over {N_ROWS} rows "
        f"({N_BUCKETS} hash buckets)\n"
        f"incremental save {incremental_s * 1e3:.2f} ms, full save "
        f"{full_s * 1e3:.2f} ms\n"
        f"pruned vs flat scan:     {scan_speedup:.1f}x\n"
        f"incremental vs full save: {save_speedup:.1f}x",
    )
    assert scan_speedup >= 8.0
    assert save_speedup >= 4.0
