"""E1 — §4's graded retrieval: mass mailing vs. fund raising.

The paper's claim: "For more sensitive applications, such as fund
raising, the user may query over and constrain quality indicators
values, raising the accuracy and timeliness of the retrieved data."

Workload: the simulated address clearinghouse (two sources of unequal
quality feeding one address book).  The harness measures, per stored
profile, the yield / delivered-accuracy / mean-age trade-off against the
simulated ground truth.

Expected shape: the fund-raising grade delivers *fewer* rows but
*higher* accuracy and *lower* age than the unconstrained mass-mailing
grade.  An ablation compares query-time grading against load-time
filtering to show why the paper's query-time choice matters when users
have different standards.
"""

from conftest import emit

from repro.experiments.reporting import TextTable
from repro.experiments.scenarios import clearinghouse
from repro.quality.filtering import yield_quality_tradeoff

_SCENARIO_CACHE = {}


def _scenario():
    if "env" not in _SCENARIO_CACHE:
        _SCENARIO_CACHE["env"] = clearinghouse(
            n_people=400, seed=23, simulated_days=365
        )
    return _SCENARIO_CACHE["env"]


def test_e1_grade_tradeoff(benchmark):
    world, _, relation, registry = _scenario()
    filters = [
        registry.get("mass_mailing").quality_filter,
        registry.get("fund_raising").quality_filter,
    ]

    def run():
        return yield_quality_tradeoff(
            relation,
            filters,
            truth=world.truth(),
            key_column="person_id",
            today=world.today,
            age_columns=["address"],
        )

    outcomes = benchmark(run)
    table = TextTable(
        ["profile", "yield", "rows", "delivered_accuracy", "mean_age_days"],
        title="E1: graded retrieval over the address clearinghouse",
    )
    for outcome in outcomes:
        table.add_row(
            [
                outcome.filter_name,
                outcome.yield_fraction,
                outcome.output_rows,
                outcome.delivered_accuracy,
                outcome.mean_age_days,
            ]
        )
    emit("E1: §4 filtering grades", table.render())

    mass, fund = outcomes
    # The paper's predicted shape.
    assert mass.yield_fraction == 1.0
    assert fund.yield_fraction < mass.yield_fraction
    assert fund.delivered_accuracy > mass.delivered_accuracy
    assert fund.mean_age_days < mass.mean_age_days


def test_e1_querytime_vs_loadtime_ablation(benchmark):
    """Ablation: filtering at load time bakes in ONE standard; tags +
    query-time grading serve every standard from the same stored data.

    We measure: the load-time-filtered store answers the mass-mailing
    application with fewer rows than it wants (yield loss), while the
    tagged store answers both applications correctly.
    """
    world, _, relation, registry = _scenario()
    fund = registry.get("fund_raising").quality_filter

    def query_time_both():
        mass_result = registry.get("mass_mailing").retrieve(relation)
        fund_result = registry.get("fund_raising").retrieve(relation)
        return mass_result, fund_result

    mass_result, fund_result = benchmark(query_time_both)
    # Load-time filtering = store only fund-raising-grade data.
    load_filtered_store = fund.apply(relation)

    table = TextTable(
        ["strategy", "mass_mailing rows", "fund_raising rows"],
        title="E1 ablation: query-time tags vs load-time filtering",
    )
    table.add_row(
        ["query-time grading", len(mass_result), len(fund_result)]
    )
    table.add_row(
        ["load-time filtering", len(load_filtered_store), len(load_filtered_store)]
    )
    emit("E1 ablation", table.render())

    # The mass-mailing application loses rows under load-time filtering
    # (it wanted everything), while query-time grading serves both.
    assert len(mass_result) == len(relation)
    assert len(load_filtered_store) < len(mass_result)
    assert len(fund_result) == len(load_filtered_store)


def test_e1_json_fast_vs_naive_grading():
    """Emit BENCH_E1.json: compiled and columnar grading vs the naive path.

    The fund-raising grade runs through the compiled (pushdown) filter,
    through the columnar tag store (array scans + late row gather), and
    through the seed strategy (per-row name lookups, re-validating
    inserts); all three must deliver identical rows.  The three legs
    are measured *interleaved* — the naive baseline is re-timed in the
    same rounds as the fast paths, so every recorded speedup divides
    numbers taken under the same CPU conditions.
    """
    from conftest import REPO_ROOT, best_seconds_interleaved

    from repro.experiments.harness import bench_record, write_bench_json
    from repro.experiments.naive import naive_quality_filter

    world, _, relation, registry = _scenario()
    fund = registry.get("fund_raising").quality_filter

    fast_result = fund.apply(relation)
    columnar_result = fund.apply_columnar(relation)
    naive_result = naive_quality_filter(relation, fund)
    assert [r.cells for r in fast_result] == [r.cells for r in naive_result]
    assert [r.cells for r in columnar_result] == [
        r.cells for r in naive_result
    ]

    n = len(relation)
    relation.columnar_store()  # build outside the timed region
    fast_s, columnar_s, naive_s = best_seconds_interleaved(
        [
            lambda: fund.apply(relation),
            lambda: fund.apply_columnar(relation),
            lambda: naive_quality_filter(relation, fund),
        ]
    )
    speedup = naive_s / fast_s
    columnar_speedup = naive_s / columnar_s
    write_bench_json(
        "BENCH_E1.json",
        [
            bench_record(
                "e1_graded_retrieval_fast", n, fast_s, speedup=speedup
            ),
            bench_record(
                "e1_graded_retrieval_columnar",
                n,
                columnar_s,
                speedup=columnar_speedup,
            ),
            bench_record("e1_graded_retrieval_naive", n, naive_s, speedup=1.0),
        ],
        REPO_ROOT,
    )
    emit(
        "E1: fast vs naive graded retrieval",
        f"fast {fast_s * 1e3:.2f} ms, columnar {columnar_s * 1e3:.2f} ms, "
        f"naive {naive_s * 1e3:.2f} ms; speedups {speedup:.1f}x / "
        f"{columnar_speedup:.1f}x over {n} rows",
    )
    assert fast_s <= naive_s
    assert columnar_s <= naive_s
