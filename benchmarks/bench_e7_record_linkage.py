"""E7 — duplicate detection as an administration tool (Fellegi–Sunter).

Record linking is the paper's oldest-cited related work ([10][18][19]);
in this reproduction it powers the administrator's inspection/
certification workflow.  Workload: customer records with error-injected
duplicates.  The harness sweeps the decision threshold and reports
precision / recall / F1.

Expected shape: precision non-decreasing and recall non-increasing in
the threshold; F1 peaks at an interior threshold; blocking trades a
large pair-space reduction for bounded recall loss.
"""

from conftest import emit

from repro.experiments.reporting import TextTable
from repro.experiments.scenarios import duplicated_customers
from repro.linkage.blocking import prefix_key, reduction_ratio
from repro.linkage.comparators import jaro_winkler, numeric_closeness
from repro.linkage.dedup import DuplicateFinder
from repro.linkage.fellegi_sunter import FellegiSunterModel, FieldModel

THRESHOLDS = [-5.0, -2.0, 0.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0]


def _model():
    return FellegiSunterModel(
        [
            FieldModel("co_name", jaro_winkler, m=0.95, u=0.01),
            FieldModel("address", jaro_winkler, m=0.85, u=0.02),
            FieldModel(
                "employees",
                lambda a, b: numeric_closeness(a, b, tolerance=0.2),
                m=0.8,
                u=0.05,
            ),
        ],
        upper_threshold=4.0,
        lower_threshold=0.0,
    )


def _truth(a, b):
    return a["_entity"] == b["_entity"]


def test_e7_threshold_sweep(benchmark):
    records, _ = duplicated_customers(n_base=150, duplicate_fraction=0.4, seed=47)
    finder = DuplicateFinder(_model())

    rows = benchmark(finder.threshold_sweep, records, _truth, THRESHOLDS)

    table = TextTable(
        ["threshold", "precision", "recall", "f1"],
        title="E7: Fellegi-Sunter threshold sweep",
    )
    for row in rows:
        table.add_row([row["threshold"], row["precision"], row["recall"], row["f1"]])
    emit("E7: threshold sweep", table.render())

    precisions = [r["precision"] for r in rows]
    recalls = [r["recall"] for r in rows]
    # Monotone shapes.
    assert all(a <= b + 1e-9 for a, b in zip(precisions, precisions[1:]))
    assert all(a >= b - 1e-9 for a, b in zip(recalls, recalls[1:]))
    # Interior F1 peak.
    best = max(rows, key=lambda r: r["f1"])
    assert best["f1"] > rows[0]["f1"]
    assert best["f1"] > rows[-1]["f1"]
    assert best["f1"] > 0.6


def test_e7_blocking_tradeoff(benchmark):
    records, _ = duplicated_customers(n_base=150, duplicate_fraction=0.4, seed=47)
    unblocked = DuplicateFinder(_model())
    blocked = DuplicateFinder(_model(), blocking_keys=[prefix_key("co_name", 1)])

    def evaluate_both():
        return (
            unblocked.evaluate(records, _truth),
            blocked.evaluate(records, _truth),
        )

    full_eval, blocked_eval = benchmark(evaluate_both)
    saved = reduction_ratio(records, [prefix_key("co_name", 1)])
    table = TextTable(
        ["strategy", "pairs compared", "precision", "recall"],
        title="E7: blocking ablation",
    )
    table.add_row(
        [
            "full comparison",
            len(unblocked.candidate_pairs(records)),
            full_eval.precision,
            full_eval.recall,
        ]
    )
    table.add_row(
        [
            "1-char prefix blocking",
            len(blocked.candidate_pairs(records)),
            blocked_eval.precision,
            blocked_eval.recall,
        ]
    )
    emit("E7: blocking", table.render() + f"\npair-space reduction: {saved:.1%}")

    # Shape: blocking prunes most of the pair space, keeps precision,
    # loses bounded recall.
    assert saved > 0.8
    assert blocked_eval.precision >= full_eval.precision - 0.05
    assert blocked_eval.recall <= full_eval.recall


def test_e7_em_fit_improves_untuned_model(benchmark):
    """EM-estimated m/u beats a deliberately mistuned model."""
    records, _ = duplicated_customers(n_base=120, duplicate_fraction=0.4, seed=48)
    mistuned = FellegiSunterModel(
        [
            FieldModel("co_name", jaro_winkler, m=0.55, u=0.45),
            FieldModel("address", jaro_winkler, m=0.55, u=0.45),
            FieldModel(
                "employees",
                lambda a, b: numeric_closeness(a, b, tolerance=0.2),
                m=0.55,
                u=0.45,
            ),
        ],
        upper_threshold=1.0,
        lower_threshold=0.0,
    )
    baseline_f1 = max(
        row["f1"]
        for row in DuplicateFinder(mistuned).threshold_sweep(
            records, _truth, [0.1]
        )
    )

    def fit_and_score():
        model = FellegiSunterModel(
            [
                FieldModel("co_name", jaro_winkler, m=0.55, u=0.45),
                FieldModel("address", jaro_winkler, m=0.55, u=0.45),
                FieldModel(
                    "employees",
                    lambda a, b: numeric_closeness(a, b, tolerance=0.2),
                    m=0.55,
                    u=0.45,
                ),
            ],
            upper_threshold=1.0,
        )
        finder = DuplicateFinder(model)
        pairs = [
            (records[i], records[j])
            for i, j in finder.candidate_pairs(records)
        ]
        model.fit_em(pairs, iterations=15, initial_match_rate=0.05)
        rows = finder.threshold_sweep(
            records, _truth, [t for t in THRESHOLDS if t >= 0]
        )
        return max(row["f1"] for row in rows)

    fitted_f1 = benchmark.pedantic(fit_and_score, rounds=1, iterations=1)
    emit(
        "E7: EM ablation",
        f"mistuned model best F1: {baseline_f1:.3f}\n"
        f"EM-fitted model best F1: {fitted_f1:.3f}",
    )
    assert fitted_f1 > baseline_f1
