"""E3 — polygen source propagation through federation queries.

The polygen model's value proposition: after select/project/join over a
multi-database federation, every cell can answer "which local databases
produced or influenced this value?".  This experiment measures the cost
and verifies the propagation shapes:

- union across k databases: corroborated facts carry k originating
  sources;
- join: join-key sources appear as intermediate sources of every output
  cell;
- cost grows with the number of federated databases.
"""

import time

from conftest import emit

from repro.experiments.reporting import TextTable, render_series
from repro.polygen import algebra
from repro.polygen.federation import Federation
from repro.relational.catalog import Database
from repro.relational.schema import schema

N_TICKERS = 120


def _make_federation(n_databases: int) -> Federation:
    federation = Federation("markets")
    for db_index in range(n_databases):
        db = Database(f"feed_{db_index}")
        db.create_relation(
            schema("quotes", [("ticker", "STR"), ("price", "FLOAT")])
        )
        for t in range(N_TICKERS):
            # Every feed quotes every ticker; prices agree so union
            # merges them into corroborated rows.
            db.insert(
                "quotes", {"ticker": f"T{t:03d}", "price": float(100 + t)}
            )
        federation.register(db, credibility=1.0 - 0.1 * db_index)
    return federation


def test_e3_union_corroboration(benchmark):
    federation = _make_federation(4)
    merged = benchmark(federation.union_all, "quotes")
    # Agreement across feeds: one row per ticker, 4 originating sources.
    assert len(merged) == N_TICKERS
    sample = merged.rows[0]["price"]
    assert len(sample.originating) == 4
    emit(
        "E3: corroborated union (first rows)",
        merged.render(max_rows=3, title="union of 4 feeds"),
    )


def test_e3_join_intermediate_sources(benchmark):
    federation = _make_federation(2)
    quotes = federation.export("feed_0", "quotes")
    reports_db = Database("research")
    reports_db.create_relation(
        schema("reports", [("symbol", "STR"), ("analyst", "STR")])
    )
    for t in range(N_TICKERS):
        reports_db.insert(
            "reports", {"symbol": f"T{t:03d}", "analyst": f"an{t % 7}"}
        )
    federation.register(reports_db)
    reports = federation.export("research", "reports")

    joined = benchmark(
        algebra.equi_join, quotes, reports, [("ticker", "symbol")]
    )
    assert len(joined) == N_TICKERS
    row = joined.rows[0]
    # Join-key sources flow into every output cell's intermediate set.
    for cell in row.cells:
        assert {"feed_0", "research"} <= cell.intermediate
    report = federation.provenance_report(joined)
    table = TextTable(
        ["source", "originating cells", "intermediate cells"],
        title="E3: provenance report after join",
    )
    for source in sorted(report):
        table.add_row(
            [
                source,
                report[source]["originating"],
                report[source]["intermediate"],
            ]
        )
    emit("E3: join provenance", table.render())


def test_e3_bridge_to_quality_layer(benchmark):
    """The two formal models compose: federation union → source-tagged
    relation → indicator-constrained retrieval (the full tag-and-query
    loop across [24][25] and [28])."""
    from repro.polygen.bridge import polygen_to_tagged
    from repro.tagging.query import QualityQuery

    federation = _make_federation(3)
    merged = federation.union_all("quotes")

    def bridge_and_filter():
        tagged = polygen_to_tagged(merged)
        return (
            QualityQuery(tagged)
            .require("price", "source", "==", "feed_0+feed_1+feed_2")
            .count()
        )

    corroborated = benchmark(bridge_and_filter)
    emit(
        "E3: bridge to quality layer",
        f"fully corroborated quotes retrievable by source tag: "
        f"{corroborated}/{N_TICKERS}",
    )
    # All feeds agree on every ticker: everything is fully corroborated.
    assert corroborated == N_TICKERS


def test_e3_cost_vs_federation_size(benchmark):
    """Union cost grows with the number of federated databases."""

    def sweep():
        results = []
        for k in (1, 2, 4, 8):
            federation = _make_federation(k)
            seconds = float("inf")
            for _ in range(3):  # noise-robust: best of three
                start = time.perf_counter()
                merged = federation.union_all("quotes")
                seconds = min(seconds, time.perf_counter() - start)
            results.append(
                {
                    "databases": k,
                    "seconds": seconds,
                    "rows": len(merged),
                    "sources_per_cell": len(
                        merged.rows[0]["price"].originating
                    ),
                }
            )
        return results

    results = benchmark.pedantic(sweep, rounds=3, iterations=1)
    emit(
        "E3: union cost vs federation size",
        render_series(
            "databases",
            "seconds",
            [(entry["databases"], entry["seconds"]) for entry in results],
        ),
    )
    # Shapes: row count constant (full corroboration), source sets grow
    # linearly, cost grows with k.
    assert all(entry["rows"] == N_TICKERS for entry in results)
    assert [entry["sources_per_cell"] for entry in results] == [1, 2, 4, 8]
    assert results[-1]["seconds"] > results[0]["seconds"]


def test_e3_json_fast_vs_naive_join():
    """Emit BENCH_E3.json: fast federation join vs the naive (seed) join.

    Corroborated quotes from two feeds joined with research reports.
    The fast path reuses the build side's cached hash-join index, moves
    trusted rows end-to-end (bulk ``from_rows``, no per-row inserts) and
    memoizes examined-source unions; the naive path rebuilds per-row
    cell dicts and re-validates each output row.
    Acceptance floor for this PR: 3x ops/sec.
    """
    from conftest import REPO_ROOT, best_seconds

    from repro.experiments.harness import bench_record, write_bench_json
    from repro.experiments.naive import naive_polygen_equi_join

    n_tickers = 2000
    federation = Federation("markets")
    for db_index in range(2):
        db = Database(f"feed_{db_index}")
        db.create_relation(
            schema("quotes", [("ticker", "STR"), ("price", "FLOAT")])
        )
        for t in range(n_tickers):
            db.insert(
                "quotes", {"ticker": f"T{t:04d}", "price": float(100 + t)}
            )
        federation.register(db, credibility=1.0 - 0.1 * db_index)
    reports_db = Database("research")
    reports_db.create_relation(
        schema("reports", [("symbol", "STR"), ("analyst", "STR")])
    )
    for t in range(n_tickers):
        reports_db.insert(
            "reports", {"symbol": f"T{t:04d}", "analyst": f"an{t % 7}"}
        )
    federation.register(reports_db)

    quotes = federation.union_all("quotes", ["feed_0", "feed_1"])
    reports = federation.export("research", "reports")
    on = [("ticker", "symbol")]

    fast_result = algebra.equi_join(quotes, reports, on)
    naive_result = naive_polygen_equi_join(quotes, reports, on)
    assert len(fast_result) == len(naive_result) == n_tickers
    for fast_row, naive_row in zip(fast_result.rows[:5], naive_result.rows[:5]):
        for fast_cell, naive_cell in zip(fast_row.cells, naive_row.cells):
            assert fast_cell.value == naive_cell.value
            assert fast_cell.originating == naive_cell.originating
            assert fast_cell.intermediate == naive_cell.intermediate

    fast_s = best_seconds(lambda: algebra.equi_join(quotes, reports, on))
    naive_s = best_seconds(
        lambda: naive_polygen_equi_join(quotes, reports, on)
    )
    speedup = naive_s / fast_s
    write_bench_json(
        "BENCH_E3.json",
        [
            bench_record(
                "e3_federation_join_fast", n_tickers, fast_s, speedup=speedup
            ),
            bench_record(
                "e3_federation_join_naive", n_tickers, naive_s, speedup=1.0
            ),
        ],
        REPO_ROOT,
    )
    emit(
        "E3: fast vs naive federation join",
        f"fast {fast_s * 1e3:.1f} ms, naive {naive_s * 1e3:.1f} ms, "
        f"speedup {speedup:.1f}x over {n_tickers} joined rows",
    )
    assert speedup >= 3
