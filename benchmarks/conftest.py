"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's tables/figures (or one of
the experiments the paper motivates), prints the artifact, and asserts
the expected *shape* (who wins, by roughly what factor, where crossovers
fall).  Absolute timings come from pytest-benchmark.
"""

from __future__ import annotations

import time
from pathlib import Path

import pytest

#: Repository root — BENCH_*.json artifacts are written here.
REPO_ROOT = Path(__file__).resolve().parent.parent


def emit(title: str, artifact: str) -> None:
    """Print a regenerated artifact under a banner (visible with -s)."""
    banner = "=" * max(len(title), 8)
    print(f"\n{banner}\n{title}\n{banner}\n{artifact}\n")


def best_seconds(fn, repeats: int = 5) -> float:
    """Noise-robust wall time: best of ``repeats`` runs of ``fn``."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def best_seconds_interleaved(fns, repeats: int = 5) -> list[float]:
    """Best-of timings for several callables, measured *interleaved*.

    Sequential best-of blocks (time A repeats times, then B) let CPU
    frequency drift and cache-warmth asymmetry bias ratios of
    near-identical workloads by ±10%.  Rotating through the callables
    on every round exposes each to the same drift, so A/B ratios
    compare like with like.  Returns one best time per callable, in
    input order.
    """
    best = [float("inf")] * len(fns)
    for _ in range(repeats):
        for index, fn in enumerate(fns):
            start = time.perf_counter()
            fn()
            best[index] = min(best[index], time.perf_counter() - start)
    return best
