"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's tables/figures (or one of
the experiments the paper motivates), prints the artifact, and asserts
the expected *shape* (who wins, by roughly what factor, where crossovers
fall).  Absolute timings come from pytest-benchmark.
"""

from __future__ import annotations

import pytest


def emit(title: str, artifact: str) -> None:
    """Print a regenerated artifact under a banner (visible with -s)."""
    banner = "=" * max(len(title), 8)
    print(f"\n{banner}\n{title}\n{banner}\n{artifact}\n")
