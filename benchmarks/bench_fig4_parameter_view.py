"""F4 — regenerate Figure 4 (the parameter view).

Artifact: the application view with the paper's quality parameters
attached in "clouds": timeliness on share price, credibility and cost
on the research report, and the "√ inspection" marker on trade.
Benchmark: Step 2 (parameter elicitation over the application view).
"""

from conftest import emit

from repro.core.steps import Step1ApplicationView, Step2QualityParameters
from repro.experiments.scenarios import (
    TRADING_PARAMETER_REQUESTS,
    trading_er_schema,
)


def _build_parameter_view():
    app_view = Step1ApplicationView().run(trading_er_schema())
    return Step2QualityParameters().run(app_view, TRADING_PARAMETER_REQUESTS)


def test_figure4_parameter_view(benchmark):
    view = benchmark(_build_parameter_view)
    artifact = view.render(title="Figure 4: Parameter view")
    emit("F4: Figure 4 (parameter view)", artifact)
    # The figure's clouds.
    assert "share_price: FLOAT   ( timeliness )" in artifact
    assert "( credibility )" in artifact
    assert "( cost )" in artifact
    assert "(/ inspection )" in artifact
    # Parameters annotate the right targets.
    assert {p.name for p in view.parameters_at(("company_stock", "research_report"))} == {
        "credibility",
        "cost",
        "interpretability",
    }
    assert view.parameters_at(("trade",))[0].name == "inspection"


def test_figure4_catalog_assist(benchmark):
    """Step 2's elicitation aid: the candidate catalog suggests
    parameters from requirement keywords."""
    step = Step2QualityParameters()

    def suggest_all():
        return {
            "stale": step.suggest("stale", "old", "current"),
            "trust": step.suggest("believe", "trust", "credib"),
            "cost": step.suggest("price", "cost"),
        }

    suggestions = benchmark(suggest_all)
    assert "timeliness" in suggestions["stale"]
    assert "credibility" in suggestions["trust"]
    assert "cost" in suggestions["cost"]
