"""F1 — regenerate Figure 1 (quality attribute taxonomy).

Figure 1 shows: data quality attribute = data quality parameter
(subjective) ∪ data quality indicator (objective).  The artifact is the
taxonomy rendered from the terminology layer plus the Appendix-A catalog
classified into the two kinds.
"""

from conftest import emit

from repro.core.catalog import default_catalog
from repro.core.terminology import AttributeKind
from repro.experiments.reporting import TextTable


def _taxonomy_figure() -> str:
    catalog = default_catalog()
    parameters = sorted(a.name for a in catalog.parameters())
    indicators = sorted(a.name for a in catalog.indicators())
    lines = [
        "                 Data Quality Attribute",
        "                /                      \\",
        "  Data Quality Parameter        Data Quality Indicator",
        "      (subjective)                   (objective)",
        "",
        f"parameters ({len(parameters)}): " + ", ".join(parameters),
        "",
        f"indicators ({len(indicators)}): " + ", ".join(indicators),
    ]
    return "\n".join(lines)


def test_figure1_taxonomy(benchmark):
    artifact = benchmark(_taxonomy_figure)
    emit("F1: Figure 1 (quality attribute taxonomy)", artifact)
    assert "Data Quality Parameter" in artifact
    assert "Data Quality Indicator" in artifact
    # The paper's worked examples land on the correct sides.
    assert "timeliness" in artifact.split("indicators")[0]
    assert "creation_time" in artifact.split("indicators")[1]


def test_figure1_catalog_classification(benchmark):
    catalog = default_catalog()

    def classify():
        return {
            kind: [a.name for a in catalog if a.kind is kind]
            for kind in AttributeKind
        }

    classified = benchmark(classify)
    table = TextTable(["kind", "count", "examples"], title="Appendix A by kind")
    for kind, names in classified.items():
        table.add_row([kind.value, len(names), ", ".join(sorted(names)[:5])])
    emit("F1: catalog classification", table.render())
    # Survey shape: subjective parameters dominate the candidate list.
    assert len(classified[AttributeKind.PARAMETER]) > len(
        classified[AttributeKind.INDICATOR]
    )
