"""F5 — regenerate Figure 5 (the quality view).

Artifact: the application view with the paper's quality indicators in
dotted rectangles: age on share price; analyst name, price (cost), and
media on the research report; collection method on telephone; and the
inspection indicator on trade.
Benchmark: Step 3 (operationalization of parameters into indicators).
"""

from conftest import emit

from repro.core.steps import (
    Step1ApplicationView,
    Step2QualityParameters,
    Step3QualityIndicators,
)
from repro.experiments.scenarios import (
    TRADING_PARAMETER_REQUESTS,
    trading_er_schema,
    trading_indicator_decisions,
)


def _build_quality_view():
    app_view = Step1ApplicationView().run(trading_er_schema())
    parameter_view = Step2QualityParameters().run(
        app_view, TRADING_PARAMETER_REQUESTS
    )
    return Step3QualityIndicators().run(
        parameter_view, decisions=trading_indicator_decisions(), auto=False
    )


def test_figure5_quality_view(benchmark):
    view = benchmark(_build_quality_view)
    artifact = view.render(title="Figure 5: Quality view")
    emit("F5: Figure 5 (quality view)", artifact)
    # The figure's dotted indicator boxes.
    assert "share_price: FLOAT   [. age .]" in artifact
    assert "[. analyst_name .]" in artifact
    assert "[. price .]" in artifact
    assert "[. media .]" in artifact
    assert "telephone: STR   [. collection_method .]" in artifact
    assert "[. inspection .]" in artifact
    # Indicators replaced parameters (no clouds remain).
    assert "( timeliness )" not in artifact


def test_figure5_traceability(benchmark):
    """Every indicator knows which parameter it operationalizes —
    the Step 2 → Step 3 link the specification documents."""
    view = _build_quality_view()

    def traceability():
        return {
            annotation.indicator.name: annotation.derived_from
            for annotation in view.annotations
        }

    links = benchmark(traceability)
    assert links["age"] == ("timeliness",)
    assert links["analyst_name"] == ("credibility",)
    assert links["price"] == ("cost",)
    assert links["media"] == ("interpretability",)
    assert links["collection_method"] == ("accuracy",)
    assert links["inspection"] == ("inspection",)
