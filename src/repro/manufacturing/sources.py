"""Data sources: who supplies data, with what accuracy and latency.

"The source may only be able to provide estimates with varying degrees
of accuracy (e.g., sales forecasts)."  (§1.1)

A :class:`DataSource` observes the ground-truth world on behalf of the
pipeline.  Its quality characteristics:

- ``latency_days`` — the source reports the world as it was this many
  days ago (a news database lags; the accounting department is current);
- ``error_rate`` — probability an observation is corrupted by the
  source's own process (estimation error, not transcription);
- ``coverage`` — probability the source can report at all (otherwise
  the observation is missing).
"""

from __future__ import annotations

import datetime as _dt
import random

from repro.manufacturing.seeding import stable_seed
from dataclasses import dataclass
from typing import Any, Optional

from repro.errors import ManufacturingError
from repro.manufacturing.errorsim import ErrorInjector, mixed_injector
from repro.manufacturing.world import World


@dataclass(frozen=True)
class SourceObservation:
    """One observation produced by a source.

    ``value`` is None when the source had no coverage.  ``observed_day``
    is the world day the value reflects (report day − latency);
    ``report_day`` is when the source handed it over.
    """

    key: Any
    attribute: str
    value: Any
    source: str
    observed_day: _dt.date
    report_day: _dt.date
    erroneous: bool

    @property
    def missing(self) -> bool:
        return self.value is None


class DataSource:
    """A simulated data supplier with quality characteristics.

    >>> # acct'g: current and accurate; estimates: noisy
    >>> # DataSource("acct'g", world, error_rate=0.01)
    >>> # DataSource("estimate", world, error_rate=0.4, latency_days=30)
    """

    def __init__(
        self,
        name: str,
        world: World,
        error_rate: float = 0.0,
        latency_days: int = 0,
        coverage: float = 1.0,
        injector: Optional[ErrorInjector] = None,
        seed: int = 0,
    ) -> None:
        if not name:
            raise ManufacturingError("data source must have a name")
        if not 0.0 <= error_rate <= 1.0:
            raise ManufacturingError("error_rate must be in [0, 1]")
        if not 0.0 <= coverage <= 1.0:
            raise ManufacturingError("coverage must be in [0, 1]")
        if latency_days < 0:
            raise ManufacturingError("latency_days must be non-negative")
        self.name = name
        self.world = world
        self.error_rate = error_rate
        self.latency_days = latency_days
        self.coverage = coverage
        self.injector = injector or mixed_injector()
        self._rng = random.Random(stable_seed(seed, name))

    def observe(
        self,
        key: Any,
        attribute: str,
        report_day: Optional[_dt.date] = None,
    ) -> SourceObservation:
        """Produce one observation of an entity attribute.

        The reported value reflects the world ``latency_days`` before
        ``report_day`` (default: the world's today), possibly corrupted
        per ``error_rate``, or missing per ``coverage``.
        """
        report = report_day or self.world.today
        observed_day = report - _dt.timedelta(days=self.latency_days)
        if observed_day < self.world.start_day:
            observed_day = self.world.start_day
        if self._rng.random() >= self.coverage:
            return SourceObservation(
                key, attribute, None, self.name, observed_day, report, False
            )
        true_value = self.world.value_as_of(key, attribute, observed_day)
        erroneous = self._rng.random() < self.error_rate
        value = self.injector(self._rng, true_value) if erroneous else true_value
        # An injector may return the input unchanged (e.g. a blank string
        # can't get a typo); only count real corruption as erroneous.
        if erroneous and value == true_value:
            erroneous = False
        return SourceObservation(
            key, attribute, value, self.name, observed_day, report, erroneous
        )

    def __repr__(self) -> str:
        return (
            f"DataSource({self.name!r}, error_rate={self.error_rate}, "
            f"latency={self.latency_days}d, coverage={self.coverage})"
        )
