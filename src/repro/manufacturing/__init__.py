"""Simulated data manufacturing: the substrate behind the experiments.

The paper's scenarios presume data "originally collected over a period
of time, by a variety of company departments ... generated in different
ways for different reasons" (§1.2).  No such instrumented corporate
environment is available to a reproduction, so this package builds one:

- :mod:`repro.manufacturing.world` — a deterministic ground-truth world
  whose attribute values drift over time (volatility);
- :mod:`repro.manufacturing.sources` — data sources with accuracy,
  latency, and coverage characteristics (departments, feeds, estimates);
- :mod:`repro.manufacturing.collection` — collection methods with
  per-method error rates (manual entry, scanner, phone, service);
- :mod:`repro.manufacturing.errorsim` — the error injectors;
- :mod:`repro.manufacturing.generator` — seeded synthetic populations;
- :mod:`repro.manufacturing.pipeline` — the manufacturing pipeline that
  runs world → source → collection → tagged relation, emitting audit
  events.

Everything is seeded and deterministic so experiments reproduce
byte-for-byte.
"""

from repro.manufacturing.world import AttributeSpec, World
from repro.manufacturing.sources import DataSource, SourceObservation
from repro.manufacturing.collection import CollectionMethod, STANDARD_METHODS
from repro.manufacturing.generator import (
    make_address_book,
    make_clients,
    make_companies,
)
from repro.manufacturing.pipeline import ManufacturingPipeline

__all__ = [
    "AttributeSpec",
    "CollectionMethod",
    "DataSource",
    "ManufacturingPipeline",
    "STANDARD_METHODS",
    "SourceObservation",
    "World",
    "make_address_book",
    "make_clients",
    "make_companies",
]
