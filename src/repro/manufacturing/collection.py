"""Collection methods: how data is captured, with per-method error rates.

§3.3's examples: values "over the phone" or "from an information
service"; "bar code scanners in supermarkets, radio frequency readers
in the transportation industry, and voice decoders each has inherent
accuracy implications".

A :class:`CollectionMethod` is the transcription stage between a source
observation and the database: it may corrupt the value again (keying
errors, mishearing) independently of the source's own error process.
"""

from __future__ import annotations

import random

from repro.manufacturing.seeding import stable_seed
from typing import Any, Optional

from repro.errors import ManufacturingError
from repro.manufacturing.errorsim import (
    ErrorInjector,
    mixed_injector,
    transposition,
    typo,
)


class CollectionMethod:
    """A data-capture mechanism with an inherent error rate.

    Parameters
    ----------
    name:
        Method name, becomes the ``collection_method`` indicator value.
    error_rate:
        Probability a captured value is corrupted in transcription.
    injector:
        How corruption manifests (defaults to the mixed keying-error
        model).
    """

    def __init__(
        self,
        name: str,
        error_rate: float,
        injector: Optional[ErrorInjector] = None,
        seed: int = 0,
    ) -> None:
        if not name:
            raise ManufacturingError("collection method must have a name")
        if not 0.0 <= error_rate <= 1.0:
            raise ManufacturingError("error_rate must be in [0, 1]")
        self.name = name
        self.error_rate = error_rate
        self.injector = injector or mixed_injector()
        self._rng = random.Random(stable_seed(seed, "collection", name))

    def capture(self, value: Any) -> tuple[Any, bool]:
        """Transcribe one value; returns (captured value, corrupted?)."""
        if value is None:
            return None, False
        if self._rng.random() < self.error_rate:
            corrupted = self.injector(self._rng, value)
            return corrupted, corrupted != value
        return value, False

    def degrade(self, new_error_rate: float) -> None:
        """Change the method's error rate (models a failing device, E5)."""
        if not 0.0 <= new_error_rate <= 1.0:
            raise ManufacturingError("error_rate must be in [0, 1]")
        self.error_rate = new_error_rate

    def __repr__(self) -> str:
        return f"CollectionMethod({self.name!r}, error_rate={self.error_rate})"


def standard_methods(seed: int = 0) -> dict[str, "CollectionMethod"]:
    """The paper's capture mechanisms with plausible relative error rates.

    Absolute rates are synthetic; what matters for the experiments is
    the *ordering*: automated capture (scanner) beats an information
    service, which beats phone transcription, which beats voice
    decoding.
    """
    return {
        method.name: method
        for method in (
            CollectionMethod("bar_code_scanner", 0.002, seed=seed),
            CollectionMethod("information_service", 0.01, seed=seed),
            CollectionMethod("over_the_phone", 0.05, seed=seed),
            CollectionMethod("voice_decoder", 0.12, seed=seed),
            CollectionMethod("manual_entry", 0.03, seed=seed),
            CollectionMethod(
                "double_entry_manual",
                0.0009,  # two independent entries: ~0.03²
                seed=seed,
            ),
        )
    }


#: Convenience instance map with the default seed.
STANDARD_METHODS: dict[str, CollectionMethod] = standard_methods()
