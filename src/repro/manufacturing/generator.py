"""Seeded synthetic populations for the experiments.

Generates the paper's three scenario populations deterministically:

- **companies** (Tables 1-2): name, address, employee count;
- **clients** (Figure 3): account number, name, address, telephone;
- **address book** (§4's clearinghouse): individuals with addresses.

Names are composed from word lists rather than sampled from real data —
the experiments only need realistic *structure* (duplicates, typos,
variation), not real identities.
"""

from __future__ import annotations

import random

from repro.manufacturing.seeding import stable_seed
from typing import Any, Optional

_COMPANY_STEMS = (
    "Fruit", "Nut", "Grain", "Iron", "Copper", "Cedar", "Harbor", "Summit",
    "Vector", "Atlas", "Beacon", "Cobalt", "Delta", "Ember", "Falcon",
    "Granite", "Horizon", "Indigo", "Juniper", "Keystone", "Lumen",
    "Meridian", "Nimbus", "Orchard", "Pioneer", "Quartz", "Ridge", "Sterling",
    "Tundra", "Umber", "Vertex", "Willow", "Xenon", "Yarrow", "Zephyr",
)
_COMPANY_SUFFIXES = ("Co", "Corp", "Inc", "Ltd", "Group", "Partners")

_FIRST_NAMES = (
    "Alice", "Benjamin", "Carmen", "Daniel", "Elena", "Frank", "Grace",
    "Hugo", "Irene", "James", "Karen", "Liam", "Maria", "Nathan", "Olga",
    "Peter", "Quinn", "Rosa", "Samuel", "Teresa", "Ulric", "Vera", "Walter",
    "Ximena", "Yusuf", "Zoe",
)
_LAST_NAMES = (
    "Adams", "Baker", "Chen", "Diaz", "Evans", "Fischer", "Garcia", "Hansen",
    "Ito", "Jones", "Kim", "Lopez", "Martin", "Novak", "Olsen", "Park",
    "Quist", "Rivera", "Smith", "Tanaka", "Umar", "Vogel", "Weber", "Xu",
    "Young", "Zhang",
)
_STREETS = (
    "Jay St", "Lois Av", "Main St", "Oak Av", "Pine Rd", "Market St",
    "Harbor Blvd", "Mill Ln", "Elm St", "River Rd", "Summit Av", "Lake Dr",
    "Cedar Ct", "Park Pl", "Broad St", "Union Sq",
)
_CITIES = (
    "Cambridge", "Boston", "Springfield", "Worcester", "Lowell", "Newton",
    "Quincy", "Somerville", "Medford", "Arlington",
)


def _address(rng: random.Random) -> str:
    return f"{rng.randint(1, 999)} {rng.choice(_STREETS)}"


def _telephone(rng: random.Random) -> str:
    return f"617-{rng.randint(200, 999)}-{rng.randint(1000, 9999)}"


def make_companies(n: int, seed: int = 0) -> dict[str, dict[str, Any]]:
    """``n`` companies keyed by unique company name.

    Each company has ``address`` and ``employees``; the first two match
    the paper's Table 1 rows so canonical renders line up.
    """
    rng = random.Random(seed)
    companies: dict[str, dict[str, Any]] = {
        "Fruit Co": {"address": "12 Jay St", "employees": 4004},
        "Nut Co": {"address": "62 Lois Av", "employees": 700},
    }
    attempt = 0
    while len(companies) < n:
        stem = _COMPANY_STEMS[attempt % len(_COMPANY_STEMS)]
        suffix = _COMPANY_SUFFIXES[(attempt // len(_COMPANY_STEMS)) % len(_COMPANY_SUFFIXES)]
        serial = attempt // (len(_COMPANY_STEMS) * len(_COMPANY_SUFFIXES))
        name = f"{stem} {suffix}" + (f" {serial + 2}" if serial else "")
        attempt += 1
        if name in companies:
            continue
        companies[name] = {
            "address": _address(rng),
            "employees": rng.randint(5, 20000),
        }
    if n < 2:
        return dict(list(companies.items())[:n])
    return companies


def make_clients(n: int, seed: int = 0) -> dict[str, dict[str, Any]]:
    """``n`` trading clients keyed by account number."""
    rng = random.Random(stable_seed(seed, "clients"))
    clients: dict[str, dict[str, Any]] = {}
    for index in range(n):
        account = f"ACC{index + 1:05d}"
        clients[account] = {
            "name": f"{rng.choice(_FIRST_NAMES)} {rng.choice(_LAST_NAMES)}",
            "address": _address(rng),
            "telephone": _telephone(rng),
        }
    return clients


def make_address_book(
    n: int,
    seed: int = 0,
) -> dict[str, dict[str, Any]]:
    """``n`` individuals for the §4 clearinghouse, keyed by person id."""
    rng = random.Random(stable_seed(seed, "addresses"))
    book: dict[str, dict[str, Any]] = {}
    for index in range(n):
        person = f"P{index + 1:06d}"
        book[person] = {
            "name": f"{rng.choice(_FIRST_NAMES)} {rng.choice(_LAST_NAMES)}",
            "address": _address(rng),
            "city": rng.choice(_CITIES),
        }
    return book


def make_tickers(n: int, seed: int = 0) -> dict[str, dict[str, Any]]:
    """``n`` company stocks keyed by ticker symbol, with share prices."""
    rng = random.Random(stable_seed(seed, "tickers"))
    stocks: dict[str, dict[str, Any]] = {}
    names = list(make_companies(max(n, 2), seed=seed))
    for index in range(n):
        company = names[index % len(names)]
        ticker = "".join(
            word[0] for word in company.split()[:3]
        ).upper() + f"{index:02d}"
        stocks[ticker] = {
            "company_name": company,
            "share_price": round(rng.uniform(5.0, 500.0), 2),
        }
    return stocks
