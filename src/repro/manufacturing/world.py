"""A deterministic ground-truth world with attribute volatility.

The world holds entities (keyed dictionaries of attribute values) and a
per-attribute :class:`AttributeSpec` describing how the true value
drifts over time.  Advancing the clock mutates values with a seeded RNG
and records every change, so experiments can ask both "what is true
now?" and "what was true on day D?" — the latter is what a source with
latency actually observed.
"""

from __future__ import annotations

import datetime as _dt
import random
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping, Optional, Sequence

from repro.errors import ManufacturingError

#: A mutator: (rng, old value) → new value.
Mutator = Callable[[random.Random, Any], Any]


@dataclass(frozen=True)
class AttributeSpec:
    """Volatility model for one attribute.

    ``daily_change_probability`` is the chance the true value changes on
    any given day; ``mutate`` produces the new value.  Low-volatility
    attributes (addresses) use small probabilities; high-volatility ones
    (share prices) change nearly every day.
    """

    name: str
    daily_change_probability: float
    mutate: Mutator

    def __post_init__(self) -> None:
        if not 0.0 <= self.daily_change_probability <= 1.0:
            raise ManufacturingError(
                f"change probability for {self.name!r} must be in [0, 1]"
            )


@dataclass(frozen=True)
class ChangeRecord:
    """One recorded change of the true world."""

    day: _dt.date
    key: Any
    attribute: str
    old_value: Any
    new_value: Any


class World:
    """Ground truth: entities whose attributes drift deterministically.

    Parameters
    ----------
    start_day:
        The simulation's first day.
    entities:
        Initial truth: key → {attribute: value}.
    specs:
        Volatility model per mutable attribute; attributes without a
        spec never change.
    seed:
        RNG seed (runs with equal seeds are identical).
    """

    def __init__(
        self,
        start_day: _dt.date,
        entities: Mapping[Any, Mapping[str, Any]],
        specs: Sequence[AttributeSpec] = (),
        seed: int = 0,
    ) -> None:
        if not entities:
            raise ManufacturingError("world requires at least one entity")
        self.start_day = start_day
        self.today = start_day
        self._entities: dict[Any, dict[str, Any]] = {
            key: dict(values) for key, values in entities.items()
        }
        self._specs: dict[str, AttributeSpec] = {}
        for spec in specs:
            if spec.name in self._specs:
                raise ManufacturingError(f"duplicate attribute spec {spec.name!r}")
            self._specs[spec.name] = spec
        self._rng = random.Random(seed)
        self._history: list[ChangeRecord] = []

    # -- time ------------------------------------------------------------------

    def advance(self, days: int = 1) -> list[ChangeRecord]:
        """Advance the clock, mutating volatile attributes; returns changes."""
        if days < 0:
            raise ManufacturingError("cannot advance by negative days")
        changes: list[ChangeRecord] = []
        for _ in range(days):
            self.today = self.today + _dt.timedelta(days=1)
            for key in sorted(self._entities, key=repr):
                values = self._entities[key]
                for name, spec in self._specs.items():
                    if name not in values:
                        continue
                    if self._rng.random() < spec.daily_change_probability:
                        old = values[name]
                        new = spec.mutate(self._rng, old)
                        values[name] = new
                        record = ChangeRecord(self.today, key, name, old, new)
                        changes.append(record)
                        self._history.append(record)
        return changes

    # -- truth queries -----------------------------------------------------------

    @property
    def keys(self) -> tuple[Any, ...]:
        return tuple(sorted(self._entities, key=repr))

    def truth(self) -> dict[Any, dict[str, Any]]:
        """Current truth (deep-ish copy: per-entity dict copies)."""
        return {key: dict(values) for key, values in self._entities.items()}

    def truth_of(self, key: Any) -> dict[str, Any]:
        """Current truth for one entity."""
        try:
            return dict(self._entities[key])
        except KeyError:
            raise ManufacturingError(f"world has no entity {key!r}") from None

    def truth_as_of(self, day: _dt.date) -> dict[Any, dict[str, Any]]:
        """The world as it was at end-of-day ``day``.

        Reconstructed by rolling back recorded changes made after
        ``day``.  Days before the simulation start return the initial
        state.
        """
        if day >= self.today:
            return self.truth()
        snapshot = self.truth()
        for record in reversed(self._history):
            if record.day <= day:
                break
            snapshot[record.key][record.attribute] = record.old_value
        return snapshot

    def value_as_of(self, key: Any, attribute: str, day: _dt.date) -> Any:
        """One entity attribute's true value at end-of-day ``day``."""
        snapshot = self.truth_as_of(day)
        try:
            return snapshot[key][attribute]
        except KeyError:
            raise ManufacturingError(
                f"no attribute {attribute!r} for entity {key!r}"
            ) from None

    @property
    def history(self) -> tuple[ChangeRecord, ...]:
        return tuple(self._history)

    def changes_for(self, key: Any) -> list[ChangeRecord]:
        """All recorded changes of one entity."""
        return [record for record in self._history if record.key == key]

    def staleness_of(self, key: Any, attribute: str, observed_day: _dt.date) -> bool:
        """Is a value observed on ``observed_day`` stale today?

        True when the attribute changed after the observation day.
        """
        return any(
            record.key == key
            and record.attribute == attribute
            and record.day > observed_day
            for record in self._history
        )

    def __repr__(self) -> str:
        return (
            f"World({len(self._entities)} entities, today={self.today}, "
            f"{len(self._history)} recorded changes)"
        )


# ---------------------------------------------------------------------------
# Common mutators
# ---------------------------------------------------------------------------


def gaussian_drift(relative_sigma: float = 0.02, minimum: float = 0.01) -> Mutator:
    """Multiplicative Gaussian drift (share prices and the like)."""

    def mutate(rng: random.Random, old: Any) -> float:
        value = float(old) * (1.0 + rng.gauss(0.0, relative_sigma))
        return round(max(value, minimum), 2)

    return mutate


def integer_step(max_step: int = 50, minimum: int = 0) -> Mutator:
    """Random integer step (employee counts and the like)."""

    def mutate(rng: random.Random, old: Any) -> int:
        return max(minimum, int(old) + rng.randint(-max_step, max_step))

    return mutate


def choice_replacement(pool: Sequence[Any]) -> Mutator:
    """Replace the value with a different item from a pool (addresses)."""
    if len(pool) < 2:
        raise ManufacturingError("choice_replacement needs a pool of ≥ 2 values")

    def mutate(rng: random.Random, old: Any) -> Any:
        candidates = [item for item in pool if item != old]
        return rng.choice(candidates)

    return mutate
