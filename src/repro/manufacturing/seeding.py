"""Process-stable seed derivation.

``hash(str)`` is salted per Python process (PYTHONHASHSEED), so seeding
RNGs with ``hash((seed, name))`` silently breaks the simulator's
cross-run determinism guarantee.  :func:`stable_seed` derives seeds
from SHA-256 instead, so equal inputs give equal streams in every
process, forever.
"""

from __future__ import annotations

import hashlib
from typing import Any


def stable_seed(*parts: Any) -> int:
    """A deterministic 64-bit seed from arbitrary repr-able parts.

    >>> stable_seed(7, "clients") == stable_seed(7, "clients")
    True
    >>> stable_seed(7, "clients") != stable_seed(8, "clients")
    True
    """
    digest = hashlib.sha256(
        "\x1f".join(repr(part) for part in parts).encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big")
