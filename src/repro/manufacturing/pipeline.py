"""The manufacturing pipeline: world → source → collection → tagged data.

This is where the simulation meets the paper's model: every
manufactured cell is tagged with the quality indicators Table 2 shows
(``source``, ``creation_time``) plus ``collection_method``, and every
processing step is recorded on the electronic trail so the
administrator can trace an erred datum end to end (§4).
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Optional, Sequence

from repro.errors import ManufacturingError
from repro.manufacturing.collection import CollectionMethod
from repro.manufacturing.sources import DataSource
from repro.manufacturing.world import World
from repro.quality.audit import ElectronicTrail
from repro.relational.schema import RelationSchema
from repro.tagging.cell import QualityCell
from repro.tagging.indicators import IndicatorDefinition, IndicatorValue, TagSchema
from repro.tagging.relation import TaggedRelation

#: The indicators the pipeline stamps on every manufactured cell.
PIPELINE_INDICATORS: tuple[IndicatorDefinition, ...] = (
    IndicatorDefinition("source", "STR", "which source supplied the value"),
    IndicatorDefinition("creation_time", "DATE", "world day the value reflects"),
    IndicatorDefinition("collection_method", "STR", "capture mechanism used"),
)


@dataclass(frozen=True)
class Route:
    """How one attribute is manufactured: which source, which method."""

    attribute: str
    source: DataSource
    method: CollectionMethod


@dataclass(frozen=True)
class ManufacturedCell:
    """Bookkeeping for one manufactured cell (feeds defect statistics)."""

    key: Any
    attribute: str
    value: Any
    true_value: Any
    source: str
    method: str
    observed_day: _dt.date
    erroneous: bool
    missing: bool


def pipeline_tag_schema(
    value_columns: Sequence[str],
    extra_indicators: Sequence[IndicatorDefinition] = (),
) -> TagSchema:
    """A tag schema allowing the pipeline indicators on the given columns."""
    indicators = list(PIPELINE_INDICATORS) + list(extra_indicators)
    names = [d.name for d in PIPELINE_INDICATORS]
    return TagSchema(
        indicators=indicators,
        allowed={column: list(names) for column in value_columns},
    )


class ManufacturingPipeline:
    """Manufactures a tagged relation from the simulated world.

    Parameters
    ----------
    world:
        The ground-truth world.
    schema:
        Output relation schema.  Must contain ``key_column`` plus the
        routed attributes.
    key_column:
        Column holding the entity key (tagged-exempt: keys are
        identifiers, not manufactured observations).
    trail:
        Electronic trail to record events on (fresh one if omitted).
    """

    def __init__(
        self,
        world: World,
        schema: RelationSchema,
        key_column: str,
        trail: Optional[ElectronicTrail] = None,
    ) -> None:
        schema.column(key_column)
        self.world = world
        self.schema = schema
        self.key_column = key_column
        self.trail = trail or ElectronicTrail()
        self._routes: dict[str, Route] = {}
        self.manufactured: list[ManufacturedCell] = []

    # -- routing ------------------------------------------------------------

    def assign(
        self, attribute: str, source: DataSource, method: CollectionMethod
    ) -> Route:
        """Route one attribute through a source and collection method."""
        self.schema.column(attribute)
        if attribute == self.key_column:
            raise ManufacturingError("the key column is not manufactured")
        route = Route(attribute, source, method)
        self._routes[attribute] = route
        return route

    @property
    def routes(self) -> dict[str, Route]:
        return dict(self._routes)

    # -- manufacturing ------------------------------------------------------------

    def _manufacture_cell(
        self, key: Any, route: Route, report_day: _dt.date
    ) -> tuple[QualityCell, ManufacturedCell]:
        observation = route.source.observe(key, route.attribute, report_day)
        self.trail.record(
            "collected",
            self.schema.name,
            (key,),
            actor=route.source.name,
            attribute=route.attribute,
            value=observation.value,
            observed_day=str(observation.observed_day),
        )
        captured, transcription_error = route.method.capture(observation.value)
        self.trail.record(
            "captured",
            self.schema.name,
            (key,),
            actor=route.method.name,
            attribute=route.attribute,
            value=captured,
            corrupted=transcription_error,
        )
        true_now = self.world.value_as_of(key, route.attribute, report_day)
        record = ManufacturedCell(
            key=key,
            attribute=route.attribute,
            value=captured,
            true_value=true_now,
            source=route.source.name,
            method=route.method.name,
            observed_day=observation.observed_day,
            erroneous=(captured != true_now and captured is not None),
            missing=captured is None,
        )
        cell = QualityCell(
            captured,
            [
                IndicatorValue("source", route.source.name),
                IndicatorValue("creation_time", observation.observed_day),
                IndicatorValue("collection_method", route.method.name),
            ],
        )
        return cell, record

    def manufacture(
        self,
        keys: Optional[Sequence[Any]] = None,
        report_day: Optional[_dt.date] = None,
        extra_indicators: Sequence[IndicatorDefinition] = (),
    ) -> TaggedRelation:
        """Manufacture one tagged relation snapshot.

        Each routed attribute of each entity is observed, captured, and
        tagged; unrouted non-key columns are left NULL and untagged.
        """
        if not self._routes:
            raise ManufacturingError("no attributes routed; call assign() first")
        report = report_day or self.world.today
        value_columns = [
            c for c in self.schema.column_names if c != self.key_column
        ]
        relation = TaggedRelation(
            self.schema, pipeline_tag_schema(value_columns, extra_indicators)
        )
        for key in keys if keys is not None else self.world.keys:
            cells: dict[str, Any] = {self.key_column: key}
            for attribute in value_columns:
                route = self._routes.get(attribute)
                if route is None:
                    cells[attribute] = None
                    continue
                cell, record = self._manufacture_cell(key, route, report)
                cells[attribute] = cell
                self.manufactured.append(record)
            relation.insert(cells)
            self.trail.record(
                "inserted",
                self.schema.name,
                (key,),
                actor="pipeline",
                report_day=str(report),
            )
        return relation

    # -- statistics for SPC -----------------------------------------------------------

    def defect_counts_by_batch(
        self, batch_size: int
    ) -> tuple[list[int], list[int]]:
        """Group manufactured cells into batches; count defects per batch.

        A defect is a manufactured cell whose value differs from the
        current truth (error or staleness) or is missing.  Returns
        (defect_counts, sample_sizes) ready for
        :func:`repro.quality.spc.p_chart`.
        """
        if batch_size <= 0:
            raise ManufacturingError("batch_size must be positive")
        counts: list[int] = []
        sizes: list[int] = []
        for start in range(0, len(self.manufactured), batch_size):
            batch = self.manufactured[start : start + batch_size]
            counts.append(
                sum(1 for cell in batch if cell.erroneous or cell.missing)
            )
            sizes.append(len(batch))
        if sizes and sizes[-1] < batch_size:
            # Drop the ragged tail so control limits stay comparable.
            counts.pop()
            sizes.pop()
        return counts, sizes

    def defect_counts_by_method(self) -> dict[str, tuple[int, int]]:
        """Per collection method: (defects, cells manufactured)."""
        stats: dict[str, list[int]] = {}
        for cell in self.manufactured:
            entry = stats.setdefault(cell.method, [0, 0])
            entry[1] += 1
            if cell.erroneous or cell.missing:
                entry[0] += 1
        return {method: (d, n) for method, (d, n) in stats.items()}
