"""Error injection models for the manufacturing simulation.

"Different means of capturing data ... each has inherent accuracy
implications.  Error rates may differ from device to device or in
different environments."  (§3.3)

Each injector takes a seeded ``random.Random`` plus the clean value and
returns a corrupted value.  Injectors never mutate inputs and are total:
values they cannot corrupt meaningfully are returned unchanged.
"""

from __future__ import annotations

import random
import string
from typing import Any, Callable, Optional, Sequence

from repro.errors import ManufacturingError

#: An injector: (rng, clean value) → corrupted value.
ErrorInjector = Callable[[random.Random, Any], Any]


def typo(rng: random.Random, value: Any) -> Any:
    """Substitute one character of a string with a random letter."""
    text = str(value)
    if not text:
        return value
    index = rng.randrange(len(text))
    replacement = rng.choice(string.ascii_lowercase)
    corrupted = text[:index] + replacement + text[index + 1 :]
    if not isinstance(value, str):
        return value  # non-strings pass through rather than become text
    return corrupted


def transposition(rng: random.Random, value: Any) -> Any:
    """Swap two adjacent characters (classic keying error)."""
    if not isinstance(value, str) or len(value) < 2:
        return value
    index = rng.randrange(len(value) - 1)
    chars = list(value)
    chars[index], chars[index + 1] = chars[index + 1], chars[index]
    return "".join(chars)


def dropped_character(rng: random.Random, value: Any) -> Any:
    """Delete one character of a string."""
    if not isinstance(value, str) or len(value) < 2:
        return value
    index = rng.randrange(len(value))
    return value[:index] + value[index + 1 :]


def numeric_noise(relative_sigma: float = 0.05) -> ErrorInjector:
    """Multiplicative Gaussian noise on numeric values."""

    def inject(rng: random.Random, value: Any) -> Any:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return value
        noisy = float(value) * (1.0 + rng.gauss(0.0, relative_sigma))
        return type(value)(round(noisy) if isinstance(value, int) else round(noisy, 2))

    return inject


def digit_slip(rng: random.Random, value: Any) -> Any:
    """Replace one digit of a number with a random digit."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return value
    text = str(abs(value))
    digit_positions = [i for i, c in enumerate(text) if c.isdigit()]
    if not digit_positions:
        return value
    index = rng.choice(digit_positions)
    digit = rng.choice("0123456789")
    corrupted_text = text[:index] + digit + text[index + 1 :]
    corrupted = type(value)(corrupted_text)
    return -corrupted if value < 0 else corrupted


def unit_error(factor: float = 1000.0) -> ErrorInjector:
    """Scale a numeric value by a wrong unit factor (thousands, cents)."""
    if factor <= 0:
        raise ManufacturingError("unit factor must be positive")

    def inject(rng: random.Random, value: Any) -> Any:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return value
        scaled = float(value) * (factor if rng.random() < 0.5 else 1.0 / factor)
        return type(value)(round(scaled) if isinstance(value, int) else scaled)

    return inject


def blanking(rng: random.Random, value: Any) -> Any:
    """Lose the value entirely (missingness)."""
    return None


#: Default per-kind injector mix, weighted toward common keying errors.
DEFAULT_STRING_INJECTORS: tuple[ErrorInjector, ...] = (
    typo,
    transposition,
    dropped_character,
)
DEFAULT_NUMERIC_INJECTORS: tuple[ErrorInjector, ...] = (
    numeric_noise(0.05),
    digit_slip,
)


def mixed_injector(
    string_injectors: Sequence[ErrorInjector] = DEFAULT_STRING_INJECTORS,
    numeric_injectors: Sequence[ErrorInjector] = DEFAULT_NUMERIC_INJECTORS,
    blank_probability: float = 0.0,
) -> ErrorInjector:
    """An injector dispatching on value type, with optional blanking."""
    if not 0.0 <= blank_probability <= 1.0:
        raise ManufacturingError("blank_probability must be in [0, 1]")

    def inject(rng: random.Random, value: Any) -> Any:
        if blank_probability and rng.random() < blank_probability:
            return None
        if isinstance(value, str) and string_injectors:
            return rng.choice(list(string_injectors))(rng, value)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            if numeric_injectors:
                return rng.choice(list(numeric_injectors))(rng, value)
        return value

    return inject
