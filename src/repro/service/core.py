"""The embedded query service: sessions over a thread-pool worker model.

Execution model
---------------
A :class:`QueryService` owns one query source and a fixed pool of
worker threads behind a *bounded* admission queue:

- ``submit`` pins a snapshot of the source (see below), wraps the
  statement in a ticket, and enqueues it without blocking; when the
  queue is full the service **sheds load** by raising
  :class:`~repro.errors.ServiceOverloadedError` — callers back off and
  retry rather than piling onto an unbounded backlog;
- worker threads drain the queue and run each statement through the
  ordinary executor (:func:`repro.sql.executor.execute`), so every
  engine feature — strict analysis, the planner and its shared plan
  cache, columnar execution, ``EXPLAIN [ANALYZE]`` — behaves exactly
  as in the embedded API.

Snapshot reads
--------------
Every submitted query executes against a frozen snapshot pinned at
submit time — :meth:`Database.snapshot
<repro.relational.catalog.Database.snapshot>` for catalogs,
:meth:`Relation.read_snapshot
<repro.relational.relation.Relation.read_snapshot>` for bare
relations.  Long analytical scans therefore never block writers and
never observe a write that committed after submission.  Sessions can
also :meth:`~Session.pin` explicitly to hold several statements to one
consistent version (and :meth:`~Session.refresh` to let go).

Metrics
-------
Each session keeps its own :class:`SessionStats`; while ambient
instrumentation is on (:func:`repro.obs.enable`) the service also
reports ``service.queries`` / ``service.errors`` /
``service.overloads`` counters and a ``service.latency_seconds``
histogram into the global registry, alongside the engine's own
``qsql.*`` metrics.
"""

from __future__ import annotations

import itertools
import queue
import threading
from concurrent.futures import Future
from time import perf_counter
from typing import Any, Callable, Mapping, Optional, Union

from repro.errors import ServiceClosedError, ServiceOverloadedError
from repro.obs import metrics as _obs_metrics
from repro.relational.catalog import Database
from repro.relational.relation import Relation
from repro.relational.snapshot import DatabaseSnapshot
from repro.sql.executor import execute as _execute
from repro.tagging.relation import TaggedRelation

AnyRelation = Union[Relation, TaggedRelation]
Source = Union[
    AnyRelation, Database, DatabaseSnapshot, Mapping[str, AnyRelation]
]

#: Queue sentinel telling one worker thread to exit.
_SHUTDOWN = object()


def pin_snapshot(source: Source) -> Source:
    """A frozen, consistent view of ``source`` for one query.

    ``Database`` sources pin the whole catalog behind the transaction
    write gate; bare relations pin themselves; mappings pin each member
    relation (no cross-relation gate: a plain mapping has no
    transaction manager to coordinate with).  Already-frozen sources —
    a :class:`DatabaseSnapshot`, a frozen relation — are returned
    as-is.  Snapshots are version-cached, so pinning an unchanged
    source costs a token comparison, not a copy.
    """
    if isinstance(source, Database):
        return source.snapshot()
    if isinstance(source, (Relation, TaggedRelation)):
        return source.read_snapshot()
    if isinstance(source, DatabaseSnapshot):
        return source
    if isinstance(source, Mapping):
        return {
            name: relation.read_snapshot()
            for name, relation in source.items()
        }
    raise TypeError(
        f"cannot snapshot query source of type {type(source).__name__}"
    )


class SessionStats:
    """Thread-safe per-session counters (one instance per session)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.executed = 0
        self.failed = 0
        self.rows = 0
        self.seconds = 0.0

    def _record(self, elapsed: float, rows: int, ok: bool) -> None:
        with self._lock:
            if ok:
                self.executed += 1
                self.rows += rows
            else:
                self.failed += 1
            self.seconds += elapsed

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            return {
                "executed": self.executed,
                "failed": self.failed,
                "rows": self.rows,
                "seconds": self.seconds,
            }


class Ticket:
    """A handle on one submitted query (a thin wrapper over a Future)."""

    __slots__ = ("sql", "_future")

    def __init__(self, sql: str, future: "Future[AnyRelation]") -> None:
        self.sql = sql
        self._future = future

    def done(self) -> bool:
        return self._future.done()

    def result(self, timeout: Optional[float] = None) -> AnyRelation:
        """Block until the query finishes; re-raises its exception."""
        return self._future.result(timeout)

    def exception(self, timeout: Optional[float] = None):
        return self._future.exception(timeout)


class _Job:
    """One queued statement: text + pinned source + options + ticket."""

    __slots__ = ("sql", "source", "options", "future", "stats")

    def __init__(
        self,
        sql: str,
        source: Source,
        options: dict[str, Any],
        future: "Future[AnyRelation]",
        stats: Optional[SessionStats],
    ) -> None:
        self.sql = sql
        self.source = source
        self.options = options
        self.future = future
        self.stats = stats


class QueryService:
    """A concurrent query front door over one source.

    Parameters
    ----------
    source:
        What queries run against: a :class:`Database`, a (tagged)
        relation, a name → relation mapping, or an already-frozen
        :class:`DatabaseSnapshot`.
    workers:
        Worker thread count (the execution concurrency).
    max_pending:
        Admission-queue bound.  ``submit`` with a full queue raises
        :class:`~repro.errors.ServiceOverloadedError` instead of
        waiting.
    snapshot_reads:
        When True (the default), every query is pinned to a frozen
        snapshot at submit time.  ``False`` executes against the live
        source — last-resort for callers that must read their own
        in-flight transaction.
    runner:
        Test hook: a callable wrapping each statement execution
        (default: call it).  Lets tests gate the workers to fill the
        queue deterministically.

    Example
    -------
    >>> from repro.relational.catalog import Database
    >>> from repro.relational.schema import schema
    >>> db = Database("corp")
    >>> _ = db.create_relation(schema("t", [("a", "INT")]))
    >>> _ = db.insert("t", {"a": 1})
    >>> with QueryService(db, workers=2) as svc:
    ...     with svc.session() as session:
    ...         [row["a"] for row in session.execute("SELECT a FROM t")]
    [1]
    """

    def __init__(
        self,
        source: Source,
        *,
        workers: int = 4,
        max_pending: int = 64,
        name: str = "query-service",
        snapshot_reads: bool = True,
        runner: Optional[Callable[[Callable[[], AnyRelation]], AnyRelation]] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        self._source = source
        self.name = name
        self.snapshot_reads = snapshot_reads
        self._runner = runner if runner is not None else (lambda fn: fn())
        self._queue: "queue.Queue[Any]" = queue.Queue(maxsize=max_pending)
        self._closed = threading.Event()
        self._session_ids = itertools.count(1)
        self._stats_lock = threading.Lock()
        self._submitted = 0
        self._completed = 0
        self._failed = 0
        self._rejected = 0
        self._workers = [
            threading.Thread(
                target=self._worker_loop,
                name=f"{name}-worker-{index}",
                daemon=True,
            )
            for index in range(workers)
        ]
        for worker in self._workers:
            worker.start()

    # -- sessions --------------------------------------------------------------

    def session(
        self,
        *,
        strict: bool = False,
        planner: bool = True,
        columnar: bool = True,
    ) -> "Session":
        """Open a session with these execution defaults."""
        self._require_open()
        return Session(
            self,
            next(self._session_ids),
            strict=strict,
            planner=planner,
            columnar=columnar,
        )

    # -- submission ------------------------------------------------------------

    def submit(
        self,
        sql: str,
        *,
        strict: bool = False,
        planner: bool = True,
        columnar: bool = True,
        snapshot: Optional[Source] = None,
        stats: Optional[SessionStats] = None,
    ) -> Ticket:
        """Enqueue one statement; returns immediately with a ticket.

        The source snapshot is pinned *here*, not when a worker picks
        the job up — a write committed after ``submit`` returns is
        invisible to this query no matter how long it waits or runs.
        """
        self._require_open()
        if snapshot is not None:
            pinned = snapshot
        elif self.snapshot_reads:
            pinned = pin_snapshot(self._source)
        else:
            pinned = self._source
        future: "Future[AnyRelation]" = Future()
        job = _Job(
            sql,
            pinned,
            {"strict": strict, "planner": planner, "columnar": columnar},
            future,
            stats,
        )
        try:
            self._queue.put_nowait(job)
        except queue.Full:
            with self._stats_lock:
                self._rejected += 1
            if _obs_metrics.enabled():
                _obs_metrics.global_registry().counter(
                    "service.overloads",
                    "queries rejected by admission control",
                ).inc()
            raise ServiceOverloadedError(
                f"service {self.name!r} is overloaded: "
                f"{self._queue.maxsize} queries already pending"
            ) from None
        with self._stats_lock:
            self._submitted += 1
        return Ticket(sql, future)

    def execute(self, sql: str, **options: Any) -> AnyRelation:
        """Submit and wait: the blocking convenience path."""
        return self.submit(sql, **options).result()

    # -- workers ---------------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            job = self._queue.get()
            try:
                if job is _SHUTDOWN:
                    return
                self._run_job(job)
            finally:
                self._queue.task_done()

    def _run_job(self, job: _Job) -> None:
        if not job.future.set_running_or_notify_cancel():
            return
        start = perf_counter()
        try:
            result = self._runner(
                lambda: _execute(job.sql, job.source, **job.options)
            )
        except BaseException as exc:
            self._note_finished(job, perf_counter() - start, rows=0, error=True)
            job.future.set_exception(exc)
        else:
            self._note_finished(
                job, perf_counter() - start, rows=len(result), error=False
            )
            job.future.set_result(result)

    def _note_finished(
        self, job: _Job, elapsed: float, rows: int, error: bool
    ) -> None:
        with self._stats_lock:
            if error:
                self._failed += 1
            else:
                self._completed += 1
        if job.stats is not None:
            job.stats._record(elapsed, rows, ok=not error)
        if _obs_metrics.enabled():
            registry = _obs_metrics.global_registry()
            if error:
                registry.counter(
                    "service.errors", "service queries raising an error"
                ).inc()
            else:
                registry.counter(
                    "service.queries", "service queries completed"
                ).inc()
            registry.histogram(
                "service.latency_seconds",
                description="wall time per service query execution",
            ).observe(elapsed)

    # -- introspection ---------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """Service-level counters plus the current queue depth."""
        with self._stats_lock:
            return {
                "name": self.name,
                "workers": len(self._workers),
                "max_pending": self._queue.maxsize,
                "pending": self._queue.qsize(),
                "submitted": self._submitted,
                "completed": self._completed,
                "failed": self._failed,
                "rejected": self._rejected,
                "closed": self._closed.is_set(),
            }

    @property
    def closed(self) -> bool:
        return self._closed.is_set()

    def _require_open(self) -> None:
        if self._closed.is_set():
            raise ServiceClosedError(f"service {self.name!r} is closed")

    # -- lifecycle -------------------------------------------------------------

    def close(self, wait: bool = True) -> None:
        """Stop admitting queries and shut the workers down.

        Already-queued queries still run to completion (the shutdown
        sentinels queue *behind* them); ``wait=True`` joins the worker
        threads.  Idempotent.
        """
        if self._closed.is_set():
            return
        self._closed.set()
        for _ in self._workers:
            self._queue.put(_SHUTDOWN)
        if wait:
            for worker in self._workers:
                worker.join()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.close()


class Session:
    """One caller's handle on a :class:`QueryService`.

    Sessions carry execution defaults (``strict`` / ``planner`` /
    ``columnar``), per-session :class:`SessionStats`, and an optional
    explicit snapshot pin.  They are cheap (no dedicated thread) and
    are context managers::

        with service.session(strict=True) as session:
            rows = session.execute("SELECT a FROM t")
    """

    def __init__(
        self,
        service: QueryService,
        session_id: int,
        *,
        strict: bool,
        planner: bool,
        columnar: bool,
    ) -> None:
        self._service = service
        self.session_id = session_id
        self.strict = strict
        self.planner = planner
        self.columnar = columnar
        self.stats = SessionStats()
        self._pinned: Optional[Source] = None
        self._closed = False

    # -- pinning ---------------------------------------------------------------

    @property
    def pinned(self) -> Optional[Source]:
        """The explicitly pinned snapshot, or None (pin per statement)."""
        return self._pinned

    def pin(self) -> Source:
        """Pin the source *now*; later statements all read this version."""
        self._require_open()
        self._pinned = pin_snapshot(self._service._source)
        return self._pinned

    def refresh(self) -> None:
        """Drop the explicit pin: statements pin fresh at submit again."""
        self._pinned = None

    # -- execution -------------------------------------------------------------

    def submit(
        self,
        sql: str,
        *,
        strict: Optional[bool] = None,
        planner: Optional[bool] = None,
        columnar: Optional[bool] = None,
    ) -> Ticket:
        """Enqueue one statement under this session's defaults."""
        self._require_open()
        return self._service.submit(
            sql,
            strict=self.strict if strict is None else strict,
            planner=self.planner if planner is None else planner,
            columnar=self.columnar if columnar is None else columnar,
            snapshot=self._pinned,
            stats=self.stats,
        )

    def execute(self, sql: str, **options: Any) -> AnyRelation:
        """Submit and wait for one statement."""
        return self.submit(sql, **options).result()

    def explain(self, sql: str, analyze: bool = False) -> AnyRelation:
        """The plan (or executed-plan) relation for a statement."""
        keyword = "EXPLAIN ANALYZE" if analyze else "EXPLAIN"
        return self.execute(f"{keyword} {sql}")

    # -- lifecycle -------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def _require_open(self) -> None:
        if self._closed:
            raise ServiceClosedError(
                f"session {self.session_id} of service "
                f"{self._service.name!r} is closed"
            )

    def close(self) -> None:
        """Close the session; its stats stay readable."""
        self._closed = True
        self._pinned = None

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.close()
