"""Zero-dependency HTTP front end for :class:`~repro.service.core.QueryService`.

Endpoints
---------
``POST /query``
    Body: ``{"sql": "...", "strict": false, "planner": true,
    "columnar": true, "tags": false}`` (only ``sql`` is required).
    Replies ``200`` with ``{"columns", "rows", "row_count"}`` —
    plus per-cell ``"tags"`` when requested against a tagged source —
    ``400`` on malformed requests or query errors, ``503`` with
    ``{"error": "overloaded"}`` when admission control sheds the
    query, ``500`` on unexpected faults.

``GET /health``
    ``{"status": "ok"}`` plus the service name.

``GET /stats``
    The service's counters (:meth:`QueryService.stats`).

``GET /metrics``
    The global metric registry in Prometheus text format (populated
    while :func:`repro.obs.enable` is on).

Built on :class:`http.server.ThreadingHTTPServer`: each connection
gets a handler thread, and the handler blocks on the service ticket —
so the *service's* worker pool and bounded queue remain the real
concurrency and admission limits.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Optional

from repro.errors import (
    ReproError,
    ServiceClosedError,
    ServiceOverloadedError,
)
from repro.service.core import QueryService
from repro.tagging.relation import TaggedRelation

#: Request-body size cap (1 MiB): statements are text, not bulk loads.
MAX_BODY_BYTES = 1 << 20


def relation_to_payload(
    relation: Any, include_tags: bool = False
) -> dict[str, Any]:
    """Serialize a query result relation as the JSON response payload."""
    columns = list(relation.schema.column_names)
    payload: dict[str, Any] = {
        "columns": columns,
        "rows": [list(row.values_tuple()) for row in relation],
        "row_count": len(relation),
    }
    if include_tags and isinstance(relation, TaggedRelation):
        payload["tags"] = [
            {
                name: cell.tags_dict()
                for name, cell in row.cells_dict().items()
                if cell.tags
            }
            for row in relation
        ]
    return payload


class ServiceHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`QueryService`."""

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        service: QueryService,
        quiet: bool = True,
    ) -> None:
        self.service = service
        self.quiet = quiet
        super().__init__(address, _ServiceRequestHandler)


def make_server(
    service: QueryService, host: str = "127.0.0.1", port: int = 8080
) -> ServiceHTTPServer:
    """Bind a :class:`ServiceHTTPServer` (``port=0`` picks a free port)."""
    return ServiceHTTPServer((host, port), service)


class _ServiceRequestHandler(BaseHTTPRequestHandler):
    server_version = "repro-service/1"
    protocol_version = "HTTP/1.1"

    server: ServiceHTTPServer  # narrowed for attribute access

    # -- plumbing --------------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:
        if not self.server.quiet:  # pragma: no cover - default is quiet
            super().log_message(format, *args)

    def _reply(
        self,
        status: int,
        payload: Any,
        content_type: str = "application/json",
    ) -> None:
        if isinstance(payload, (dict, list)):
            # default=str renders dates/datetimes (DATE/DATETIME domains)
            # and any other non-JSON scalar as their string form.
            body = json.dumps(payload, default=str).encode("utf-8")
        else:
            body = str(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _reply_error(self, status: int, message: str) -> None:
        self._reply(status, {"error": message})

    # -- GET -------------------------------------------------------------------

    def do_GET(self) -> None:
        if self.path == "/health":
            self._reply(
                200, {"status": "ok", "service": self.server.service.name}
            )
        elif self.path == "/stats":
            self._reply(200, self.server.service.stats())
        elif self.path == "/metrics":
            from repro.obs import global_registry, to_prometheus

            self._reply(
                200,
                to_prometheus(global_registry()),
                content_type="text/plain; version=0.0.4",
            )
        else:
            self._reply_error(404, f"no such endpoint: {self.path}")

    # -- POST ------------------------------------------------------------------

    def do_POST(self) -> None:
        if self.path != "/query":
            self._reply_error(404, f"no such endpoint: {self.path}")
            return
        request = self._read_request()
        if request is None:
            return  # error already sent
        sql, options, include_tags = request
        service = self.server.service
        try:
            result = service.execute(sql, **options)
        except ServiceOverloadedError:
            self._reply_error(503, "overloaded")
            return
        except ServiceClosedError:
            self._reply_error(503, "shutting down")
            return
        except ReproError as exc:
            # SQLError, analysis errors, constraint errors, ... — all
            # derive from ReproError: the caller's statement is at fault.
            self._reply_error(400, str(exc))
            return
        except Exception as exc:  # pragma: no cover - defensive
            self._reply_error(500, f"internal error: {exc}")
            return
        self._reply(200, relation_to_payload(result, include_tags))

    def _read_request(
        self,
    ) -> Optional[tuple[str, dict[str, Any], bool]]:
        """Parse the POST body; replies 400 and returns None on errors."""
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            self._reply_error(400, "request body required")
            return None
        if length > MAX_BODY_BYTES:
            self._reply_error(400, "request body too large")
            return None
        try:
            document = json.loads(self.rfile.read(length).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self._reply_error(400, f"invalid JSON body: {exc}")
            return None
        if not isinstance(document, dict):
            self._reply_error(400, "body must be a JSON object")
            return None
        sql = document.get("sql")
        if not isinstance(sql, str) or not sql.strip():
            self._reply_error(400, 'body must carry a non-empty "sql" string')
            return None
        options: dict[str, Any] = {}
        for option in ("strict", "planner", "columnar"):
            if option in document:
                value = document[option]
                if not isinstance(value, bool):
                    self._reply_error(
                        400, f'option "{option}" must be a boolean'
                    )
                    return None
                options[option] = value
        include_tags = document.get("tags", False)
        if not isinstance(include_tags, bool):
            self._reply_error(400, 'option "tags" must be a boolean')
            return None
        return sql, options, include_tags
