"""Concurrent query service: sessions, admission control, snapshot reads.

The paper's quality-tagged relational model only matters operationally
when many applications query it at once (the ROADMAP's "millions of
users" north star).  This package is that front door, in two layers:

- :mod:`repro.service.core` — the embedded :class:`QueryService`:
  a thread-pool worker model over one source (``Database``, relation,
  or mapping), a bounded admission queue that sheds load with
  :class:`~repro.errors.ServiceOverloadedError` instead of queueing
  unboundedly, per-session statistics wired into :mod:`repro.obs`,
  and copy-on-write **snapshot reads** — every query is pinned at
  submit time to a frozen catalog/relation version
  (:meth:`Database.snapshot <repro.relational.catalog.Database.snapshot>`),
  so long analytical QSQL statements never block writers and never
  observe a mid-scan write;
- :mod:`repro.service.http` — a zero-dependency ``http.server`` front
  end (``python -m repro.service``) exposing ``POST /query`` plus
  ``GET /health``, ``/stats``, and ``/metrics`` (Prometheus text).

Both honor the executor's ``strict=``, ``planner=``, ``columnar=``
options and ``EXPLAIN`` / ``EXPLAIN ANALYZE`` statements.
"""

from repro.errors import (
    ServiceClosedError,
    ServiceError,
    ServiceOverloadedError,
)
from repro.service.core import (
    QueryService,
    Session,
    SessionStats,
    Ticket,
    pin_snapshot,
)

__all__ = [
    "QueryService",
    "ServiceClosedError",
    "ServiceError",
    "ServiceOverloadedError",
    "Session",
    "SessionStats",
    "Ticket",
    "pin_snapshot",
]
