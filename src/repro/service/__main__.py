"""``python -m repro.service``: serve a scenario database over HTTP.

Builds one of the ``repro-stats`` scenario settings (default: the
64-bucket partitioned events database), wraps it in a
:class:`~repro.service.core.QueryService`, and serves ``POST /query``
plus ``GET /health`` / ``/stats`` / ``/metrics`` until interrupted::

    python -m repro.service --port 8080 --workers 4
    curl -s localhost:8080/query -d '{"sql": "SELECT ... FROM events"}'
"""

from __future__ import annotations

import argparse
from typing import Optional, Sequence

from repro.obs import metrics as _obs_metrics
from repro.service.core import QueryService
from repro.service.http import make_server


def main(argv: Optional[Sequence[str]] = None) -> int:
    from repro.obs.cli import _DEFAULT_SCALES, _SCENARIOS

    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Serve a scenario database over the HTTP query service.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=8080, help="0 picks a free port"
    )
    parser.add_argument(
        "--workers", type=int, default=4, help="query worker threads"
    )
    parser.add_argument(
        "--queue",
        type=int,
        default=64,
        help="admission-queue bound (full queue replies 503 overloaded)",
    )
    parser.add_argument(
        "--scenario",
        choices=sorted(_SCENARIOS),
        default="partitions",
        help="which scenario database to serve (default: partitions)",
    )
    parser.add_argument(
        "--scale", type=int, default=None, help="scenario size override"
    )
    args = parser.parse_args(argv)

    source, sample_sql, title = _SCENARIOS[args.scenario](
        args.scale or _DEFAULT_SCALES[args.scenario]
    )
    _obs_metrics.enable()  # populate GET /metrics
    service = QueryService(
        source,
        workers=args.workers,
        max_pending=args.queue,
        name=f"repro-{args.scenario}",
    )
    server = make_server(service, args.host, args.port)
    host, port = server.server_address[:2]
    print(f"serving {title!r}")
    print(f"  POST http://{host}:{port}/query")
    print(f'  e.g. {{"sql": "{sample_sql}"}}')
    print(f"  GET  http://{host}:{port}/health | /stats | /metrics")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        service.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
