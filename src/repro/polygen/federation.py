"""A simulated multi-database federation with polygen query execution.

The polygen papers' setting is a composite information system over
heterogeneous local databases.  :class:`Federation` simulates that
setting: several named :class:`LocalDatabase` instances (each wrapping a
:class:`~repro.relational.catalog.Database`) are registered, and queries
are executed through the polygen algebra so every result cell carries
its provenance.
"""

from __future__ import annotations

import time
from typing import Callable, Optional, Sequence, Union

from repro.errors import (
    FederationError,
    FederationUnavailableError,
    SourceUnavailableError,
)
from repro.polygen import algebra
from repro.polygen.faults import (
    FaultInjector,
    FederationResult,
    SourceReport,
    UnreliableSource,
)
from repro.polygen.model import PolygenRelation, PolygenRow
from repro.polygen.retry import CircuitBreaker, RetryPolicy
from repro.relational.catalog import Database


class LocalDatabase:
    """A named participant of the federation.

    Parameters
    ----------
    database:
        The wrapped relational database holding local data.
    credibility:
        Optional numeric credibility rating used by conflict-resolution
        policies (higher is more credible).  This mirrors the paper's
        quality parameter *source credibility* being derived from the
        quality indicator *source*.
    """

    def __init__(self, database: Database, credibility: float = 1.0) -> None:
        self.database = database
        self.credibility = credibility

    @property
    def name(self) -> str:
        return self.database.name

    def export(self, relation_name: str) -> PolygenRelation:
        """Export one relation with every cell source-tagged."""
        relation = self.database.relation(relation_name)
        return PolygenRelation.from_relation(relation, self.name)

    def __repr__(self) -> str:
        return f"LocalDatabase({self.name!r}, credibility={self.credibility})"


#: Anything the federation can query: a plain participant or one
#: wrapped behind fault handling.
Participant = Union[LocalDatabase, UnreliableSource]


class Federation:
    """A registry of local databases plus polygen query helpers."""

    def __init__(self, name: str = "federation") -> None:
        self.name = name
        self._locals: dict[str, Participant] = {}

    # -- registry -----------------------------------------------------------

    def register(self, database: Database, credibility: float = 1.0) -> LocalDatabase:
        """Add a local database (its name must be unique)."""
        if database.name in self._locals:
            raise FederationError(
                f"federation already has a database named {database.name!r}"
            )
        local = LocalDatabase(database, credibility)
        self._locals[database.name] = local
        return local

    def wrap_unreliable(
        self,
        name: str,
        injector: Optional[FaultInjector] = None,
        retry: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        wall_clock: Callable[[], float] = time.time,
    ) -> UnreliableSource:
        """Put a registered participant behind fault handling.

        The participant named ``name`` is replaced in the registry by an
        :class:`~repro.polygen.faults.UnreliableSource` wrapping it;
        queries keep working unchanged, but acquisition now goes through
        fault injection (if any), the retry policy, and the breaker.
        Wrapping twice stacks adapters — call it once per source.
        """
        wrapped = UnreliableSource(
            self.local(name),
            injector=injector,
            retry=retry,
            breaker=breaker,
            wall_clock=wall_clock,
        )
        self._locals[name] = wrapped
        return wrapped

    def local(self, name: str) -> Participant:
        """Look up a participant by name."""
        try:
            return self._locals[name]
        except KeyError:
            raise FederationError(
                f"federation has no database {name!r} "
                f"(registered: {sorted(self._locals)})"
            ) from None

    @property
    def database_names(self) -> tuple[str, ...]:
        return tuple(sorted(self._locals))

    def credibility(self, source: str) -> float:
        """Credibility of one source (0.0 if unregistered)."""
        local = self._locals.get(source)
        return local.credibility if local else 0.0

    def __repr__(self) -> str:
        return f"Federation({self.name!r}, databases={list(self.database_names)})"

    # -- query helpers ----------------------------------------------------------

    def _resolve_names(self, databases: Optional[Sequence[str]]) -> list[str]:
        """Validated query participants: deduplicated, order-preserving.

        Duplicate names collapse to their first occurrence (listing a
        source twice must not union its export twice) and unknown names
        fail fast — before any export work is attempted.
        """
        names = (
            list(databases) if databases is not None else list(self.database_names)
        )
        seen: set[str] = set()
        ordered = [n for n in names if not (n in seen or seen.add(n))]
        unknown = [n for n in ordered if n not in self._locals]
        if unknown:
            raise FederationError(
                f"federation has no database(s) {unknown} "
                f"(registered: {sorted(self._locals)})"
            )
        if not ordered:
            raise FederationError("union_all requires at least one database")
        return ordered

    def _fetch_with_report(
        self, participant: Participant, relation_name: str
    ) -> tuple[Optional[PolygenRelation], SourceReport]:
        """Tolerant export from one participant, plain or wrapped."""
        fetch = getattr(participant, "export_with_report", None)
        if fetch is not None:
            return fetch(relation_name)
        try:
            relation = participant.export(relation_name)
        except SourceUnavailableError as exc:
            # A duck-typed remote participant signalling unavailability.
            return None, SourceReport(
                source=participant.name,
                status="failed",
                attempts=max(exc.attempts, 1),
                error=str(exc),
            )
        return relation, SourceReport(
            source=participant.name,
            status="ok",
            attempts=1,
            retrieved_at=time.time(),
        )

    def export(
        self,
        database_name: str,
        relation_name: str,
        require_all: Optional[bool] = None,
    ) -> PolygenRelation | FederationResult:
        """Source-tagged export of one local relation.

        With ``require_all=None`` (default) this is the raw path: the
        bare :class:`PolygenRelation` is returned and source failures
        propagate as exceptions.  With ``require_all=False`` the export
        is fault-tolerant and returns a :class:`FederationResult` whose
        relation is ``None`` if the source is degraded; with
        ``require_all=True`` it returns the same result on success but
        raises :class:`FederationUnavailableError` on failure.
        """
        participant = self.local(database_name)
        if require_all is None:
            return participant.export(relation_name)
        relation, report = self._fetch_with_report(participant, relation_name)
        if relation is None and require_all:
            raise FederationUnavailableError(
                f"source {database_name!r} is unavailable: {report.describe()}",
                {database_name: report.error or report.status},
            )
        return FederationResult(relation, {database_name: report})

    def union_all(
        self,
        relation_name: str,
        databases: Optional[Sequence[str]] = None,
        require_all: Optional[bool] = None,
    ) -> PolygenRelation | FederationResult:
        """Polygen union of the same-named relation across databases.

        Duplicate values merge their originating sources — the
        federation-wide "who else knows this fact" view.

        ``require_all`` selects the failure semantics:

        - ``None`` (default) — the raw path: a bare
          :class:`PolygenRelation`; any source failure propagates as an
          exception (pre-fault-tolerance behavior);
        - ``False`` — fault-tolerant: a :class:`FederationResult`
          holding the *partial* union over the sources that answered,
          plus per-source acquisition reports (``degraded_sources``
          names the ones that did not);
        - ``True`` — strict: the same :class:`FederationResult`, but
          any degraded source raises
          :class:`FederationUnavailableError` naming which sources
          failed and why.
        """
        ordered = self._resolve_names(databases)
        if require_all is None:
            result = self.local(ordered[0]).export(relation_name)
            for name in ordered[1:]:
                result = algebra.union(result, self.local(name).export(relation_name))
            return result

        reports: dict[str, SourceReport] = {}
        exported: list[PolygenRelation] = []
        for name in ordered:
            relation, report = self._fetch_with_report(
                self._locals[name], relation_name
            )
            reports[name] = report
            if relation is not None:
                exported.append(relation)
        failures = {
            name: report.error or report.status
            for name, report in reports.items()
            if report.failed
        }
        if failures and require_all:
            detail = "; ".join(
                reports[name].describe() for name in sorted(failures)
            )
            raise FederationUnavailableError(
                f"union_all({relation_name!r}) requires all of "
                f"{ordered} but {sorted(failures)} failed: {detail}",
                failures,
            )
        if not exported:
            raise FederationUnavailableError(
                f"union_all({relation_name!r}): every source failed "
                f"({sorted(failures)})",
                failures,
            )
        result = exported[0]
        for relation in exported[1:]:
            result = algebra.union(result, relation)
        return FederationResult(result, reports)

    def most_credible(
        self,
        relation: PolygenRelation,
        key_columns: Sequence[str],
    ) -> PolygenRelation:
        """Resolve conflicts by source credibility.

        For rows sharing key values, keep the row whose best originating
        source has the highest registered credibility.
        """

        def row_credibility(row: PolygenRow) -> float:
            best = 0.0
            for cell in row.cells:
                for source in cell.originating:
                    best = max(best, self.credibility(source))
            return best

        def prefer(a: PolygenRow, b: PolygenRow) -> PolygenRow:
            return a if row_credibility(a) >= row_credibility(b) else b

        return algebra.coalesce(relation, prefer, key_columns)

    def provenance_report(self, relation: PolygenRelation) -> dict[str, dict[str, int]]:
        """Per-source contribution counts over a polygen relation.

        Returns ``{source: {"originating": n, "intermediate": m}}`` where
        n/m count cells listing the source in the respective set.
        """
        report: dict[str, dict[str, int]] = {}
        for row in relation:
            for cell in row.cells:
                for source in cell.originating:
                    entry = report.setdefault(
                        source, {"originating": 0, "intermediate": 0}
                    )
                    entry["originating"] += 1
                for source in cell.intermediate:
                    entry = report.setdefault(
                        source, {"originating": 0, "intermediate": 0}
                    )
                    entry["intermediate"] += 1
        return report
