"""A simulated multi-database federation with polygen query execution.

The polygen papers' setting is a composite information system over
heterogeneous local databases.  :class:`Federation` simulates that
setting: several named :class:`LocalDatabase` instances (each wrapping a
:class:`~repro.relational.catalog.Database`) are registered, and queries
are executed through the polygen algebra so every result cell carries
its provenance.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.errors import FederationError
from repro.polygen import algebra
from repro.polygen.model import PolygenRelation, PolygenRow
from repro.relational.catalog import Database


class LocalDatabase:
    """A named participant of the federation.

    Parameters
    ----------
    database:
        The wrapped relational database holding local data.
    credibility:
        Optional numeric credibility rating used by conflict-resolution
        policies (higher is more credible).  This mirrors the paper's
        quality parameter *source credibility* being derived from the
        quality indicator *source*.
    """

    def __init__(self, database: Database, credibility: float = 1.0) -> None:
        self.database = database
        self.credibility = credibility

    @property
    def name(self) -> str:
        return self.database.name

    def export(self, relation_name: str) -> PolygenRelation:
        """Export one relation with every cell source-tagged."""
        relation = self.database.relation(relation_name)
        return PolygenRelation.from_relation(relation, self.name)

    def __repr__(self) -> str:
        return f"LocalDatabase({self.name!r}, credibility={self.credibility})"


class Federation:
    """A registry of local databases plus polygen query helpers."""

    def __init__(self, name: str = "federation") -> None:
        self.name = name
        self._locals: dict[str, LocalDatabase] = {}

    # -- registry -----------------------------------------------------------

    def register(self, database: Database, credibility: float = 1.0) -> LocalDatabase:
        """Add a local database (its name must be unique)."""
        if database.name in self._locals:
            raise FederationError(
                f"federation already has a database named {database.name!r}"
            )
        local = LocalDatabase(database, credibility)
        self._locals[database.name] = local
        return local

    def local(self, name: str) -> LocalDatabase:
        """Look up a participant by name."""
        try:
            return self._locals[name]
        except KeyError:
            raise FederationError(
                f"federation has no database {name!r} "
                f"(registered: {sorted(self._locals)})"
            ) from None

    @property
    def database_names(self) -> tuple[str, ...]:
        return tuple(sorted(self._locals))

    def credibility(self, source: str) -> float:
        """Credibility of one source (0.0 if unregistered)."""
        local = self._locals.get(source)
        return local.credibility if local else 0.0

    def __repr__(self) -> str:
        return f"Federation({self.name!r}, databases={list(self.database_names)})"

    # -- query helpers ----------------------------------------------------------

    def export(self, database_name: str, relation_name: str) -> PolygenRelation:
        """Source-tagged export of one local relation."""
        return self.local(database_name).export(relation_name)

    def union_all(
        self, relation_name: str, databases: Optional[Sequence[str]] = None
    ) -> PolygenRelation:
        """Polygen union of the same-named relation across databases.

        Duplicate values merge their originating sources — the
        federation-wide "who else knows this fact" view.
        """
        names = (
            list(databases) if databases is not None else list(self.database_names)
        )
        if not names:
            raise FederationError("union_all requires at least one database")
        result = self.export(names[0], relation_name)
        for name in names[1:]:
            result = algebra.union(result, self.export(name, relation_name))
        return result

    def most_credible(
        self,
        relation: PolygenRelation,
        key_columns: Sequence[str],
    ) -> PolygenRelation:
        """Resolve conflicts by source credibility.

        For rows sharing key values, keep the row whose best originating
        source has the highest registered credibility.
        """

        def row_credibility(row: PolygenRow) -> float:
            best = 0.0
            for cell in row.cells:
                for source in cell.originating:
                    best = max(best, self.credibility(source))
            return best

        def prefer(a: PolygenRow, b: PolygenRow) -> PolygenRow:
            return a if row_credibility(a) >= row_credibility(b) else b

        return algebra.coalesce(relation, prefer, key_columns)

    def provenance_report(self, relation: PolygenRelation) -> dict[str, dict[str, int]]:
        """Per-source contribution counts over a polygen relation.

        Returns ``{source: {"originating": n, "intermediate": m}}`` where
        n/m count cells listing the source in the respective set.
        """
        report: dict[str, dict[str, int]] = {}
        for row in relation:
            for cell in row.cells:
                for source in cell.originating:
                    entry = report.setdefault(
                        source, {"originating": 0, "intermediate": 0}
                    )
                    entry["originating"] += 1
                for source in cell.intermediate:
                    entry = report.setdefault(
                        source, {"originating": 0, "intermediate": 0}
                    )
                    entry["intermediate"] += 1
        return report
