"""Fluent queries over polygen relations, with source predicates.

Mirrors :class:`repro.relational.query.Query` and
:class:`repro.tagging.query.QualityQuery` for the polygen layer, adding
the provenance predicates the model exists for:

>>> # PolygenQuery(rel).where_origin("price", includes="reuters")\\
>>> #     .select("ticker", "price").run()
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional, Sequence

from repro.errors import QueryError
from repro.polygen import algebra
from repro.polygen.model import PolygenRelation, PolygenRow

_COMPARATORS: dict[str, Callable[[Any, Any], bool]] = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


class PolygenQuery:
    """A lazily-composed pipeline over a polygen relation."""

    def __init__(
        self,
        source: PolygenRelation,
        _steps: tuple[Callable[[PolygenRelation], PolygenRelation], ...] = (),
    ) -> None:
        self._source = source
        self._steps = _steps

    def _extend(
        self, step: Callable[[PolygenRelation], PolygenRelation]
    ) -> "PolygenQuery":
        return PolygenQuery(self._source, self._steps + (step,))

    # -- value predicates ------------------------------------------------------

    def where(
        self,
        predicate: Callable[[PolygenRow], bool],
        using: Sequence[str] = (),
    ) -> "PolygenQuery":
        """Filter rows; ``using`` feeds intermediate-source propagation."""
        return self._extend(
            lambda rel: algebra.select(rel, predicate, using=using)
        )

    def where_value(
        self, column: str, op: str, operand: Any
    ) -> "PolygenQuery":
        """Filter on an application value; the column is recorded as
        examined, so its sources propagate (polygen semantics)."""
        if op not in _COMPARATORS:
            raise QueryError(f"unknown operator {op!r}")
        compare = _COMPARATORS[op]

        def predicate(row: PolygenRow) -> bool:
            value = row.value(column)
            if value is None:
                return False
            try:
                return compare(value, operand)
            except TypeError:
                return False

        return self.where(predicate, using=[column])

    # -- provenance predicates --------------------------------------------------------

    def where_origin(
        self,
        column: str,
        includes: Optional[str] = None,
        excludes: Optional[str] = None,
        only: Optional[Iterable[str]] = None,
    ) -> "PolygenQuery":
        """Constrain a cell's *originating* sources.

        - ``includes`` — the source must be among the originators;
        - ``excludes`` — the source must not be an originator;
        - ``only`` — originators must be a subset of the given sources.

        Provenance predicates do not add intermediate sources: they read
        tags, not data.
        """
        if includes is None and excludes is None and only is None:
            raise QueryError(
                "where_origin requires includes=, excludes=, or only="
            )
        only_set = frozenset(only) if only is not None else None

        def predicate(row: PolygenRow) -> bool:
            origin = row[column].originating
            if includes is not None and includes not in origin:
                return False
            if excludes is not None and excludes in origin:
                return False
            if only_set is not None and not origin <= only_set:
                return False
            return True

        return self._extend(lambda rel: algebra.select(rel, predicate))

    def where_untouched_by(self, source: str) -> "PolygenQuery":
        """Keep rows no cell of which lists ``source`` anywhere.

        The administrator's quarantine query: after discovering a bad
        feed, retrieve only the data that never depended on it.
        """

        def predicate(row: PolygenRow) -> bool:
            return source not in row.row_sources()

        return self._extend(lambda rel: algebra.select(rel, predicate))

    # -- shape operations ----------------------------------------------------------------

    def select(self, *columns: str) -> "PolygenQuery":
        """Project to the named columns."""
        if not columns:
            raise QueryError("select() requires at least one column")
        return self._extend(lambda rel: algebra.project(rel, list(columns)))

    def join(
        self, other: PolygenRelation, on: Sequence[tuple[str, str]]
    ) -> "PolygenQuery":
        """Polygen equi-join (join-key sources propagate)."""
        return self._extend(lambda rel: algebra.equi_join(rel, other, on))

    def union(self, other: PolygenRelation) -> "PolygenQuery":
        """Polygen union (corroboration merges source sets)."""
        return self._extend(lambda rel: algebra.union(rel, other))

    # -- execution ---------------------------------------------------------------------------

    def run(self) -> PolygenRelation:
        """Execute the pipeline."""
        result = self._source
        for step in self._steps:
            result = step(result)
        return result

    def count(self) -> int:
        return len(self.run())

    def values(self) -> list[dict[str, Any]]:
        """Application values as plain dicts (provenance stripped)."""
        return [row.values_dict() for row in self.run()]

    def __repr__(self) -> str:
        return (
            f"PolygenQuery({self._source.schema.name!r}, "
            f"{len(self._steps)} steps)"
        )
