"""Retry policies and circuit breakers for unreliable federation sources.

The polygen setting is a composite system over *remote* heterogeneous
databases; acquisition can fail.  This module holds the two generic
fault-handling building blocks used by
:class:`~repro.polygen.faults.UnreliableSource`:

- :class:`RetryPolicy` — bounded attempts with exponential backoff and
  an optional per-call wall-time budget.  Sleep and clock are injected
  so tests (and benchmarks) never actually wait;
- :class:`CircuitBreaker` — a per-source closed/open/half-open state
  machine that stops hammering a source that keeps failing and probes
  it again after a recovery window.

Both are deliberately free of federation knowledge: they operate on
bare callables, so they are reusable wherever the library talks to
something that can fail.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Optional, Tuple

from repro.errors import CircuitOpenError, RetryExhaustedError

__all__ = [
    "CircuitBreaker",
    "ManualClock",
    "RetryPolicy",
]


class ManualClock:
    """A hand-advanced clock whose ``sleep`` just moves time forward.

    Inject ``clock=manual`` (it is callable) and ``sleep=manual.sleep``
    into a :class:`RetryPolicy` or :class:`CircuitBreaker` to make
    backoff and recovery windows instantaneous and fully deterministic.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def __call__(self) -> float:
        return self._now

    @property
    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"cannot advance a clock by {seconds}")
        self._now += seconds

    def sleep(self, seconds: float) -> None:
        """Sleep by advancing the clock — no real waiting."""
        if seconds > 0:
            self._now += seconds

    def __repr__(self) -> str:
        return f"ManualClock(now={self._now})"


class RetryPolicy:
    """Bounded retries with exponential backoff.

    Parameters
    ----------
    max_attempts:
        Total attempts including the first one (≥ 1).
    base_delay:
        Backoff before the second attempt, in seconds.
    multiplier:
        Backoff growth factor per further attempt (≥ 1).
    max_delay:
        Cap on any single backoff sleep.
    timeout:
        Optional per-call wall-time budget: once ``clock()`` says the
        call has consumed the budget, remaining attempts are abandoned
        even if ``max_attempts`` would allow more.
    sleep / clock:
        Injectable so tests use a :class:`ManualClock` instead of
        really waiting; defaults are ``time.sleep`` / ``time.monotonic``.
    """

    def __init__(
        self,
        max_attempts: int = 3,
        base_delay: float = 0.05,
        multiplier: float = 2.0,
        max_delay: float = 5.0,
        timeout: Optional[float] = None,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        if base_delay < 0:
            raise ValueError(f"base_delay must be >= 0, got {base_delay}")
        if multiplier < 1:
            raise ValueError(f"multiplier must be >= 1, got {multiplier}")
        if max_delay < 0:
            raise ValueError(f"max_delay must be >= 0, got {max_delay}")
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        self.max_attempts = max_attempts
        self.base_delay = base_delay
        self.multiplier = multiplier
        self.max_delay = max_delay
        self.timeout = timeout
        self.sleep = sleep
        self.clock = clock

    def delay_before(self, attempt: int) -> float:
        """Backoff before ``attempt`` (2-based; the first try never waits)."""
        if attempt <= 1:
            return 0.0
        return min(
            self.base_delay * self.multiplier ** (attempt - 2), self.max_delay
        )

    def run(
        self,
        fn: Callable[[], Any],
        retry_on: tuple[type[BaseException], ...] = (Exception,),
        on_attempt_failure: Optional[Callable[[int, BaseException], None]] = None,
    ) -> Tuple[Any, int]:
        """Call ``fn`` under the policy; returns ``(result, attempts)``.

        ``on_attempt_failure(attempt, error)`` fires after each failed
        attempt (before any backoff sleep); raising from it aborts the
        retry loop immediately — the circuit breaker uses this to stop
        retrying a source it just opened on.

        Raises :class:`RetryExhaustedError` once attempts or the
        timeout budget run out; the final error is chained as
        ``__cause__`` and available as ``.last_error``.
        """
        start = self.clock()
        last_error: Optional[BaseException] = None
        attempt = 0
        while attempt < self.max_attempts:
            attempt += 1
            try:
                return fn(), attempt
            except retry_on as exc:
                last_error = exc
                if on_attempt_failure is not None:
                    on_attempt_failure(attempt, exc)
            if attempt >= self.max_attempts:
                break
            delay = self.delay_before(attempt + 1)
            if self.timeout is not None:
                elapsed = self.clock() - start
                if elapsed + delay >= self.timeout:
                    raise RetryExhaustedError(
                        f"retry budget of {self.timeout}s exhausted after "
                        f"{attempt} attempt(s) ({elapsed:.3f}s elapsed)",
                        attempts=attempt,
                        last_error=last_error,
                    ) from last_error
            if delay > 0:
                self.sleep(delay)
        raise RetryExhaustedError(
            f"gave up after {attempt} attempt(s): {last_error}",
            attempts=attempt,
            last_error=last_error,
        ) from last_error

    def __repr__(self) -> str:
        return (
            f"RetryPolicy(max_attempts={self.max_attempts}, "
            f"base_delay={self.base_delay}, multiplier={self.multiplier}, "
            f"max_delay={self.max_delay}, timeout={self.timeout})"
        )


class CircuitBreaker:
    """A per-source closed/open/half-open circuit breaker.

    - *closed*: calls flow; ``failure_threshold`` consecutive failures
      trip the breaker open.
    - *open*: calls are rejected without touching the source until
      ``recovery_time`` seconds pass on the injected clock.
    - *half-open*: up to ``half_open_probes`` trial calls are admitted;
      a success closes the breaker, a failure re-opens it (and restarts
      the recovery window).

    Thread-safe; state transitions happen under one lock so concurrent
    federation queries see a consistent breaker.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        failure_threshold: int = 5,
        recovery_time: float = 30.0,
        half_open_probes: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if recovery_time < 0:
            raise ValueError(
                f"recovery_time must be >= 0, got {recovery_time}"
            )
        if half_open_probes < 1:
            raise ValueError(
                f"half_open_probes must be >= 1, got {half_open_probes}"
            )
        self.failure_threshold = failure_threshold
        self.recovery_time = recovery_time
        self.half_open_probes = half_open_probes
        self.clock = clock
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probes_in_flight = 0

    # -- state -------------------------------------------------------------

    def _refresh_locked(self) -> None:
        if (
            self._state == self.OPEN
            and self.clock() - self._opened_at >= self.recovery_time
        ):
            self._state = self.HALF_OPEN
            self._probes_in_flight = 0

    @property
    def state(self) -> str:
        with self._lock:
            self._refresh_locked()
            return self._state

    @property
    def consecutive_failures(self) -> int:
        return self._consecutive_failures

    def allow(self) -> bool:
        """May a call proceed right now?  Half-open admits probe slots."""
        with self._lock:
            self._refresh_locked()
            if self._state == self.CLOSED:
                return True
            if self._state == self.HALF_OPEN:
                if self._probes_in_flight < self.half_open_probes:
                    self._probes_in_flight += 1
                    return True
                return False
            return False

    def check(self, source: str = "") -> None:
        """Raise :class:`CircuitOpenError` unless a call may proceed."""
        if not self.allow():
            retry_after = max(
                0.0, self.recovery_time - (self.clock() - self._opened_at)
            )
            raise CircuitOpenError(
                f"circuit for source {source or '<unnamed>'} is "
                f"{self._state}; retry in {retry_after:.3f}s",
                source=source,
                retry_after=retry_after,
            )

    # -- outcome reporting -------------------------------------------------

    def record_success(self) -> None:
        with self._lock:
            self._refresh_locked()
            self._consecutive_failures = 0
            if self._state == self.HALF_OPEN:
                self._state = self.CLOSED
                self._probes_in_flight = 0

    def record_failure(self) -> None:
        with self._lock:
            self._refresh_locked()
            self._consecutive_failures += 1
            if self._state == self.HALF_OPEN:
                self._state = self.OPEN
                self._opened_at = self.clock()
                self._probes_in_flight = 0
            elif (
                self._state == self.CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._state = self.OPEN
                self._opened_at = self.clock()

    def reset(self) -> None:
        """Force the breaker back to pristine closed state."""
        with self._lock:
            self._state = self.CLOSED
            self._consecutive_failures = 0
            self._probes_in_flight = 0

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker(state={self.state!r}, "
            f"failures={self._consecutive_failures}/{self.failure_threshold})"
        )
