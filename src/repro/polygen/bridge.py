"""Bridging the paper's two formal models: polygen → attribute-based.

The paper cites both the attribute-based cell-tagging model [28] and
the polygen source-tagging model [24][25] as the machinery behind its
quality indicators.  They meet here: a polygen relation's *originating*
source set is exactly the evidence behind the ``source`` quality
indicator, so federation query results can be materialized as tagged
relations and flow into the quality layer (filters, profiles,
assessment, QSQL).

Single-source cells map to a scalar ``source`` tag; multi-source
(corroborated) cells join the source names with ``+`` and record the
full sets as meta-tags (Premise 1.4: the tag about the tag), so no
provenance is lost in the conversion.
"""

from __future__ import annotations

from typing import Optional

from repro.polygen.model import PolygenCell, PolygenRelation
from repro.tagging.cell import QualityCell
from repro.tagging.indicators import IndicatorDefinition, IndicatorValue, TagSchema
from repro.tagging.relation import TaggedRelation

#: The indicators the bridge emits.
BRIDGE_INDICATORS = (
    IndicatorDefinition(
        "source", "STR", "originating source(s), '+'-joined when corroborated"
    ),
    IndicatorDefinition(
        "intermediate_sources",
        "STR",
        "'+'-joined databases whose data influenced this value's selection",
    ),
)


def bridge_tag_schema(columns: list[str]) -> TagSchema:
    """A tag schema allowing the bridge indicators on ``columns``."""
    return TagSchema(
        indicators=list(BRIDGE_INDICATORS),
        allowed={
            column: ["source", "intermediate_sources"] for column in columns
        },
    )


def _source_tag(cell: PolygenCell) -> Optional[IndicatorValue]:
    if not cell.originating:
        return None
    joined = "+".join(sorted(cell.originating))
    return IndicatorValue(
        "source",
        joined,
        meta={"originating_count": len(cell.originating)},
    )


def _intermediate_tag(cell: PolygenCell) -> Optional[IndicatorValue]:
    if not cell.intermediate:
        return None
    return IndicatorValue(
        "intermediate_sources", "+".join(sorted(cell.intermediate))
    )


def polygen_to_tagged(relation: PolygenRelation) -> TaggedRelation:
    """Materialize a polygen relation as a source-tagged relation.

    >>> # tagged = polygen_to_tagged(federation.union_all("quotes"))
    >>> # QualityQuery(tagged).require("price", "source", "==", "reuters")...
    """
    columns = list(relation.schema.column_names)
    tagged = TaggedRelation(relation.schema, bridge_tag_schema(columns))
    for row in relation:
        cells: dict[str, QualityCell] = {}
        for column in columns:
            polygen_cell = row[column]
            tags = []
            source_tag = _source_tag(polygen_cell)
            if source_tag is not None:
                tags.append(source_tag)
            intermediate_tag = _intermediate_tag(polygen_cell)
            if intermediate_tag is not None:
                tags.append(intermediate_tag)
            cells[column] = QualityCell(polygen_cell.value, tags)
        tagged.insert(cells)
    return tagged


def tagged_to_polygen(relation: TaggedRelation) -> PolygenRelation:
    """Lift a source-tagged relation into the polygen model.

    The inverse direction: each cell's ``source`` tag (possibly
    ``+``-joined) becomes its originating set;
    ``intermediate_sources`` becomes the intermediate set.  Cells
    without a source tag get an empty originating set.
    """
    result = PolygenRelation(relation.schema)
    for row in relation:
        cells: dict[str, PolygenCell] = {}
        for column in relation.schema.column_names:
            cell = row[column]
            source_value = cell.tag_value("source")
            originating = (
                frozenset(str(source_value).split("+"))
                if source_value
                else frozenset()
            )
            intermediate_value = cell.tag_value("intermediate_sources")
            intermediate = (
                frozenset(str(intermediate_value).split("+"))
                if intermediate_value
                else frozenset()
            )
            cells[column] = PolygenCell(cell.value, originating, intermediate)
        result.insert(cells)
    return result
