"""Bridging the paper's two formal models: polygen → attribute-based.

The paper cites both the attribute-based cell-tagging model [28] and
the polygen source-tagging model [24][25] as the machinery behind its
quality indicators.  They meet here: a polygen relation's *originating*
source set is exactly the evidence behind the ``source`` quality
indicator, so federation query results can be materialized as tagged
relations and flow into the quality layer (filters, profiles,
assessment, QSQL).

Single-source cells map to a scalar ``source`` tag; multi-source
(corroborated) cells join the source names with ``+`` and record the
full sets as meta-tags (Premise 1.4: the tag about the tag), so no
provenance is lost in the conversion.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.polygen.model import PolygenCell, PolygenRelation
from repro.tagging.cell import QualityCell
from repro.tagging.indicators import IndicatorDefinition, IndicatorValue, TagSchema
from repro.tagging.relation import TaggedRelation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.polygen.faults import FederationResult

#: The indicators the bridge emits.
BRIDGE_INDICATORS = (
    IndicatorDefinition(
        "source", "STR", "originating source(s), '+'-joined when corroborated"
    ),
    IndicatorDefinition(
        "intermediate_sources",
        "STR",
        "'+'-joined databases whose data influenced this value's selection",
    ),
)

#: Acquisition indicators emitted when materializing a fault-tolerant
#: :class:`~repro.polygen.faults.FederationResult` — how (and when) the
#: value was obtained, per Serra et al.'s context dimension.
ACQUISITION_INDICATORS = (
    IndicatorDefinition(
        "source_status",
        "STR",
        "acquisition outcome of the cell's source(s): "
        "ok | recovered | failed | circuit_open",
    ),
    IndicatorDefinition(
        "retrieved_at",
        "FLOAT",
        "wall-clock time (epoch seconds) the source answered",
    ),
)


def bridge_tag_schema(columns: list[str]) -> TagSchema:
    """A tag schema allowing the bridge indicators on ``columns``."""
    return TagSchema(
        indicators=list(BRIDGE_INDICATORS),
        allowed={
            column: ["source", "intermediate_sources"] for column in columns
        },
    )


def acquisition_tag_schema(columns: list[str]) -> TagSchema:
    """Bridge indicators plus the acquisition pair, on ``columns``."""
    names = [d.name for d in BRIDGE_INDICATORS + ACQUISITION_INDICATORS]
    return TagSchema(
        indicators=list(BRIDGE_INDICATORS + ACQUISITION_INDICATORS),
        allowed={column: list(names) for column in columns},
    )


def _source_tag(cell: PolygenCell) -> Optional[IndicatorValue]:
    if not cell.originating:
        return None
    joined = "+".join(sorted(cell.originating))
    return IndicatorValue(
        "source",
        joined,
        meta={"originating_count": len(cell.originating)},
    )


def _intermediate_tag(cell: PolygenCell) -> Optional[IndicatorValue]:
    if not cell.intermediate:
        return None
    return IndicatorValue(
        "intermediate_sources", "+".join(sorted(cell.intermediate))
    )


def polygen_to_tagged(relation: PolygenRelation) -> TaggedRelation:
    """Materialize a polygen relation as a source-tagged relation.

    >>> # tagged = polygen_to_tagged(federation.union_all("quotes"))
    >>> # QualityQuery(tagged).require("price", "source", "==", "reuters")...
    """
    columns = list(relation.schema.column_names)
    tagged = TaggedRelation(relation.schema, bridge_tag_schema(columns))
    for row in relation:
        cells: dict[str, QualityCell] = {}
        for column in columns:
            polygen_cell = row[column]
            tags = []
            source_tag = _source_tag(polygen_cell)
            if source_tag is not None:
                tags.append(source_tag)
            intermediate_tag = _intermediate_tag(polygen_cell)
            if intermediate_tag is not None:
                tags.append(intermediate_tag)
            cells[column] = QualityCell(polygen_cell.value, tags)
        tagged.insert(cells)
    return tagged


def federation_result_to_tagged(result: "FederationResult") -> TaggedRelation:
    """Materialize a fault-tolerant federation result as a tagged relation.

    Every cell carries the bridge provenance tags plus two acquisition
    indicators: ``source_status`` — the *worst* acquisition status among
    the cell's originating sources (``ok`` < ``recovered`` < ``failed``
    < ``circuit_open``; surviving cells normally see only the first
    two) — and ``retrieved_at``, the latest wall-clock time one of its
    sources answered.  Downstream quality filters can then exclude or
    down-weight data that was obtained the hard way, the paper's
    tag-and-filter vision applied to acquisition failure.
    """
    relation = result.relation
    if relation is None:
        raise ValueError("federation result holds no surviving relation")
    columns = list(relation.schema.column_names)
    tagged = TaggedRelation(relation.schema, acquisition_tag_schema(columns))
    # Per-origin-set memo: federation rows share a handful of source
    # sets, so status/timestamp resolution is computed once per set.
    memo: dict[frozenset, tuple[IndicatorValue, Optional[IndicatorValue]]] = {}
    for row in relation:
        cells: dict[str, QualityCell] = {}
        for column in columns:
            polygen_cell = row[column]
            tags = []
            source_tag = _source_tag(polygen_cell)
            if source_tag is not None:
                tags.append(source_tag)
            intermediate_tag = _intermediate_tag(polygen_cell)
            if intermediate_tag is not None:
                tags.append(intermediate_tag)
            origins = polygen_cell.originating
            cached = memo.get(origins)
            if cached is None:
                status_tag = IndicatorValue(
                    "source_status", result.status_for_sources(origins)
                )
                stamps = [
                    report.retrieved_at
                    for source, report in result.reports.items()
                    if source in origins and report.retrieved_at is not None
                ]
                retrieved_tag = (
                    IndicatorValue("retrieved_at", max(stamps))
                    if stamps
                    else None
                )
                cached = (status_tag, retrieved_tag)
                memo[origins] = cached
            tags.append(cached[0])
            if cached[1] is not None:
                tags.append(cached[1])
            cells[column] = QualityCell(polygen_cell.value, tags)
        tagged.insert(cells)
    return tagged


def tagged_to_polygen(relation: TaggedRelation) -> PolygenRelation:
    """Lift a source-tagged relation into the polygen model.

    The inverse direction: each cell's ``source`` tag (possibly
    ``+``-joined) becomes its originating set;
    ``intermediate_sources`` becomes the intermediate set.  Cells
    without a source tag get an empty originating set.
    """
    result = PolygenRelation(relation.schema)
    for row in relation:
        cells: dict[str, PolygenCell] = {}
        for column in relation.schema.column_names:
            cell = row[column]
            source_value = cell.tag_value("source")
            originating = (
                frozenset(str(source_value).split("+"))
                if source_value
                else frozenset()
            )
            intermediate_value = cell.tag_value("intermediate_sources")
            intermediate = (
                frozenset(str(intermediate_value).split("+"))
                if intermediate_value
                else frozenset()
            )
            cells[column] = PolygenCell(cell.value, originating, intermediate)
        result.insert(cells)
    return result
