"""Polygen algebra: operators with source-propagation semantics.

See the package docstring of :mod:`repro.polygen` for the propagation
rules reproduced from Wang & Madnick (VLDB 1990).  Predicates here
declare which columns they examine (``using``) so restriction can
propagate the examined cells' originating sources into the result's
intermediate sources — the polygen model's distinctive feature.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence

from repro.errors import QueryError, SchemaError
from repro.obs import metrics as _obs_metrics
from repro.polygen.model import PolygenCell, PolygenRelation, PolygenRow

PolygenPredicate = Callable[[PolygenRow], bool]


def project(
    relation: PolygenRelation,
    columns: Sequence[str],
    new_name: Optional[str] = None,
) -> PolygenRelation:
    """π — keep only ``columns``; cells keep their source sets."""
    if not columns:
        raise QueryError("projection requires at least one column")
    out_schema = relation.schema.project(columns, new_name)
    positions = relation.schema.positions_of(columns)
    return PolygenRelation.from_rows(
        out_schema,
        (
            PolygenRow._from_validated(
                out_schema, tuple(row.cells[p] for p in positions)
            )
            for row in relation
        ),
    )


def select(
    relation: PolygenRelation,
    predicate: PolygenPredicate,
    using: Sequence[str] = (),
) -> PolygenRelation:
    """σ — restriction with intermediate-source propagation.

    ``using`` names the columns the predicate examines.  The originating
    sources of those cells are added to the *intermediate* sources of
    every cell in each surviving row: downstream users can see that the
    answer depended on those databases even for cells whose values came
    from elsewhere.
    """
    using_positions = relation.schema.positions_of(using)
    result = relation.empty_like()
    for row in relation:
        if predicate(row):
            examined: frozenset[str] = frozenset()
            for p in using_positions:
                examined |= row.cells[p].originating
            result._insert_validated(
                row.with_intermediate(examined) if examined else row
            )
    return result


def rename(
    relation: PolygenRelation,
    column_mapping: Optional[dict[str, str]] = None,
    new_name: Optional[str] = None,
) -> PolygenRelation:
    """ρ — rename the relation and/or columns (tags untouched)."""
    out_schema = relation.schema
    if column_mapping:
        out_schema = out_schema.rename_columns(column_mapping)
    if new_name:
        out_schema = out_schema.renamed(new_name)
    return PolygenRelation.from_rows(
        out_schema,
        (
            PolygenRow._from_validated(out_schema, row.cells)
            for row in relation
        ),
    )


def cartesian_product(
    left: PolygenRelation,
    right: PolygenRelation,
    new_name: Optional[str] = None,
) -> PolygenRelation:
    """× — pairings of rows; cells keep their side's sources."""
    name = new_name or f"{left.schema.name}_x_{right.schema.name}"
    out_schema = left.schema.concat(right.schema, name)
    result = PolygenRelation(out_schema)
    # concat orders all left columns before all right columns, so the
    # output cell tuple is the concatenation of both sides' cell tuples.
    for lrow in left:
        lcells = lrow.cells
        for rrow in right:
            result._insert_validated(
                PolygenRow._from_validated(out_schema, lcells + rrow.cells)
            )
    return result


def equi_join(
    left: PolygenRelation,
    right: PolygenRelation,
    on: Sequence[tuple[str, str]],
    new_name: Optional[str] = None,
) -> PolygenRelation:
    """⋈ — join on value equality, propagating join-key sources.

    The originating sources of the *join-key cells of both sides* become
    intermediate sources of every cell in the joined row: the match
    itself is evidence derived from those databases.
    """
    if not on:
        raise QueryError("equi_join requires at least one column pair")
    for lcol, rcol in on:
        left.schema.column(lcol)
        right.schema.column(rcol)
    name = new_name or f"{left.schema.name}_join_{right.schema.name}"
    out_schema = left.schema.concat(right.schema, name)
    left_key = tuple(left.schema.positions_of([lcol for lcol, _ in on]))
    right_key = tuple(right.schema.positions_of([rcol for _, rcol in on]))

    # The build side's hash index is cached on the relation (see
    # PolygenRelation.join_index), so repeated federation joins on the
    # same key skip the build.  Key-cell origins are hoisted per row:
    # index entries carry the right side's, the left side's computes
    # once per outer row, and the examined-set union is memoized per
    # (left origins, right origins) pair — federation rows share a
    # handful of origin sets, so the per-match work collapses to one
    # dict probe plus trusted cell copies.
    index = right.join_index(right_key)
    index_get = index.get
    single = len(left_key) == 1
    p0 = left_key[0]
    make = PolygenCell._make
    from_validated = PolygenRow._from_validated
    union_cache: dict[tuple[frozenset[str], frozenset[str]], frozenset[str]] = {}
    out_rows: list[PolygenRow] = []
    emit_row = out_rows.append
    for lrow in left:
        lcells = lrow.cells
        if single:
            key_cell = lcells[p0]
            try:
                matches = index_get(key_cell.value)
            except TypeError:
                matches = index_get(repr(key_cell.value))
            if not matches:
                continue
            l_origins = key_cell.originating
        else:
            key = tuple(_freeze(lcells[p].value) for p in left_key)
            matches = index_get(key)
            if not matches:
                continue
            l_origins = frozenset()
            for p in left_key:
                l_origins |= lcells[p].originating
        for rcells, r_origins in matches:
            pair = (l_origins, r_origins)
            examined = union_cache.get(pair)
            if examined is None:
                examined = l_origins | r_origins
                union_cache[pair] = examined
            cells: list[PolygenCell] = []
            emit_cell = cells.append
            for cell in lcells:
                inter = cell.intermediate
                if examined <= inter:
                    emit_cell(cell)
                elif inter:
                    emit_cell(make(cell.value, cell.originating, inter | examined))
                else:
                    emit_cell(make(cell.value, cell.originating, examined))
            for cell in rcells:
                inter = cell.intermediate
                if examined <= inter:
                    emit_cell(cell)
                elif inter:
                    emit_cell(make(cell.value, cell.originating, inter | examined))
                else:
                    emit_cell(make(cell.value, cell.originating, examined))
            emit_row(from_validated(out_schema, tuple(cells)))
    if _obs_metrics.enabled():
        registry = _obs_metrics.global_registry()
        registry.counter(
            "polygen.joins", "federation equi-joins executed"
        ).inc()
        registry.counter(
            "polygen.join.build_entries",
            "distinct keys in the cached build-side hash index",
        ).inc(len(index))
        registry.counter(
            "polygen.join.probe_rows", "outer rows probed against the index"
        ).inc(len(left))
        registry.counter(
            "polygen.join.output_rows", "joined rows emitted"
        ).inc(len(out_rows))
    return PolygenRelation.from_rows(out_schema, out_rows)


def union(left: PolygenRelation, right: PolygenRelation) -> PolygenRelation:
    """∪ — set union merging duplicate values' source sets.

    Rows with identical *values* collapse into one row whose cells union
    the originating (and intermediate) sources of all contributors —
    "this fact is corroborated by these databases".
    """
    if not left.schema.union_compatible_with(right.schema):
        raise SchemaError("union: schemas are not union-compatible")
    merged: dict[tuple[Any, ...], PolygenRow] = {}
    order: list[tuple[Any, ...]] = []
    for row in list(left) + list(right):
        key = tuple(_freeze(v) for v in row.values_tuple())
        if key not in merged:
            # Re-home under the left schema (right rows are
            # union-compatible, so their cells are already valid).
            merged[key] = PolygenRow._from_validated(left.schema, row.cells)
            order.append(key)
        else:
            existing = merged[key]
            merged[key] = PolygenRow._from_validated(
                left.schema,
                tuple(
                    have.merged_with(new)
                    for have, new in zip(existing.cells, row.cells)
                ),
            )
    return PolygenRelation.from_rows(
        left.schema, (merged[key] for key in order)
    )


def difference(left: PolygenRelation, right: PolygenRelation) -> PolygenRelation:
    """− — value-based difference; the right side becomes evidence.

    Surviving left rows gain the right relation's originating sources as
    intermediate sources: their survival was decided by consulting those
    databases.
    """
    if not left.schema.union_compatible_with(right.schema):
        raise SchemaError("difference: schemas are not union-compatible")
    right_values = {
        tuple(_freeze(v) for v in row.values_tuple()) for row in right
    }
    right_sources: frozenset[str] = frozenset()
    for row in right:
        for cell in row.cells:
            right_sources |= cell.originating
    result = left.empty_like()
    for row in left:
        key = tuple(_freeze(v) for v in row.values_tuple())
        if key not in right_values:
            result._insert_validated(
                row.with_intermediate(right_sources) if right_sources else row
            )
    return result


def coalesce(
    relation: PolygenRelation,
    prefer: Callable[[PolygenRow, PolygenRow], PolygenRow],
    key_columns: Sequence[str],
) -> PolygenRelation:
    """Resolve multi-source conflicts: one row per key, chosen by ``prefer``.

    Groups rows by the values of ``key_columns``; within a group,
    ``prefer(a, b)`` returns the preferred of two rows (e.g. the one
    whose source is more credible).  The chosen row gains the losers'
    originating sources as intermediate sources — the conflict was
    resolved by consulting them.
    """
    key_positions = relation.schema.positions_of(key_columns)
    groups: dict[tuple[Any, ...], list[PolygenRow]] = {}
    order: list[tuple[Any, ...]] = []
    for row in relation:
        key = tuple(_freeze(row.cells[p].value) for p in key_positions)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(row)
    result = relation.empty_like()
    for key in order:
        rows = groups[key]
        winner = rows[0]
        for challenger in rows[1:]:
            winner = prefer(winner, challenger)
        losers = [r for r in rows if r is not winner]
        loser_sources: frozenset[str] = frozenset()
        for loser in losers:
            for cell in loser.cells:
                loser_sources |= cell.originating
        result._insert_validated(
            winner.with_intermediate(loser_sources) if loser_sources else winner
        )
    return result


def _freeze(value: Any) -> Any:
    try:
        hash(value)
        return value
    except TypeError:
        return repr(value)
