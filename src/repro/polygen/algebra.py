"""Polygen algebra: operators with source-propagation semantics.

See the package docstring of :mod:`repro.polygen` for the propagation
rules reproduced from Wang & Madnick (VLDB 1990).  Predicates here
declare which columns they examine (``using``) so restriction can
propagate the examined cells' originating sources into the result's
intermediate sources — the polygen model's distinctive feature.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Callable, Optional, Sequence

from repro.errors import PolygenError, QueryError, SchemaError
from repro.polygen.model import PolygenCell, PolygenRelation, PolygenRow
from repro.relational.schema import RelationSchema

PolygenPredicate = Callable[[PolygenRow], bool]


def project(
    relation: PolygenRelation,
    columns: Sequence[str],
    new_name: Optional[str] = None,
) -> PolygenRelation:
    """π — keep only ``columns``; cells keep their source sets."""
    if not columns:
        raise QueryError("projection requires at least one column")
    out_schema = relation.schema.project(columns, new_name)
    result = PolygenRelation(out_schema)
    for row in relation:
        result.insert({c: row[c] for c in columns})
    return result


def select(
    relation: PolygenRelation,
    predicate: PolygenPredicate,
    using: Sequence[str] = (),
) -> PolygenRelation:
    """σ — restriction with intermediate-source propagation.

    ``using`` names the columns the predicate examines.  The originating
    sources of those cells are added to the *intermediate* sources of
    every cell in each surviving row: downstream users can see that the
    answer depended on those databases even for cells whose values came
    from elsewhere.
    """
    for name in using:
        relation.schema.column(name)
    result = relation.empty_like()
    for row in relation:
        if predicate(row):
            examined: frozenset[str] = frozenset()
            for name in using:
                examined |= row[name].originating
            result.insert(row.with_intermediate(examined) if examined else row)
    return result


def rename(
    relation: PolygenRelation,
    column_mapping: Optional[dict[str, str]] = None,
    new_name: Optional[str] = None,
) -> PolygenRelation:
    """ρ — rename the relation and/or columns (tags untouched)."""
    out_schema = relation.schema
    if column_mapping:
        out_schema = out_schema.rename_columns(column_mapping)
    if new_name:
        out_schema = out_schema.renamed(new_name)
    result = PolygenRelation(out_schema)
    names = out_schema.column_names
    for row in relation:
        result.insert(dict(zip(names, row.cells)))
    return result


def cartesian_product(
    left: PolygenRelation,
    right: PolygenRelation,
    new_name: Optional[str] = None,
) -> PolygenRelation:
    """× — pairings of rows; cells keep their side's sources."""
    name = new_name or f"{left.schema.name}_x_{right.schema.name}"
    out_schema = left.schema.concat(right.schema, name)
    left_map, right_map = left.schema.concat_maps(right.schema)
    result = PolygenRelation(out_schema)
    for lrow in left:
        for rrow in right:
            cells: dict[str, PolygenCell] = {}
            for c in left.schema.column_names:
                cells[left_map[c]] = lrow[c]
            for c in right.schema.column_names:
                cells[right_map[c]] = rrow[c]
            result.insert(cells)
    return result


def equi_join(
    left: PolygenRelation,
    right: PolygenRelation,
    on: Sequence[tuple[str, str]],
    new_name: Optional[str] = None,
) -> PolygenRelation:
    """⋈ — join on value equality, propagating join-key sources.

    The originating sources of the *join-key cells of both sides* become
    intermediate sources of every cell in the joined row: the match
    itself is evidence derived from those databases.
    """
    if not on:
        raise QueryError("equi_join requires at least one column pair")
    for lcol, rcol in on:
        left.schema.column(lcol)
        right.schema.column(rcol)
    name = new_name or f"{left.schema.name}_join_{right.schema.name}"
    out_schema = left.schema.concat(right.schema, name)
    left_map, right_map = left.schema.concat_maps(right.schema)
    result = PolygenRelation(out_schema)

    index: dict[tuple[Any, ...], list[PolygenRow]] = {}
    for rrow in right:
        key = tuple(_freeze(rrow.value(rcol)) for _, rcol in on)
        index.setdefault(key, []).append(rrow)
    for lrow in left:
        key = tuple(_freeze(lrow.value(lcol)) for lcol, _ in on)
        for rrow in index.get(key, ()):
            examined: frozenset[str] = frozenset()
            for lcol, rcol in on:
                examined |= lrow[lcol].originating | rrow[rcol].originating
            cells: dict[str, PolygenCell] = {}
            for c in left.schema.column_names:
                cells[left_map[c]] = lrow[c].with_intermediate(examined)
            for c in right.schema.column_names:
                cells[right_map[c]] = rrow[c].with_intermediate(examined)
            result.insert(cells)
    return result


def union(left: PolygenRelation, right: PolygenRelation) -> PolygenRelation:
    """∪ — set union merging duplicate values' source sets.

    Rows with identical *values* collapse into one row whose cells union
    the originating (and intermediate) sources of all contributors —
    "this fact is corroborated by these databases".
    """
    if not left.schema.union_compatible_with(right.schema):
        raise SchemaError("union: schemas are not union-compatible")
    merged: dict[tuple[Any, ...], PolygenRow] = {}
    order: list[tuple[Any, ...]] = []
    for row in list(left) + list(right):
        key = tuple(_freeze(v) for v in row.values_tuple())
        if key not in merged:
            merged[key] = row
            order.append(key)
        else:
            existing = merged[key]
            merged[key] = PolygenRow(
                left.schema,
                {
                    n: existing[n].merged_with(row[n])
                    for n in left.schema.column_names
                },
            )
    result = PolygenRelation(left.schema)
    for key in order:
        result.insert(merged[key])
    return result


def difference(left: PolygenRelation, right: PolygenRelation) -> PolygenRelation:
    """− — value-based difference; the right side becomes evidence.

    Surviving left rows gain the right relation's originating sources as
    intermediate sources: their survival was decided by consulting those
    databases.
    """
    if not left.schema.union_compatible_with(right.schema):
        raise SchemaError("difference: schemas are not union-compatible")
    right_values = {
        tuple(_freeze(v) for v in row.values_tuple()) for row in right
    }
    right_sources: frozenset[str] = frozenset()
    for row in right:
        for cell in row.cells:
            right_sources |= cell.originating
    result = left.empty_like()
    for row in left:
        key = tuple(_freeze(v) for v in row.values_tuple())
        if key not in right_values:
            result.insert(
                row.with_intermediate(right_sources) if right_sources else row
            )
    return result


def coalesce(
    relation: PolygenRelation,
    prefer: Callable[[PolygenRow, PolygenRow], PolygenRow],
    key_columns: Sequence[str],
) -> PolygenRelation:
    """Resolve multi-source conflicts: one row per key, chosen by ``prefer``.

    Groups rows by the values of ``key_columns``; within a group,
    ``prefer(a, b)`` returns the preferred of two rows (e.g. the one
    whose source is more credible).  The chosen row gains the losers'
    originating sources as intermediate sources — the conflict was
    resolved by consulting them.
    """
    for name in key_columns:
        relation.schema.column(name)
    groups: dict[tuple[Any, ...], list[PolygenRow]] = {}
    order: list[tuple[Any, ...]] = []
    for row in relation:
        key = tuple(_freeze(row.value(c)) for c in key_columns)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(row)
    result = relation.empty_like()
    for key in order:
        rows = groups[key]
        winner = rows[0]
        for challenger in rows[1:]:
            winner = prefer(winner, challenger)
        losers = [r for r in rows if r is not winner]
        loser_sources: frozenset[str] = frozenset()
        for loser in losers:
            for cell in loser.cells:
                loser_sources |= cell.originating
        result.insert(
            winner.with_intermediate(loser_sources) if loser_sources else winner
        )
    return result


def _freeze(value: Any) -> Any:
    try:
        hash(value)
        return value
    except TypeError:
        return repr(value)
