"""Fault injection and the fault-tolerant source adapter.

The paper's composite-system setting acquires data from autonomous
local databases; Serra et al.'s context survey (PAPERS.md) stresses
that quality assessment must reflect *how* data was obtained —
including acquisition failures.  This module makes failure a
first-class, simulable part of the federation:

- :class:`FaultInjector` — deterministic, seeded fault injection
  (error rate + artificial latency) with a full decision log, so tests
  can assert a degraded-source report matches the injected failures
  *exactly*;
- :class:`UnreliableSource` — wraps a
  :class:`~repro.polygen.federation.LocalDatabase` (or anything with
  ``name``/``credibility``/``export``) behind a
  :class:`~repro.polygen.retry.RetryPolicy` and an optional per-source
  :class:`~repro.polygen.retry.CircuitBreaker`;
- :class:`SourceReport` / :class:`FederationResult` — the partial-result
  envelope federation queries return in fault-tolerant mode: the
  polygen relation that survived, plus per-source acquisition reports
  that :func:`~repro.polygen.bridge.federation_result_to_tagged`
  materializes as ``source_status`` / ``retrieved_at`` quality
  indicators on every cell.

Everything is instrumented through :mod:`repro.obs.metrics` (retry and
failure counters, a per-source breaker-state gauge, per-source latency
histograms) when ambient instrumentation is enabled.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Mapping, Optional, TYPE_CHECKING

from repro.errors import (
    CircuitOpenError,
    InjectedFaultError,
    RetryExhaustedError,
    SourceUnavailableError,
)
from repro.obs import metrics as _obs_metrics
from repro.polygen.model import PolygenRelation, PolygenRow
from repro.polygen.retry import CircuitBreaker, RetryPolicy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.tagging.relation import TaggedRelation

__all__ = [
    "FaultDecision",
    "FaultInjector",
    "FederationResult",
    "SourceReport",
    "UnreliableSource",
]

#: Source acquisition statuses, best to worst.
STATUS_OK = "ok"
STATUS_RECOVERED = "recovered"
STATUS_FAILED = "failed"
STATUS_CIRCUIT_OPEN = "circuit_open"

_STATUS_RANK = {
    STATUS_OK: 0,
    STATUS_RECOVERED: 1,
    STATUS_FAILED: 2,
    STATUS_CIRCUIT_OPEN: 3,
}

#: Numeric breaker-state encoding for the obs gauge.
_BREAKER_GAUGE = {
    CircuitBreaker.CLOSED: 0.0,
    CircuitBreaker.HALF_OPEN: 1.0,
    CircuitBreaker.OPEN: 2.0,
}

#: Errors the adapter treats as transient (retryable).  Semantic errors
#: (unknown relation, schema mismatch) propagate immediately — retrying
#: cannot fix them and must not mask them as source degradation.
TRANSIENT_ERRORS: tuple[type[BaseException], ...] = (
    InjectedFaultError,
    ConnectionError,
    TimeoutError,
)


@dataclass(frozen=True)
class FaultDecision:
    """One injector decision: did call ``index`` against a source fail?"""

    index: int
    source: str
    operation: str
    injected: bool


class FaultInjector:
    """Deterministic fault injection for simulated remote sources.

    Parameters
    ----------
    error_rate:
        Probability in [0, 1] that a call raises
        :class:`~repro.errors.InjectedFaultError`.
    latency:
        Artificial per-call latency in seconds, applied through the
        injectable ``sleep`` (pair it with a
        :class:`~repro.polygen.retry.ManualClock` to keep tests
        instant).
    seed:
        Seed of the private :class:`random.Random`; the full decision
        sequence is a pure function of the seed and call order.

    The injector logs every decision (:attr:`log`), so a degraded-source
    report can be checked against the injected failures exactly.
    """

    def __init__(
        self,
        error_rate: float = 0.0,
        latency: float = 0.0,
        seed: int = 0,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if not 0.0 <= error_rate <= 1.0:
            raise ValueError(
                f"error_rate must be in [0, 1], got {error_rate}"
            )
        if latency < 0:
            raise ValueError(f"latency must be >= 0, got {latency}")
        self.error_rate = error_rate
        self.latency = latency
        self.seed = seed
        self.sleep = sleep
        self._rng = random.Random(seed)
        self.log: list[FaultDecision] = []

    def call(self, source: str, operation: str, fn: Callable[[], Any]) -> Any:
        """Run ``fn`` through the injector: latency, then maybe a fault."""
        if self.latency > 0:
            self.sleep(self.latency)
        injected = self.error_rate > 0 and self._rng.random() < self.error_rate
        self.log.append(
            FaultDecision(len(self.log), source, operation, injected)
        )
        if injected:
            raise InjectedFaultError(
                f"injected fault on {source}.{operation} "
                f"(call #{len(self.log) - 1}, rate={self.error_rate})"
            )
        return fn()

    def failures_for(self, source: str) -> int:
        """How many injected faults the source has absorbed so far."""
        return sum(
            1 for d in self.log if d.source == source and d.injected
        )

    def calls_for(self, source: str) -> int:
        """How many calls (failed or not) the source has absorbed."""
        return sum(1 for d in self.log if d.source == source)

    def reset(self) -> None:
        """Restart the decision sequence from the seed and clear the log."""
        self._rng = random.Random(self.seed)
        self.log.clear()

    def __repr__(self) -> str:
        return (
            f"FaultInjector(error_rate={self.error_rate}, "
            f"latency={self.latency}, seed={self.seed}, "
            f"calls={len(self.log)})"
        )


@dataclass(frozen=True)
class SourceReport:
    """The acquisition outcome for one source in one federation query.

    ``status`` is one of ``"ok"`` (first try succeeded), ``"recovered"``
    (succeeded after retries), ``"failed"`` (retries exhausted) or
    ``"circuit_open"`` (breaker rejected the call without trying).
    ``retrieved_at`` is the wall-clock time of the successful export,
    ``None`` for failed sources.
    """

    source: str
    status: str
    attempts: int
    error: Optional[str] = None
    retrieved_at: Optional[float] = None
    breaker_state: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status in (STATUS_OK, STATUS_RECOVERED)

    @property
    def failed(self) -> bool:
        return not self.ok

    def describe(self) -> str:
        detail = f"{self.source}: {self.status} ({self.attempts} attempt(s)"
        if self.error:
            detail += f"; {self.error}"
        return detail + ")"


def worst_status(statuses: "frozenset[str] | set[str] | tuple[str, ...]") -> str:
    """The worst of several source statuses (``ok`` < ``recovered`` < …)."""
    return max(statuses, key=lambda s: _STATUS_RANK.get(s, len(_STATUS_RANK)))


class FederationResult:
    """A (possibly partial) federation query result plus its reports.

    ``relation`` holds the rows that survived acquisition; ``reports``
    maps every *attempted* source to its :class:`SourceReport`.  The
    paper's tag-and-filter vision applied to acquisition failure: call
    :meth:`to_tagged` to materialize the survivors with
    ``source_status`` / ``retrieved_at`` quality indicators so
    downstream filters can exclude or down-weight degraded data.
    """

    def __init__(
        self,
        relation: Optional[PolygenRelation],
        reports: Mapping[str, SourceReport],
    ) -> None:
        # ``relation`` is None only when *nothing* survived (a degraded
        # single-source export) — there is no schema to build an empty
        # relation from.
        self.relation = relation
        self.reports: dict[str, SourceReport] = dict(reports)

    # -- degradation accounting -------------------------------------------

    @property
    def degraded_sources(self) -> dict[str, SourceReport]:
        """Reports of the sources that did not answer."""
        return {
            name: report
            for name, report in self.reports.items()
            if report.failed
        }

    @property
    def degraded_source_names(self) -> tuple[str, ...]:
        return tuple(sorted(self.degraded_sources))

    @property
    def ok_source_names(self) -> tuple[str, ...]:
        return tuple(
            sorted(n for n, r in self.reports.items() if r.ok)
        )

    @property
    def is_degraded(self) -> bool:
        return bool(self.degraded_sources)

    def report_for(self, source: str) -> SourceReport:
        return self.reports[source]

    def status_for_sources(self, sources: "frozenset[str]") -> str:
        """Worst acquisition status across a cell's originating sources."""
        statuses = {
            self.reports[s].status for s in sources if s in self.reports
        }
        return worst_status(statuses) if statuses else STATUS_OK

    # -- materialization ---------------------------------------------------

    def to_tagged(self) -> "TaggedRelation":
        """Survivors as a tagged relation with acquisition indicators."""
        from repro.errors import FederationError
        from repro.polygen.bridge import federation_result_to_tagged

        if self.relation is None:
            raise FederationError(
                "result holds no surviving relation (all sources degraded: "
                f"{list(self.degraded_source_names)})"
            )
        return federation_result_to_tagged(self)

    def render_report(self) -> str:
        """One line per attempted source, degraded sources flagged."""
        lines = []
        for name in sorted(self.reports):
            report = self.reports[name]
            marker = "!!" if report.failed else "ok"
            lines.append(f"[{marker}] {report.describe()}")
        return "\n".join(lines)

    # -- relation conveniences --------------------------------------------

    def __len__(self) -> int:
        return 0 if self.relation is None else len(self.relation)

    def __iter__(self) -> Iterator[PolygenRow]:
        return iter(()) if self.relation is None else iter(self.relation)

    def __repr__(self) -> str:
        degraded = list(self.degraded_source_names)
        return (
            f"FederationResult({len(self)} rows, "
            f"{len(self.reports)} sources, degraded={degraded})"
        )


class UnreliableSource:
    """A federation participant that can fail — and is handled when it does.

    Wraps any participant exposing ``name`` / ``credibility`` /
    ``export`` (usually a
    :class:`~repro.polygen.federation.LocalDatabase`) with:

    - optional :class:`FaultInjector` simulation of flaky acquisition;
    - a :class:`~repro.polygen.retry.RetryPolicy` (exponential backoff,
      injectable sleep/clock, per-call timeout budget);
    - an optional per-source
      :class:`~repro.polygen.retry.CircuitBreaker`: failures are
      recorded per attempt, an open breaker aborts remaining retries,
      and subsequent calls are rejected until the recovery window
      elapses.

    The adapter duck-types ``LocalDatabase``: :meth:`export` raises on
    failure exactly like a plain participant would, while
    :meth:`export_with_report` never raises on *transient* failure and
    is what the fault-tolerant federation paths consume.
    """

    def __init__(
        self,
        local: Any,
        injector: Optional[FaultInjector] = None,
        retry: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        wall_clock: Callable[[], float] = time.time,
    ) -> None:
        self.local = local
        self.injector = injector
        self.retry = retry if retry is not None else RetryPolicy()
        self.breaker = breaker
        self.wall_clock = wall_clock

    # -- participant duck type --------------------------------------------

    @property
    def name(self) -> str:
        return self.local.name

    @property
    def credibility(self) -> float:
        return self.local.credibility

    @property
    def database(self) -> Any:
        return self.local.database

    def __repr__(self) -> str:
        breaker_state = self.breaker.state if self.breaker else None
        return (
            f"UnreliableSource({self.name!r}, "
            f"injector={self.injector!r}, breaker={breaker_state!r})"
        )

    # -- metrics -----------------------------------------------------------

    def _report_metrics(
        self, attempts: int, failures: int, seconds: float, outcome: str
    ) -> None:
        if not _obs_metrics.enabled():
            return
        registry = _obs_metrics.global_registry()
        registry.counter(
            "federation.source.attempts",
            "export attempts against federated sources",
        ).inc(attempts)
        if failures:
            registry.counter(
                "federation.source.failures",
                "failed export attempts (before retry)",
            ).inc(failures)
        if attempts > 1:
            registry.counter(
                "federation.retries", "export retries performed"
            ).inc(attempts - 1)
        if outcome in (STATUS_FAILED, STATUS_CIRCUIT_OPEN):
            registry.counter(
                "federation.source.unavailable",
                "exports that ultimately failed (retries exhausted "
                "or breaker open)",
            ).inc()
        registry.histogram(
            f"federation.source_seconds.{self.name}",
            description="per-source export latency (incl. retries)",
        ).observe(seconds)
        if self.breaker is not None:
            registry.gauge(
                f"federation.breaker_state.{self.name}",
                "0=closed, 1=half-open, 2=open",
            ).set(_BREAKER_GAUGE.get(self.breaker.state, -1.0))

    # -- acquisition -------------------------------------------------------

    def export_with_report(
        self, relation_name: str
    ) -> tuple[Optional[PolygenRelation], SourceReport]:
        """Export one relation; never raises on transient failure.

        Returns ``(relation, report)`` — ``relation`` is ``None`` when
        the source is degraded, and ``report`` says how acquisition
        went (status, attempts, final error, breaker state).
        """
        started = self.retry.clock()
        if self.breaker is not None:
            try:
                self.breaker.check(self.name)
            except CircuitOpenError as exc:
                report = SourceReport(
                    source=self.name,
                    status=STATUS_CIRCUIT_OPEN,
                    attempts=0,
                    error=str(exc),
                    breaker_state=self.breaker.state,
                )
                self._report_metrics(
                    0, 0, self.retry.clock() - started, STATUS_CIRCUIT_OPEN
                )
                return None, report

        failures = 0
        last_error: Optional[BaseException] = None

        def attempt() -> PolygenRelation:
            if self.injector is not None:
                return self.injector.call(
                    self.name, "export", lambda: self.local.export(relation_name)
                )
            return self.local.export(relation_name)

        def on_failure(attempt_number: int, error: BaseException) -> None:
            nonlocal failures, last_error
            failures += 1
            last_error = error
            if self.breaker is not None:
                self.breaker.record_failure()
                # A breaker that just opened aborts the remaining retries.
                self.breaker.check(self.name)

        try:
            relation, attempts = self.retry.run(
                attempt, retry_on=TRANSIENT_ERRORS, on_attempt_failure=on_failure
            )
        except (RetryExhaustedError, CircuitOpenError) as exc:
            attempts = failures
            if isinstance(exc, CircuitOpenError) and last_error is not None:
                error_text = (
                    f"{last_error} (circuit opened after "
                    f"{failures} failed attempt(s))"
                )
            elif isinstance(exc, RetryExhaustedError) and exc.last_error:
                error_text = str(exc.last_error)
            else:
                error_text = str(exc)
            report = SourceReport(
                source=self.name,
                status=STATUS_FAILED,
                attempts=attempts,
                error=error_text,
                breaker_state=self.breaker.state if self.breaker else None,
            )
            self._report_metrics(
                attempts, failures, self.retry.clock() - started, STATUS_FAILED
            )
            return None, report

        if self.breaker is not None:
            self.breaker.record_success()
        status = STATUS_OK if attempts == 1 else STATUS_RECOVERED
        report = SourceReport(
            source=self.name,
            status=status,
            attempts=attempts,
            retrieved_at=self.wall_clock(),
            breaker_state=self.breaker.state if self.breaker else None,
        )
        self._report_metrics(
            attempts, failures, self.retry.clock() - started, status
        )
        return relation, report

    def export(self, relation_name: str) -> PolygenRelation:
        """Source-tagged export, raising on failure (duck-type compat).

        Raises :class:`~repro.errors.SourceUnavailableError` (or its
        :class:`~repro.errors.CircuitOpenError` subclass) once retries
        are exhausted or the breaker rejects the call.
        """
        relation, report = self.export_with_report(relation_name)
        if relation is None:
            if report.status == STATUS_CIRCUIT_OPEN:
                raise CircuitOpenError(
                    report.error or f"circuit open for source {self.name}",
                    source=self.name,
                )
            raise SourceUnavailableError(
                f"source {self.name!r} failed to export "
                f"{relation_name!r} after {report.attempts} attempt(s): "
                f"{report.error}",
                source=self.name,
                attempts=report.attempts,
            )
        return relation
