"""The polygen source-tagging model [24][25].

The paper's second formal substrate: in a heterogeneous multi-database
environment, every cell carries (a) its *originating* sources — the
local databases the value came from — and (b) its *intermediate*
sources — databases whose data was used to select or derive it (e.g.
the sources of join keys).  Queries over a
:class:`~repro.polygen.federation.Federation` of local databases answer
"where is this data from?" and "which databases did this answer touch?".

The propagation semantics follow Wang & Madnick (VLDB 1990):

- projection and restriction keep cell tags;
- restriction (select) adds the originating sources of the cells
  *examined by the predicate* to the intermediate sources of every cell
  in the surviving tuples;
- join adds the originating sources of the join-key cells of both sides
  to the intermediate sources of every output cell;
- union keeps tags per branch; duplicate values merge originating
  source sets (the same fact corroborated by several databases);
- difference adds the right side's examined sources as intermediate
  sources of surviving left tuples.
"""

from repro.polygen.model import PolygenCell, PolygenRelation, SourceSet
from repro.polygen.retry import CircuitBreaker, ManualClock, RetryPolicy
from repro.polygen.faults import (
    FaultInjector,
    FederationResult,
    SourceReport,
    UnreliableSource,
)
from repro.polygen.federation import Federation, LocalDatabase
from repro.polygen.query import PolygenQuery
from repro.polygen.bridge import (
    federation_result_to_tagged,
    polygen_to_tagged,
    tagged_to_polygen,
)

__all__ = [
    "CircuitBreaker",
    "FaultInjector",
    "Federation",
    "FederationResult",
    "LocalDatabase",
    "ManualClock",
    "PolygenCell",
    "PolygenQuery",
    "PolygenRelation",
    "RetryPolicy",
    "SourceReport",
    "SourceSet",
    "UnreliableSource",
    "federation_result_to_tagged",
    "polygen_to_tagged",
    "tagged_to_polygen",
]
