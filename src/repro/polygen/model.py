"""Polygen cells and relations: values with source provenance.

A :class:`PolygenCell` is the polygen model's data atom: a value plus
two source sets.  ``originating`` answers "which local database(s)
supplied this value"; ``intermediate`` answers "which local databases'
data was consulted to select/derive it".  Both are immutable frozensets
of source names, so set algebra is cheap and cells are hashable.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Mapping, Optional, Sequence

from repro.errors import PolygenError, UnknownColumnError
from repro.relational.schema import RelationSchema

#: A set of local-database names.
SourceSet = frozenset


class PolygenCell:
    """A value with originating and intermediate source sets.

    >>> cell = PolygenCell(700, originating={"acctg_db"})
    >>> sorted(cell.originating)
    ['acctg_db']
    >>> cell.intermediate
    frozenset()
    """

    __slots__ = ("value", "originating", "intermediate")

    def __init__(
        self,
        value: Any,
        originating: Iterable[str] = (),
        intermediate: Iterable[str] = (),
    ) -> None:
        self.value = value
        self.originating: frozenset[str] = frozenset(originating)
        self.intermediate: frozenset[str] = frozenset(intermediate)

    @classmethod
    def _make(
        cls,
        value: Any,
        originating: frozenset[str],
        intermediate: frozenset[str],
    ) -> "PolygenCell":
        """Trusted constructor: both source sets must be frozensets."""
        cell = object.__new__(cls)
        cell.value = value
        cell.originating = originating
        cell.intermediate = intermediate
        return cell

    def with_intermediate(self, sources: Iterable[str]) -> "PolygenCell":
        """A copy with extra intermediate sources unioned in."""
        extra = (
            sources if isinstance(sources, frozenset) else frozenset(sources)
        )
        if extra <= self.intermediate:
            return self
        return PolygenCell._make(
            self.value, self.originating, self.intermediate | extra
        )

    def merged_with(self, other: "PolygenCell") -> "PolygenCell":
        """Merge two same-valued cells (duplicate elimination in union).

        Originating and intermediate sets union: the value is
        corroborated by every contributing database.
        """
        if other.value != self.value:
            raise PolygenError(
                f"cannot merge cells with different values "
                f"({self.value!r} vs {other.value!r})"
            )
        return PolygenCell(
            self.value,
            self.originating | other.originating,
            self.intermediate | other.intermediate,
        )

    @property
    def all_sources(self) -> frozenset[str]:
        """Union of originating and intermediate sources."""
        return self.originating | self.intermediate

    def render(self) -> str:
        """Compact text form: ``value {orig | inter}``."""
        orig = ",".join(sorted(self.originating)) or "-"
        inter = ",".join(sorted(self.intermediate))
        value = "" if self.value is None else str(self.value)
        if inter:
            return f"{value} {{{orig} | {inter}}}"
        return f"{value} {{{orig}}}"

    def __repr__(self) -> str:
        return (
            f"PolygenCell({self.value!r}, orig={sorted(self.originating)}, "
            f"inter={sorted(self.intermediate)})"
        )

    def __eq__(self, other: object) -> bool:
        if isinstance(other, PolygenCell):
            return (
                other.value == self.value
                and other.originating == self.originating
                and other.intermediate == self.intermediate
            )
        return NotImplemented

    def __hash__(self) -> int:
        return hash(
            ("PolygenCell", _freeze(self.value), self.originating, self.intermediate)
        )


def _freeze(value: Any) -> Any:
    try:
        hash(value)
        return value
    except TypeError:
        return repr(value)


class PolygenRow(Mapping[str, PolygenCell]):
    """An immutable row of polygen cells."""

    __slots__ = ("_schema", "_cells")

    def __init__(
        self,
        schema: RelationSchema,
        cells: Mapping[str, PolygenCell | Any],
    ) -> None:
        self._schema = schema
        unknown = set(cells) - set(schema.column_names)
        if unknown:
            raise UnknownColumnError(
                f"row references unknown columns {sorted(unknown)} of "
                f"relation {schema.name!r}"
            )
        prepared = []
        for column in schema.columns:
            raw = cells.get(column.name)
            cell = raw if isinstance(raw, PolygenCell) else PolygenCell(raw)
            prepared.append(
                PolygenCell(
                    column.domain.validate(cell.value),
                    cell.originating,
                    cell.intermediate,
                )
            )
        self._cells: tuple[PolygenCell, ...] = tuple(prepared)

    @classmethod
    def _from_validated(
        cls, schema: RelationSchema, cells: tuple[PolygenCell, ...]
    ) -> "PolygenRow":
        """Trusted constructor: ``cells`` must already hold validated
        values, in schema order.  Fast path for the polygen algebra."""
        row = object.__new__(cls)
        row._schema = schema
        row._cells = cells
        return row

    def __getitem__(self, name: str) -> PolygenCell:
        try:
            return self._cells[self._schema._positions[name]]
        except KeyError:
            raise UnknownColumnError(
                f"row of {self._schema.name!r} has no column {name!r}"
            ) from None

    def __iter__(self) -> Iterator[str]:
        return iter(self._schema.column_names)

    def __len__(self) -> int:
        return len(self._cells)

    @property
    def schema(self) -> RelationSchema:
        return self._schema

    @property
    def cells(self) -> tuple[PolygenCell, ...]:
        return self._cells

    def value(self, name: str) -> Any:
        """The application value of one column."""
        return self[name].value

    def values_dict(self) -> dict[str, Any]:
        """Application values only."""
        return {n: c.value for n, c in zip(self._schema.column_names, self._cells)}

    def values_tuple(self) -> tuple[Any, ...]:
        return tuple(c.value for c in self._cells)

    def cells_dict(self) -> dict[str, PolygenCell]:
        return dict(zip(self._schema.column_names, self._cells))

    def row_sources(self) -> frozenset[str]:
        """All sources any cell of this row touches."""
        sources: frozenset[str] = frozenset()
        for cell in self._cells:
            sources |= cell.all_sources
        return sources

    def with_intermediate(self, sources: Iterable[str]) -> "PolygenRow":
        """A copy with extra intermediate sources on every cell."""
        extra = frozenset(sources)
        if not extra:
            return self
        return PolygenRow._from_validated(
            self._schema,
            tuple(c.with_intermediate(extra) for c in self._cells),
        )

    def __eq__(self, other: object) -> bool:
        if isinstance(other, PolygenRow):
            return (
                self._schema.column_names == other._schema.column_names
                and self._cells == other._cells
            )
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self._schema.column_names, self._cells))

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{n}={c.render()}"
            for n, c in zip(self._schema.column_names, self._cells)
        )
        return f"PolygenRow({inner})"


class PolygenRelation:
    """A relation of polygen cells.

    Usually produced by tagging a local database's relation with its
    database name (see :meth:`from_relation`) and then transformed by
    the polygen algebra.
    """

    def __init__(
        self,
        schema: RelationSchema,
        rows: Iterable[Mapping[str, Any]] = (),
    ) -> None:
        self.schema = schema
        self._rows: list[PolygenRow] = []
        # key positions → (row count at build time, hash index).  Rows
        # are append-only, so a row-count match proves the indexed
        # prefix is still exactly the relation's contents.
        self._join_indexes: dict[
            tuple[int, ...],
            tuple[int, dict[Any, list[tuple[tuple[PolygenCell, ...], frozenset[str]]]]],
        ] = {}
        for row in rows:
            self.insert(row)

    @classmethod
    def from_relation(cls, relation: Any, source: str) -> "PolygenRelation":
        """Tag every cell of a plain relation with one originating source."""
        origin = frozenset({source})
        result = cls(relation.schema)
        # Values coming out of a Relation are already domain-validated.
        result._rows = [
            PolygenRow._from_validated(
                relation.schema,
                tuple(
                    PolygenCell(value, origin)
                    for value in row.values_tuple()
                ),
            )
            for row in relation
        ]
        return result

    @classmethod
    def from_rows(
        cls, schema: RelationSchema, rows: Iterable[PolygenRow]
    ) -> "PolygenRelation":
        """Trusted bulk constructor: ``rows`` must already conform."""
        relation = cls(schema)
        relation._rows = list(rows)
        return relation

    def insert(self, cells: Mapping[str, Any] | PolygenRow) -> PolygenRow:
        """Insert a row (validated against the schema)."""
        if isinstance(cells, PolygenRow):
            row = PolygenRow(self.schema, cells.cells_dict())
        else:
            row = PolygenRow(self.schema, cells)
        self._rows.append(row)
        return row

    def _insert_validated(self, row: PolygenRow) -> PolygenRow:
        """Append a row already valid under this schema (fast path)."""
        self._rows.append(row)
        return row

    @property
    def rows(self) -> tuple[PolygenRow, ...]:
        return tuple(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[PolygenRow]:
        return iter(self._rows)

    def empty_like(self) -> "PolygenRelation":
        return PolygenRelation(self.schema)

    def join_index(
        self, key_positions: tuple[int, ...]
    ) -> dict[Any, list[tuple[tuple[PolygenCell, ...], frozenset[str]]]]:
        """A hash index: join-key value → [(row cells, key-cell origins)].

        Built lazily and cached per key-position tuple so repeated joins
        on the same key (the federation steady state) skip the build.
        Single-column keys use the bare value as the index key; wider
        keys use a tuple.  Unhashable values are keyed by ``repr``.
        """
        cached = self._join_indexes.get(key_positions)
        if cached is not None and cached[0] == len(self._rows):
            return cached[1]
        index: dict[Any, list[tuple[tuple[PolygenCell, ...], frozenset[str]]]] = {}
        single = len(key_positions) == 1
        p0 = key_positions[0]
        for row in self._rows:
            cells = row.cells
            if single:
                key_cell = cells[p0]
                key = _freeze(key_cell.value)
                origins = key_cell.originating
            else:
                key = tuple(_freeze(cells[p].value) for p in key_positions)
                origins = frozenset()
                for p in key_positions:
                    origins |= cells[p].originating
            entry = index.get(key)
            if entry is None:
                index[key] = [(cells, origins)]
            else:
                entry.append((cells, origins))
        self._join_indexes[key_positions] = (len(self._rows), index)
        return index

    def all_sources(self) -> frozenset[str]:
        """Every source contributing to any cell of the relation."""
        sources: frozenset[str] = frozenset()
        for row in self._rows:
            sources |= row.row_sources()
        return sources

    def render(self, max_rows: Optional[int] = None, title: Optional[str] = None) -> str:
        """Aligned text table with per-cell source annotations."""
        names = list(self.schema.column_names)
        shown = self._rows if max_rows is None else self._rows[:max_rows]
        grid = [names] + [[row[n].render() for n in names] for row in shown]
        widths = [max(len(cell) for cell in col) for col in zip(*grid)]
        lines = []
        if title:
            lines.append(title)
        lines.append(" | ".join(n.ljust(w) for n, w in zip(names, widths)).rstrip())
        lines.append("-+-".join("-" * w for w in widths))
        for cells in grid[1:]:
            lines.append(
                " | ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()
            )
        if max_rows is not None and len(self._rows) > max_rows:
            lines.append(f"... ({len(self._rows) - max_rows} more rows)")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"PolygenRelation({self.schema.name}, {len(self._rows)} rows)"
