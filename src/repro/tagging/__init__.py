"""Cell-level quality tagging: the attribute-based model [28].

The paper's Table 2 shows data cells tagged with quality indicator
values — e.g. ``700 (10-9-91, estimate)`` — so that at query time users
can filter out data with undesirable characteristics.  This package
implements that model:

- :class:`~repro.tagging.indicators.IndicatorValue` — one measured
  quality-indicator value (e.g. ``source = "acct'g"``), optionally
  carrying meta-tags (Premise 1.4: quality of the quality indicators);
- :class:`~repro.tagging.indicators.TagSchema` — which indicators are
  required/allowed per column of a relation (the operational output of
  the methodology's quality schema);
- :class:`~repro.tagging.cell.QualityCell` — a value plus its tags;
- :class:`~repro.tagging.relation.TaggedRelation` — a relation of
  quality cells;
- :mod:`repro.tagging.algebra` — the quality-extended relational algebra
  with tag propagation;
- :mod:`repro.tagging.query` — indicator-constrained retrieval
  ("data quality requirements" made executable).
"""

from repro.tagging.cell import QualityCell
from repro.tagging.indicators import IndicatorDefinition, IndicatorValue, TagSchema
from repro.tagging.relation import TaggedRelation, TaggedRow
from repro.tagging.query import IndicatorConstraint, QualityFilter, QualityQuery
from repro.tagging.catalog import QualityDatabase

__all__ = [
    "IndicatorConstraint",
    "IndicatorDefinition",
    "IndicatorValue",
    "QualityCell",
    "QualityDatabase",
    "QualityFilter",
    "QualityQuery",
    "TagSchema",
    "TaggedRelation",
    "TaggedRow",
]
