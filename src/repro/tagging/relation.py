"""Tagged relations: relations whose cells carry quality-indicator tags.

A :class:`TaggedRelation` pairs a relational schema (application data
types) with a :class:`~repro.tagging.indicators.TagSchema` (quality
requirements) and stores rows of
:class:`~repro.tagging.cell.QualityCell`.  It can render itself in the
paper's Table-2 style and convert to/from plain relations.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Iterable, Iterator, Mapping, Optional, Sequence

from repro.errors import (
    SchemaError,
    SnapshotWriteError,
    TagSchemaError,
    UnknownColumnError,
)
from repro.relational.partition import PartitionSpec
from repro.relational.relation import Relation, Row
from repro.relational.schema import RelationSchema
from repro.tagging.cell import QualityCell
from repro.tagging.indicators import IndicatorValue, TagSchema


class TaggedRow(Mapping[str, QualityCell]):
    """An immutable row of quality cells, ordered by the relation schema."""

    __slots__ = ("_schema", "_cells")

    def __init__(
        self,
        schema: RelationSchema,
        tag_schema: TagSchema,
        cells: Mapping[str, QualityCell | Any],
    ) -> None:
        self._schema = schema
        unknown = set(cells) - set(schema.column_names)
        if unknown:
            raise UnknownColumnError(
                f"row references unknown columns {sorted(unknown)} of "
                f"relation {schema.name!r}"
            )
        prepared: list[QualityCell] = []
        for column in schema.columns:
            raw = cells.get(column.name)
            cell = raw if isinstance(raw, QualityCell) else QualityCell(raw)
            value = column.domain.validate(cell.value)
            tags = tag_schema.validate_tags(column.name, cell.tags)
            prepared.append(QualityCell(value, tags.values()))
        self._cells: tuple[QualityCell, ...] = tuple(prepared)

    @classmethod
    def _from_validated(
        cls, schema: RelationSchema, cells: tuple[QualityCell, ...]
    ) -> "TaggedRow":
        """Trusted constructor: ``cells`` must already be validated
        against both the relation schema's domains and the tag schema,
        in schema order.  Fast path for the quality-extended algebra."""
        row = object.__new__(cls)
        row._schema = schema
        row._cells = cells
        return row

    # -- Mapping interface ---------------------------------------------------

    def __getitem__(self, name: str) -> QualityCell:
        try:
            return self._cells[self._schema._positions[name]]
        except KeyError:
            raise UnknownColumnError(
                f"row of {self._schema.name!r} has no column {name!r}"
            ) from None

    def __iter__(self) -> Iterator[str]:
        return iter(self._schema.column_names)

    def __len__(self) -> int:
        return len(self._cells)

    # -- access ------------------------------------------------------------------

    @property
    def schema(self) -> RelationSchema:
        return self._schema

    @property
    def cells(self) -> tuple[QualityCell, ...]:
        return self._cells

    def value(self, name: str) -> Any:
        """The application value of one column (tag-free)."""
        return self[name].value

    def values_dict(self) -> dict[str, Any]:
        """Application values only, as a plain dict."""
        return {
            n: c.value for n, c in zip(self._schema.column_names, self._cells)
        }

    def values_tuple(self) -> tuple[Any, ...]:
        """Application values in schema order."""
        return tuple(c.value for c in self._cells)

    def cells_dict(self) -> dict[str, QualityCell]:
        """Column name → quality cell."""
        return dict(zip(self._schema.column_names, self._cells))

    def __eq__(self, other: object) -> bool:
        if isinstance(other, TaggedRow):
            return (
                self._schema.column_names == other._schema.column_names
                and self._cells == other._cells
            )
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self._schema.column_names, self._cells))

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{n}={c!r}" for n, c in zip(self._schema.column_names, self._cells)
        )
        return f"TaggedRow({inner})"


class TaggedRelation:
    """A relation of quality cells under a relation schema + tag schema.

    Example (the paper's Table 2)
    -----------------------------
    >>> from repro.relational.schema import schema
    >>> from repro.tagging.indicators import (IndicatorDefinition, TagSchema,
    ...                                       IndicatorValue)
    >>> ts = TagSchema(
    ...     indicators=[IndicatorDefinition("source"),
    ...                 IndicatorDefinition("creation_time", "DATE")],
    ...     allowed={"address": ["source", "creation_time"]})
    >>> rel = TaggedRelation(
    ...     schema("customer", [("co_name", "STR"), ("address", "STR")]), ts)
    >>> _ = rel.insert({
    ...     "co_name": "Nut Co",
    ...     "address": QualityCell("62 Lois Av", [
    ...         IndicatorValue("creation_time", "1991-10-24"),
    ...         IndicatorValue("source", "acct'g")])})
    >>> rel.rows[0]["address"].tag_value("source")
    "acct'g"
    """

    def __init__(
        self,
        schema: RelationSchema,
        tag_schema: Optional[TagSchema] = None,
        rows: Iterable[Mapping[str, Any]] = (),
    ) -> None:
        self.schema = schema
        self.tag_schema = tag_schema or TagSchema()
        self.tag_schema.check_against(schema)
        self._rows: list[TaggedRow] = []
        #: Mutation counter; bumped by every insert/delete so caches
        #: derived from the rows (the columnar store, cached query
        #: plans) can detect staleness cheaply.
        self._version = 0
        self._columnar_cache: Optional[tuple[int, Any]] = None
        #: Partitioning state, mirroring ``Relation``: the flat
        #: ``_rows`` list stays canonical; shards are TaggedRelations
        #: (one per bucket) each carrying its own version-gated
        #: ``ColumnarTagStore`` cache.
        self._partition_spec: Optional[PartitionSpec] = None
        self._partitions: list["TaggedRelation"] = []
        self._partition_position: Optional[int] = None
        self._partition_layout_version = 0
        self._dirty_partitions: set[int] = set()
        #: Mutation lock + frozen flag, mirroring ``Relation`` (see
        #: DESIGN.md §15 for the locking discipline).
        self._lock = threading.RLock()
        self._snapshot_cache: Optional[
            tuple[tuple[int, int], "TaggedRelation"]
        ] = None
        self._frozen = False
        for row in rows:
            self.insert(row)

    # -- mutation -------------------------------------------------------------

    def _require_mutable(self) -> None:
        if self._frozen:
            raise SnapshotWriteError(
                f"tagged relation {self.schema.name!r} is a frozen read "
                f"snapshot; write to the live relation instead"
            )

    def insert(self, cells: Mapping[str, QualityCell | Any] | TaggedRow) -> TaggedRow:
        """Insert a row of cells (validated against both schemas)."""
        if isinstance(cells, TaggedRow):
            row = TaggedRow(self.schema, self.tag_schema, cells.cells_dict())
        else:
            row = TaggedRow(self.schema, self.tag_schema, cells)
        with self._lock:
            self._require_mutable()
            self._rows.append(row)
            self._version += 1
            if self._partition_spec is not None:
                self._route_insert(row)
        return row

    def _insert_validated(self, row: TaggedRow) -> TaggedRow:
        """Append a row already valid under both schemas (fast path)."""
        with self._lock:
            self._require_mutable()
            self._rows.append(row)
            self._version += 1
            if self._partition_spec is not None:
                self._route_insert(row)
        return row

    def insert_many(self, rows: Iterable[Mapping[str, Any]]) -> int:
        """Insert many rows; returns the count."""
        count = 0
        for row in rows:
            self.insert(row)
            count += 1
        return count

    def delete(self, predicate: Callable[[TaggedRow], bool]) -> int:
        """Delete rows matching ``predicate``; returns the count removed."""
        with self._lock:
            self._require_mutable()
            if self._partition_spec is None:
                before = len(self._rows)
                self._rows = [r for r in self._rows if not predicate(r)]
                self._version += 1
                return before - len(self._rows)
            dead: set[int] = set()
            kept: list[TaggedRow] = []
            for row in self._rows:
                if predicate(row):
                    dead.add(id(row))
                else:
                    kept.append(row)
            removed = len(self._rows) - len(kept)
            self._rows = kept
            self._version += 1
            if not dead:
                return 0
            for bucket, shard in enumerate(self._partitions):
                if any(id(row) in dead for row in shard._rows):
                    with shard._lock:
                        shard._rows = [
                            row
                            for row in shard._rows
                            if id(row) not in dead
                        ]
                        shard._version += 1
                    self._dirty_partitions.add(bucket)
            return removed

    @property
    def version(self) -> int:
        """Monotonic mutation counter (for cache invalidation)."""
        return self._version

    # -- partitioning ----------------------------------------------------------

    def repartition(self, spec: Optional[PartitionSpec]) -> "TaggedRelation":
        """(Re)declare the partition layout; ``None`` drops partitioning.

        Mirrors :meth:`repro.relational.relation.Relation.repartition`:
        rows route on the *cell value* of the partition column, shards
        share both schema objects, and the layout version bump forces
        cached plans to replan.
        """
        position: Optional[int] = None
        if spec is not None:
            position = self.schema.index_of(spec.column)
        with self._lock:
            self._require_mutable()
            self._partition_spec = spec
            self._partition_position = position
            self._partition_layout_version += 1
            if spec is None:
                self._partitions = []
                self._dirty_partitions = set()
                return self
            self._partitions = [
                TaggedRelation(self.schema, self.tag_schema)
                for _ in range(spec.count)
            ]
            self._redistribute()
        return self

    def _route_insert(self, row: TaggedRow) -> None:
        bucket = self._partition_spec.bucket_of(
            row.cells[self._partition_position].value
        )
        shard = self._partitions[bucket]
        with shard._lock:
            shard._rows.append(row)
            shard._version += 1
        self._dirty_partitions.add(bucket)

    def _redistribute(self) -> None:
        spec = self._partition_spec
        position = self._partition_position
        grouped: list[list[TaggedRow]] = [[] for _ in range(spec.count)]
        for row in self._rows:
            grouped[spec.bucket_of(row.cells[position].value)].append(row)
        for shard, rows in zip(self._partitions, grouped):
            with shard._lock:
                shard._rows = rows
                shard._version += 1
        self._dirty_partitions = set(range(spec.count))

    @property
    def partition_spec(self) -> Optional[PartitionSpec]:
        """The declared layout, or ``None`` when unpartitioned."""
        return self._partition_spec

    @property
    def partition_layout_version(self) -> int:
        """Bumped by every :meth:`repartition` (plan-cache pin)."""
        return self._partition_layout_version

    @property
    def dirty_partitions(self) -> frozenset[int]:
        """Buckets mutated since :meth:`mark_partitions_clean`."""
        return frozenset(self._dirty_partitions)

    def mark_partitions_clean(self) -> None:
        """Reset dirty tracking (called after a successful save)."""
        self._dirty_partitions.clear()

    def partition(self, bucket: int) -> "TaggedRelation":
        """The shard relation backing one bucket."""
        return self._partitions[bucket]

    def partitions(self) -> list["TaggedRelation"]:
        """All shard relations, in bucket order."""
        return list(self._partitions)

    def columnar_store(self):
        """The relation's columnar tag store, built lazily and cached.

        The store is rebuilt whenever :attr:`version` shows the rows
        changed since the last build, so query paths can route
        indicator-constrained scans through contiguous tag arrays
        without ever reading stale data.
        """
        cached = self._columnar_cache
        if cached is not None and cached[0] == self._version:
            return cached[1]
        from repro.tagging.columnar import ColumnarTagStore

        # Built under the mutation lock so two sessions racing on a cold
        # cache agree on one store (and neither sees a half-built one).
        with self._lock:
            cached = self._columnar_cache
            if cached is not None and cached[0] == self._version:
                return cached[1]
            store = ColumnarTagStore.from_tagged_relation(self)
            self._columnar_cache = (self._version, store)
            return store

    # -- snapshot reads --------------------------------------------------------

    @property
    def frozen(self) -> bool:
        """True for read snapshots, which reject every mutation."""
        return self._frozen

    def read_snapshot(self) -> "TaggedRelation":
        """A frozen copy-on-write snapshot of the current rows.

        Mirrors :meth:`repro.relational.relation.Relation.read_snapshot`:
        the snapshot shares this relation's schema and tag-schema
        objects and its immutable ``TaggedRow`` objects, is cached
        until the next mutation, carries the partition layout over with
        per-shard snapshot reuse, and rejects every mutation with
        :class:`~repro.errors.SnapshotWriteError`.
        """
        with self._lock:
            if self._frozen:
                return self
            token = (self._version, self._partition_layout_version)
            cached = self._snapshot_cache
            if cached is not None and cached[0] == token:
                return cached[1]
            snapshot = TaggedRelation(self.schema, self.tag_schema)
            snapshot._rows = list(self._rows)
            snapshot._partition_spec = self._partition_spec
            snapshot._partition_position = self._partition_position
            snapshot._partition_layout_version = (
                self._partition_layout_version
            )
            if self._partition_spec is not None:
                snapshot._partitions = [
                    shard.read_snapshot() for shard in self._partitions
                ]
            snapshot._frozen = True
            self._snapshot_cache = (token, snapshot)
            return snapshot

    # -- access -------------------------------------------------------------------

    @property
    def rows(self) -> tuple[TaggedRow, ...]:
        return tuple(self._rows)

    def row_batch(self) -> list[TaggedRow]:
        """The backing row list, *not* a copy (treat as read-only)."""
        return self._rows

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[TaggedRow]:
        return iter(self._rows)

    @classmethod
    def from_rows(
        cls,
        schema: RelationSchema,
        tag_schema: TagSchema,
        rows: Iterable[TaggedRow],
    ) -> "TaggedRelation":
        """Trusted bulk constructor: ``rows`` must already conform to
        both schemas (validated values and tags, matching column order)."""
        relation = cls(schema, tag_schema)
        relation._rows = list(rows)
        return relation

    def empty_like(self) -> "TaggedRelation":
        """An empty tagged relation with the same schemas."""
        return TaggedRelation(self.schema, self.tag_schema)

    def copy(self) -> "TaggedRelation":
        fresh = self.empty_like()
        fresh._rows = list(self._rows)
        fresh._version += 1
        if self._partition_spec is not None:
            fresh.repartition(self._partition_spec)
        return fresh

    # -- conversions ----------------------------------------------------------------

    def values_relation(self) -> Relation:
        """Strip all tags, producing a plain relation of the values."""
        return Relation.from_rows(
            self.schema,
            (
                Row._from_validated(self.schema, row.values_tuple())
                for row in self._rows
            ),
        )

    @classmethod
    def from_relation(
        cls,
        relation: Relation,
        tag_schema: Optional[TagSchema] = None,
        tagger: Optional[Callable[[str, Any], Iterable[IndicatorValue]]] = None,
    ) -> "TaggedRelation":
        """Lift a plain relation into a tagged one.

        ``tagger(column, value)`` supplies each cell's initial tags; if
        omitted, cells start untagged (and the tag schema must not
        *require* indicators on any column).
        """
        tagged = cls(relation.schema, tag_schema)
        for row in relation:
            cells: dict[str, QualityCell] = {}
            for name in relation.schema.column_names:
                value = row[name]
                tags = list(tagger(name, value)) if tagger else []
                cells[name] = QualityCell(value, tags)
            tagged.insert(cells)
        return tagged

    # -- rendering ---------------------------------------------------------------------

    def render(
        self,
        max_rows: Optional[int] = None,
        title: Optional[str] = None,
        show_tags: bool = True,
        date_format: str = "%m-%d-%y",
    ) -> str:
        """Render in the paper's Table-2 style (tags beneath values)."""
        names = list(self.schema.column_names)
        shown = self._rows if max_rows is None else self._rows[:max_rows]
        grid: list[list[str]] = [names]
        for row in shown:
            if show_tags:
                grid.append([row[n].render(date_format) for n in names])
            else:
                value_row = []
                for n in names:
                    v = row[n].value
                    value_row.append("" if v is None else str(v))
                grid.append(value_row)
        widths = [max(len(cell) for cell in col) for col in zip(*grid)]
        lines = []
        if title:
            lines.append(title)
        lines.append(
            " | ".join(n.ljust(w) for n, w in zip(names, widths)).rstrip()
        )
        lines.append("-+-".join("-" * w for w in widths))
        for cells in grid[1:]:
            lines.append(
                " | ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()
            )
        if max_rows is not None and len(self._rows) > max_rows:
            lines.append(f"... ({len(self._rows) - max_rows} more rows)")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"TaggedRelation({self.schema.name}, {len(self._rows)} rows)"

    # -- statistics -----------------------------------------------------------------------

    def tag_count(self) -> int:
        """Total number of indicator values stored across all cells."""
        return sum(len(cell.tags) for row in self._rows for cell in row.cells)

    def tag_coverage(self, column: str, indicator: str) -> float:
        """Fraction of ``column`` cells carrying ``indicator`` (0 if empty)."""
        self.schema.column(column)
        if not self._rows:
            return 0.0
        tagged = sum(1 for row in self._rows if row[column].has_tag(indicator))
        return tagged / len(self._rows)
