"""Quality indicator definitions, values, and per-relation tag schemas.

Terminology (paper §1.3):

- a *quality indicator* is an objective data dimension providing
  information about the data's manufacturing process (source, creation
  time, collection method, ...);
- a *quality indicator value* is a measured characteristic of the stored
  data (e.g. source = "Wall Street Journal");
- *data quality requirements* specify which indicators must be tagged so
  users can retrieve data of specific quality at query time.

A :class:`TagSchema` is the executable form of those requirements for
one relation: per column, which indicators are required and which are
merely allowed.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Optional, Sequence

from repro.errors import TagSchemaError, UnknownIndicatorError
from repro.relational.schema import RelationSchema
from repro.relational.types import Domain, domain_by_name


class IndicatorDefinition:
    """The definition of one quality indicator (name + value domain).

    Parameters
    ----------
    name:
        Indicator name, e.g. ``"source"`` or ``"creation_time"``.
    domain:
        Domain of the indicator's values (default STR).
    doc:
        What the indicator records about the manufacturing process.
    """

    __slots__ = ("name", "domain", "doc")

    def __init__(self, name: str, domain: Domain | str = "STR", doc: str = "") -> None:
        if not name:
            raise TagSchemaError("indicator must have a name")
        self.name = name
        self.domain = domain_by_name(domain) if isinstance(domain, str) else domain
        self.doc = doc

    def value(self, value: Any, meta: Optional[Mapping[str, Any]] = None) -> "IndicatorValue":
        """Construct a validated :class:`IndicatorValue` of this indicator."""
        return IndicatorValue(self.name, self.domain.validate(value), meta=meta)

    def __repr__(self) -> str:
        return f"IndicatorDefinition({self.name}: {self.domain.name})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, IndicatorDefinition)
            and other.name == self.name
            and other.domain == self.domain
        )

    def __hash__(self) -> int:
        return hash(("IndicatorDefinition", self.name, self.domain))


class IndicatorValue:
    """One quality-indicator value attached to a cell.

    ``meta`` carries meta-quality indicators (Premise 1.4): tags about
    the tag itself, e.g. who recorded the ``source`` tag.  The recursion
    stops at one level, as documented in DESIGN.md §9.

    IndicatorValues are immutable and hashable so tag propagation can
    deduplicate them in set operations.
    """

    __slots__ = ("name", "value", "meta")

    def __init__(
        self,
        name: str,
        value: Any,
        meta: Optional[Mapping[str, Any]] = None,
    ) -> None:
        if not name:
            raise TagSchemaError("indicator value must name its indicator")
        self.name = name
        self.value = value
        self.meta: tuple[tuple[str, Any], ...] = (
            tuple(sorted(meta.items())) if meta else ()
        )

    def meta_dict(self) -> dict[str, Any]:
        """The meta-tags as a plain dict."""
        return dict(self.meta)

    def __repr__(self) -> str:
        if self.meta:
            return f"IndicatorValue({self.name}={self.value!r}, meta={dict(self.meta)!r})"
        return f"IndicatorValue({self.name}={self.value!r})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, IndicatorValue)
            and other.name == self.name
            and other.value == self.value
            and other.meta == self.meta
        )

    def __hash__(self) -> int:
        return hash(("IndicatorValue", self.name, self.value, self.meta))


class TagSchema:
    """Which indicators tag which columns of one relation.

    Parameters
    ----------
    indicators:
        Definitions of every indicator used anywhere in the schema.
    required:
        Maps column name → indicator names that *must* be present on
        every cell of that column.
    allowed:
        Maps column name → indicator names that *may* be present (in
        addition to the required ones).  Columns absent from both maps
        accept no tags.

    Example
    -------
    >>> ts = TagSchema(
    ...     indicators=[IndicatorDefinition("source"),
    ...                 IndicatorDefinition("creation_time", "DATE")],
    ...     required={"address": ["source", "creation_time"]})
    >>> sorted(ts.required_for("address"))
    ['creation_time', 'source']
    """

    def __init__(
        self,
        indicators: Sequence[IndicatorDefinition] = (),
        required: Optional[Mapping[str, Sequence[str]]] = None,
        allowed: Optional[Mapping[str, Sequence[str]]] = None,
    ) -> None:
        self._indicators: dict[str, IndicatorDefinition] = {}
        for definition in indicators:
            if definition.name in self._indicators:
                raise TagSchemaError(
                    f"duplicate indicator definition {definition.name!r}"
                )
            self._indicators[definition.name] = definition
        self._required: dict[str, frozenset[str]] = {
            col: frozenset(names) for col, names in (required or {}).items()
        }
        self._allowed: dict[str, frozenset[str]] = {
            col: frozenset(names) for col, names in (allowed or {}).items()
        }
        for col, names in list(self._required.items()) + list(self._allowed.items()):
            unknown = names - set(self._indicators)
            if unknown:
                raise TagSchemaError(
                    f"column {col!r} references undefined indicators "
                    f"{sorted(unknown)}"
                )
        # Cached per-column required∪allowed sets so the per-cell
        # validation hot path does not rebuild frozenset unions.
        self._allowed_full: dict[str, frozenset[str]] = {
            col: self._required.get(col, frozenset())
            | self._allowed.get(col, frozenset())
            for col in set(self._required) | set(self._allowed)
        }

    # -- introspection ------------------------------------------------------

    @property
    def indicator_names(self) -> tuple[str, ...]:
        return tuple(sorted(self._indicators))

    def definition(self, name: str) -> IndicatorDefinition:
        """Look up an indicator definition."""
        try:
            return self._indicators[name]
        except KeyError:
            raise UnknownIndicatorError(
                f"tag schema defines no indicator {name!r} "
                f"(defined: {list(self.indicator_names)})"
            ) from None

    def required_for(self, column: str) -> frozenset[str]:
        """Indicators required on every cell of ``column``."""
        return self._required.get(column, frozenset())

    def allowed_for(self, column: str) -> frozenset[str]:
        """All indicators permitted on cells of ``column``."""
        return self._allowed_full.get(column, frozenset())

    @property
    def tagged_columns(self) -> tuple[str, ...]:
        """Columns with at least one required or allowed indicator."""
        return tuple(sorted(set(self._required) | set(self._allowed)))

    # -- validation -------------------------------------------------------------

    def check_against(self, relation_schema: RelationSchema) -> None:
        """Ensure every tagged column exists in the relation schema."""
        missing = [
            col for col in self.tagged_columns if col not in relation_schema
        ]
        if missing:
            raise TagSchemaError(
                f"tag schema references columns {missing} not present in "
                f"relation {relation_schema.name!r}"
            )

    def validate_tags(
        self, column: str, tags: Iterable[IndicatorValue]
    ) -> dict[str, IndicatorValue]:
        """Validate a cell's tags for ``column``.

        Checks: every tag's indicator is allowed on the column, tag
        values belong to the indicator's domain, no duplicate indicator,
        and all required indicators are present.  Returns the tags keyed
        by indicator name.
        """
        allowed = self.allowed_for(column)
        result: dict[str, IndicatorValue] = {}
        for tag in tags:
            if tag.name not in allowed:
                raise UnknownIndicatorError(
                    f"indicator {tag.name!r} is not allowed on column "
                    f"{column!r} (allowed: {sorted(allowed)})"
                )
            if tag.name in result:
                raise TagSchemaError(
                    f"duplicate tag for indicator {tag.name!r} on column {column!r}"
                )
            definition = self.definition(tag.name)
            validated = definition.domain.validate(tag.value)
            result[tag.name] = (
                tag
                if validated == tag.value
                else IndicatorValue(tag.name, validated, meta=tag.meta_dict())
            )
        missing = self.required_for(column) - set(result)
        if missing:
            raise TagSchemaError(
                f"column {column!r} is missing required indicator(s) "
                f"{sorted(missing)}"
            )
        return result

    # -- derivation ---------------------------------------------------------------

    def merge(self, other: "TagSchema") -> "TagSchema":
        """Union of two tag schemas (used by quality-view integration).

        Indicator definitions must agree on domains; required sets union,
        allowed sets union.
        """
        for name in set(self.indicator_names) & set(other.indicator_names):
            if self.definition(name) != other.definition(name):
                raise TagSchemaError(
                    f"indicator {name!r} is defined with conflicting domains"
                )
        indicators = {d.name: d for d in self._indicators.values()}
        indicators.update({d.name: d for d in other._indicators.values()})
        required: dict[str, set[str]] = {}
        for source in (self._required, other._required):
            for col, names in source.items():
                required.setdefault(col, set()).update(names)
        allowed: dict[str, set[str]] = {}
        for source in (self._allowed, other._allowed):
            for col, names in source.items():
                allowed.setdefault(col, set()).update(names)
        return TagSchema(
            indicators=list(indicators.values()),
            required={c: sorted(n) for c, n in required.items()},
            allowed={c: sorted(n) for c, n in allowed.items()},
        )

    def project(self, columns: Sequence[str]) -> "TagSchema":
        """Restrict the tag schema to a subset of columns.

        The column list must not repeat a name: a duplicate would mean
        two output columns share one tag-requirement slot.
        """
        counts: dict[str, int] = {}
        for column in columns:
            counts[column] = counts.get(column, 0) + 1
        duplicates = sorted(c for c, n in counts.items() if n > 1)
        if duplicates:
            raise TagSchemaError(
                f"projection lists duplicate column(s) {duplicates}"
            )
        keep = set(columns)
        return TagSchema(
            indicators=list(self._indicators.values()),
            required={
                c: sorted(n) for c, n in self._required.items() if c in keep
            },
            allowed={
                c: sorted(n) for c, n in self._allowed.items() if c in keep
            },
        )

    def rename_columns(self, mapping: Mapping[str, str]) -> "TagSchema":
        """Rename tagged columns per ``mapping``.

        Rejects mappings that collide two tagged columns onto one output
        name — that would silently merge their indicator requirements
        (each cell would suddenly need the union of both columns' tags).
        """
        targets: dict[str, list[str]] = {}
        for column in self.tagged_columns:
            targets.setdefault(mapping.get(column, column), []).append(column)
        collisions = {
            target: columns
            for target, columns in targets.items()
            if len(columns) > 1
        }
        if collisions:
            detail = "; ".join(
                f"{sorted(columns)} -> {target!r}"
                for target, columns in sorted(collisions.items())
            )
            raise TagSchemaError(
                f"rename maps multiple tagged columns onto one name: {detail}"
            )
        return TagSchema(
            indicators=list(self._indicators.values()),
            required={
                mapping.get(c, c): sorted(n) for c, n in self._required.items()
            },
            allowed={
                mapping.get(c, c): sorted(n) for c, n in self._allowed.items()
            },
        )

    def __repr__(self) -> str:
        return (
            f"TagSchema(indicators={list(self.indicator_names)}, "
            f"required={{ {', '.join(f'{c}: {sorted(n)}' for c, n in sorted(self._required.items()))} }})"
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, TagSchema)
            and other._indicators == self._indicators
            and other._required == self._required
            and other._allowed == self._allowed
        )

    def to_dict(self) -> dict[str, Any]:
        """Serialize (JSON-compatible)."""
        return {
            "indicators": [
                {"name": d.name, "domain": d.domain.name, "doc": d.doc}
                for d in self._indicators.values()
            ],
            "required": {c: sorted(n) for c, n in self._required.items()},
            "allowed": {c: sorted(n) for c, n in self._allowed.items()},
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TagSchema":
        """Deserialize a schema produced by :meth:`to_dict`."""
        return cls(
            indicators=[
                IndicatorDefinition(d["name"], d["domain"], d.get("doc", ""))
                for d in data["indicators"]
            ],
            required=data.get("required"),
            allowed=data.get("allowed"),
        )


#: Indicators the paper names repeatedly; available as ready-made
#: definitions for examples and scenario builders.
STANDARD_INDICATORS: dict[str, IndicatorDefinition] = {
    d.name: d
    for d in (
        IndicatorDefinition(
            "source", "STR", "Who/what supplied the datum (department, feed, ...)"
        ),
        IndicatorDefinition(
            "creation_time", "DATE", "When the datum was created/recorded"
        ),
        IndicatorDefinition(
            "collection_method",
            "STR",
            "How the datum was captured (over the phone, scanner, ...)",
        ),
        IndicatorDefinition("age", "FLOAT", "Age of the datum, in days"),
        IndicatorDefinition("analyst_name", "STR", "Analyst credited for a report"),
        IndicatorDefinition(
            "media", "STR", "Stored document format (bitmap, ASCII, postscript)"
        ),
        IndicatorDefinition(
            "inspection", "STR", "Inspection/certification procedure applied"
        ),
        IndicatorDefinition("price", "FLOAT", "Monetary price paid for the datum"),
        IndicatorDefinition(
            "update_frequency", "STR", "How often the datum is refreshed"
        ),
        IndicatorDefinition(
            "source_status",
            "STR",
            "Acquisition outcome of the datum's source "
            "(ok | recovered | failed | circuit_open)",
        ),
        IndicatorDefinition(
            "retrieved_at",
            "FLOAT",
            "Wall-clock time (epoch seconds) the source answered",
        ),
    )
}
