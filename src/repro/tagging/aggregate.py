"""Aggregate-level quality tagging: tags on relations and databases.

§1.2 (footnote to the cell-tagging proposal): "Tagging higher
aggregations, such as the table or database level, may handle some of
these more general quality concepts.  For example, the means by which a
database table was populated may give some indication of its
completeness."

A :class:`RelationTags` attaches indicator values to a whole relation
(population method, census date, steward, certification status...), and
:class:`DatabaseTags` does the same per database with a registry of its
relations' tags.  Aggregate tags participate in filtering: an
application profile can demand "only use tables populated from the full
census" before any cell-level constraint runs.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping, Optional

from repro.errors import TaggingError, UnknownIndicatorError
from repro.tagging.indicators import IndicatorDefinition, IndicatorValue


class RelationTags:
    """Quality-indicator values describing a whole relation.

    >>> tags = RelationTags("customer", [
    ...     IndicatorValue("population_method", "full census"),
    ...     IndicatorValue("steward", "sales ops")])
    >>> tags.value("population_method")
    'full census'
    """

    def __init__(
        self,
        relation_name: str,
        tags: Iterable[IndicatorValue] = (),
    ) -> None:
        if not relation_name:
            raise TaggingError("relation tags must name their relation")
        self.relation_name = relation_name
        self._tags: dict[str, IndicatorValue] = {}
        for tag in tags:
            self.set(tag)

    def set(self, tag: IndicatorValue) -> IndicatorValue:
        """Set (or replace) one indicator value."""
        self._tags[tag.name] = tag
        return tag

    def remove(self, indicator: str) -> None:
        """Remove one indicator's tag (missing is an error)."""
        try:
            del self._tags[indicator]
        except KeyError:
            raise UnknownIndicatorError(
                f"relation {self.relation_name!r} carries no aggregate "
                f"indicator {indicator!r}"
            ) from None

    def has(self, indicator: str) -> bool:
        return indicator in self._tags

    def get(self, indicator: str) -> IndicatorValue:
        """The tag for one indicator; raises when absent."""
        try:
            return self._tags[indicator]
        except KeyError:
            raise UnknownIndicatorError(
                f"relation {self.relation_name!r} carries no aggregate "
                f"indicator {indicator!r} (tags: {sorted(self._tags)})"
            ) from None

    def value(self, indicator: str, default: Any = None) -> Any:
        """The tag's value, or ``default`` when untagged."""
        tag = self._tags.get(indicator)
        return tag.value if tag is not None else default

    @property
    def indicator_names(self) -> tuple[str, ...]:
        return tuple(sorted(self._tags))

    def as_dict(self) -> dict[str, Any]:
        return {name: tag.value for name, tag in sorted(self._tags.items())}

    def render(self) -> str:
        if not self._tags:
            return f"{self.relation_name}: (no aggregate tags)"
        inner = ", ".join(
            f"{name}={tag.value!r}" for name, tag in sorted(self._tags.items())
        )
        return f"{self.relation_name}: {inner}"

    def __repr__(self) -> str:
        return f"RelationTags({self.render()})"


class DatabaseTags:
    """Aggregate tags for a database and all of its relations."""

    def __init__(
        self,
        database_name: str,
        tags: Iterable[IndicatorValue] = (),
    ) -> None:
        if not database_name:
            raise TaggingError("database tags must name their database")
        self.database_name = database_name
        self.own = RelationTags(database_name, tags)
        self._relations: dict[str, RelationTags] = {}

    def relation(self, relation_name: str) -> RelationTags:
        """Tags for one relation (created empty on first access)."""
        if relation_name not in self._relations:
            self._relations[relation_name] = RelationTags(relation_name)
        return self._relations[relation_name]

    @property
    def relation_names(self) -> tuple[str, ...]:
        return tuple(sorted(self._relations))

    def __iter__(self) -> Iterator[RelationTags]:
        return iter(self._relations.values())

    def render(self) -> str:
        lines = [f"Database {self.database_name}: {self.own.as_dict()}"]
        for name in self.relation_names:
            lines.append("  " + self._relations[name].render())
        return "\n".join(lines)

    # -- filtering -------------------------------------------------------------

    def relations_where(
        self, indicator: str, predicate: Any
    ) -> list[str]:
        """Names of relations whose aggregate tag satisfies a condition.

        ``predicate`` is either a value (equality match) or a callable
        over the tag value.  Untagged relations never match.
        """
        matcher = predicate if callable(predicate) else (
            lambda value: value == predicate
        )
        hits = []
        for name in self.relation_names:
            tags = self._relations[name]
            if tags.has(indicator) and matcher(tags.value(indicator)):
                hits.append(name)
        return hits


#: Aggregate indicators the paper's footnote motivates, ready-made.
AGGREGATE_INDICATORS: dict[str, IndicatorDefinition] = {
    d.name: d
    for d in (
        IndicatorDefinition(
            "population_method",
            "STR",
            "how the table was populated (census, sample, purchase, feed)",
        ),
        IndicatorDefinition(
            "census_date", "DATE", "as-of date of the populating snapshot"
        ),
        IndicatorDefinition(
            "steward", "STR", "who is accountable for the table's data"
        ),
        IndicatorDefinition(
            "certification_status",
            "STR",
            "latest certification verdict for the table",
        ),
        IndicatorDefinition(
            "coverage_ratio",
            "FLOAT",
            "estimated fraction of the real-world population represented",
        ),
    )
}


def completeness_hint(tags: RelationTags) -> Optional[float]:
    """The footnote's example: estimate completeness from aggregate tags.

    Priority: an explicit ``coverage_ratio`` tag wins; otherwise the
    ``population_method`` maps through a coarse prior; otherwise None
    (no basis for a hint).
    """
    if tags.has("coverage_ratio"):
        value = tags.value("coverage_ratio")
        return min(max(float(value), 0.0), 1.0)
    method = tags.value("population_method")
    priors = {
        "full census": 0.99,
        "census": 0.99,
        "regulatory filing": 0.95,
        "feed": 0.9,
        "sample": 0.5,
        "purchase": 0.6,
        "purchased list": 0.6,
        "volunteer": 0.3,
    }
    if method is None:
        return None
    return priors.get(str(method).lower())
