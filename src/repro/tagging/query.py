"""Quality-constrained retrieval: querying over indicator values.

This module makes the paper's core proposal executable:

    "Given such tags, and the ability to query over them, users can
     filter out data having undesirable characteristics."

An :class:`IndicatorConstraint` restricts one indicator on one column
(e.g. *the address's creation_time must be on/after 1991-01-01*, or
*the employee count's source must not be "estimate"*).  A
:class:`QualityFilter` conjoins constraints, and :class:`QualityQuery`
is the fluent pipeline combining value predicates with quality filters
(the "grade"-based retrieval of §4).
"""

from __future__ import annotations

import operator
from typing import Any, Callable, Iterable, Optional, Sequence

from repro.errors import QueryError
from repro.relational.schema import RelationSchema
from repro.tagging import algebra
from repro.tagging.relation import TaggedRelation, TaggedRow

#: Comparison operators accepted by IndicatorConstraint, by symbol.
OPERATORS: dict[str, Callable[[Any, Any], bool]] = {
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "in": lambda value, options: value in options,
    "not in": lambda value, options: value not in options,
}


class IndicatorConstraint:
    """A constraint over one indicator of one column.

    Parameters
    ----------
    column:
        The application column whose cells are constrained.
    indicator:
        The quality indicator to test.
    op:
        One of the symbols in :data:`OPERATORS`.
    operand:
        The comparison operand (a collection for ``in`` / ``not in``).
    missing_ok:
        What to do when a cell lacks the indicator: if False (default),
        the cell *fails* the constraint — untagged data is conservatively
        treated as not meeting the quality requirement; if True, untagged
        cells pass.

    >>> c = IndicatorConstraint("address", "source", "!=", "estimate")
    >>> c.describe()
    "address.source != 'estimate' [missing fails]"
    """

    def __init__(
        self,
        column: str,
        indicator: str,
        op: str,
        operand: Any,
        missing_ok: bool = False,
    ) -> None:
        if op not in OPERATORS:
            raise QueryError(
                f"unknown operator {op!r} (known: {sorted(OPERATORS)})"
            )
        self.column = column
        self.indicator = indicator
        self.op = op
        self.operand = operand
        self.missing_ok = missing_ok

    def test(self, row: TaggedRow) -> bool:
        """Evaluate the constraint against one row."""
        cell = row[self.column]
        if not cell.has_tag(self.indicator):
            return self.missing_ok
        tag_value = cell.tag_value(self.indicator)
        if tag_value is None:
            return self.missing_ok
        try:
            return OPERATORS[self.op](tag_value, self.operand)
        except TypeError:
            # Incomparable tag value (wrong type) — treat as not meeting
            # the requirement rather than erroring the whole query.
            return False

    def compile(self, schema: RelationSchema) -> Callable[[TaggedRow], bool]:
        """Bind the constraint to a schema for per-row evaluation.

        Resolves the column position once (raising UnknownColumnError
        for bad columns, as :meth:`QualityFilter.apply` always did) and
        returns a closure evaluating the constraint against the cell
        directly — the scan-time pushdown path.
        """
        position = schema.position(self.column)
        indicator = self.indicator
        compare = OPERATORS[self.op]
        operand = self.operand
        missing_ok = self.missing_ok

        def test(row: TaggedRow) -> bool:
            tag_value = row.cells[position].tag_value(indicator)
            if tag_value is None:
                # Absent tag or NULL tag value: same outcome either way.
                return missing_ok
            try:
                return compare(tag_value, operand)
            except TypeError:
                return False

        return test

    def describe(self) -> str:
        """Human-readable form for specifications and reports."""
        missing = "missing passes" if self.missing_ok else "missing fails"
        return f"{self.column}.{self.indicator} {self.op} {self.operand!r} [{missing}]"

    def __repr__(self) -> str:
        return f"IndicatorConstraint({self.describe()})"


class QualityFilter:
    """A conjunction of indicator constraints (one quality "grade").

    §4's information-clearinghouse example: the *mass mailing* grade has
    no constraints; the *fund raising* grade constrains accuracy-related
    indicators.  Filters are reusable, nameable objects so applications
    can store quality profiles (see :mod:`repro.quality.profiles`).
    """

    def __init__(
        self,
        constraints: Iterable[IndicatorConstraint] = (),
        name: str = "",
    ) -> None:
        self.constraints: tuple[IndicatorConstraint, ...] = tuple(constraints)
        self.name = name

    def test(self, row: TaggedRow) -> bool:
        """True if the row satisfies every constraint."""
        return all(c.test(row) for c in self.constraints)

    def compile(self, schema: RelationSchema) -> Callable[[TaggedRow], bool]:
        """Compile the conjunction into one schema-bound predicate.

        Column positions resolve once, and evaluation short-circuits at
        the first failing constraint.
        """
        tests = [c.compile(schema) for c in self.constraints]
        if not tests:
            return lambda row: True
        if len(tests) == 1:
            return tests[0]

        def conjunction(row: TaggedRow) -> bool:
            for test in tests:
                if not test(row):
                    return False
            return True

        return conjunction

    def apply(self, relation: TaggedRelation) -> TaggedRelation:
        """Filter a tagged relation down to rows meeting the grade."""
        return algebra.select(relation, self.compile(relation.schema))

    def apply_columnar(self, relation: TaggedRelation) -> TaggedRelation:
        """Filter through the relation's columnar tag store.

        Semantically identical to :meth:`apply` — same rows, same
        order, same tags — but the conjunction is evaluated over
        contiguous per-(column, indicator) tag arrays via
        :meth:`~repro.tagging.columnar.ColumnarTagStore.scan`, and
        survivor rows are gathered from the original relation (tags
        intact).  Falls back to the per-cell path when a constraint
        names an indicator the tag schema does not allow on its column:
        the per-cell path reads such an indicator as *missing*, and the
        store has no array to scan for it.
        """
        for constraint in self.constraints:
            # Same eager column check as compile(); raises for bad columns.
            relation.schema.position(constraint.column)
        allowed = relation.tag_schema.allowed_for
        if any(
            c.indicator not in allowed(c.column) for c in self.constraints
        ):
            return self.apply(relation)
        indices = relation.columnar_store().scan(
            [
                (c.column, c.indicator, c.op, c.operand, c.missing_ok)
                for c in self.constraints
            ]
        )
        rows = relation.row_batch()
        return TaggedRelation.from_rows(
            relation.schema,
            relation.tag_schema,
            (rows[index] for index in indices),
        )

    def with_constraint(self, constraint: IndicatorConstraint) -> "QualityFilter":
        """A copy with one more constraint."""
        return QualityFilter(self.constraints + (constraint,), self.name)

    def describe(self) -> str:
        """Multi-line description, used in specification documents."""
        header = f"QualityFilter {self.name or '(anonymous)'}"
        if not self.constraints:
            return f"{header}: no constraints (all data acceptable)"
        lines = [f"{header}:"]
        lines.extend(f"  - {c.describe()}" for c in self.constraints)
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"QualityFilter({self.name!r}, {len(self.constraints)} constraints)"

    def __len__(self) -> int:
        return len(self.constraints)


class QualityQuery:
    """Fluent retrieval over tagged relations: values + quality together.

    >>> # QualityQuery(rel).where_value("employees", ">", 100)\\
    >>> #     .require("employees", "source", "!=", "estimate")\\
    >>> #     .select("co_name").run()
    """

    def __init__(
        self,
        source: TaggedRelation,
        _steps: tuple[Callable[[TaggedRelation], TaggedRelation], ...] = (),
    ) -> None:
        self._source = source
        self._steps = _steps

    def _extend(
        self, step: Callable[[TaggedRelation], TaggedRelation]
    ) -> "QualityQuery":
        return QualityQuery(self._source, self._steps + (step,))

    # -- value-side operations -------------------------------------------------

    def where(self, predicate: Callable[[TaggedRow], bool]) -> "QualityQuery":
        """Filter with an arbitrary tagged-row predicate."""
        return self._extend(lambda rel: algebra.select(rel, predicate))

    def where_value(self, column: str, op: str, operand: Any) -> "QualityQuery":
        """Filter on an application value with an operator symbol."""
        if op not in OPERATORS:
            raise QueryError(f"unknown operator {op!r}")
        compare = OPERATORS[op]

        def predicate(row: TaggedRow) -> bool:
            value = row.value(column)
            if value is None:
                return False
            try:
                return compare(value, operand)
            except TypeError:
                return False

        return self.where(predicate)

    def select(self, *columns: str) -> "QualityQuery":
        """Project to the named columns (tags kept)."""
        return self._extend(lambda rel: algebra.project(rel, list(columns)))

    def order_by(
        self,
        *columns: str,
        descending: bool = False,
        by_indicator: Optional[str] = None,
    ) -> "QualityQuery":
        """Sort by values, or by a tag when ``by_indicator`` is given."""
        return self._extend(
            lambda rel: algebra.sort(
                rel, list(columns), descending=descending, key_indicator=by_indicator
            )
        )

    def limit(self, n: int) -> "QualityQuery":
        """Keep the first ``n`` rows."""
        return self._extend(lambda rel: algebra.limit(rel, n))

    # -- quality-side operations ----------------------------------------------------

    def require(
        self,
        column: str,
        indicator: str,
        op: str,
        operand: Any,
        missing_ok: bool = False,
    ) -> "QualityQuery":
        """Add one indicator constraint (untagged cells fail by default)."""
        constraint = IndicatorConstraint(column, indicator, op, operand, missing_ok)
        return self._extend(
            lambda rel: algebra.select(rel, constraint.compile(rel.schema))
        )

    def require_tagged(self, column: str, indicator: str) -> "QualityQuery":
        """Keep only rows whose ``column`` cell carries ``indicator``."""
        return self.where(lambda row: row[column].has_tag(indicator))

    def grade(self, quality_filter: QualityFilter) -> "QualityQuery":
        """Apply a named quality filter (a stored grade/profile)."""
        return self._extend(quality_filter.apply)

    # -- execution ---------------------------------------------------------------------

    def run(self) -> TaggedRelation:
        """Execute the pipeline."""
        result = self._source
        for step in self._steps:
            result = step(result)
        return result

    def count(self) -> int:
        """Execute and return the row count."""
        return len(self.run())

    def values(self) -> list[dict[str, Any]]:
        """Execute and return application values as dicts (no tags)."""
        return [row.values_dict() for row in self.run()]

    def __repr__(self) -> str:
        return f"QualityQuery({self._source.schema.name!r}, {len(self._steps)} steps)"
