"""Quality cells: an application value plus its quality-indicator tags.

This is the data structure behind the paper's Table 2, where the cell
``62 Lois Av`` carries the tags ``(10-24-91, acct'g)`` — creation time
and source.  A :class:`QualityCell` is immutable; tag-modifying methods
return new cells, which lets the quality-extended algebra share cells
between input and output relations safely.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Optional

from repro.errors import UnknownIndicatorError
from repro.tagging.indicators import IndicatorValue


class QualityCell:
    """An application value with attached quality-indicator values.

    >>> cell = QualityCell("62 Lois Av", [
    ...     IndicatorValue("creation_time", "1991-10-24"),
    ...     IndicatorValue("source", "acct'g")])
    >>> cell.value
    '62 Lois Av'
    >>> cell.tag("source").value
    "acct'g"
    """

    __slots__ = ("value", "_tags")

    def __init__(
        self,
        value: Any,
        tags: Iterable[IndicatorValue] = (),
    ) -> None:
        self.value = value
        collected: dict[str, IndicatorValue] = {}
        for tag in tags:
            # Last write wins on duplicates; TagSchema.validate_tags is the
            # strict path used by TaggedRelation inserts.
            collected[tag.name] = tag
        self._tags: tuple[IndicatorValue, ...] = tuple(
            collected[name] for name in sorted(collected)
        )

    # -- tag access ------------------------------------------------------------

    @property
    def tags(self) -> tuple[IndicatorValue, ...]:
        """All tags, sorted by indicator name."""
        return self._tags

    @property
    def indicator_names(self) -> tuple[str, ...]:
        return tuple(t.name for t in self._tags)

    def has_tag(self, indicator: str) -> bool:
        return any(t.name == indicator for t in self._tags)

    def tag(self, indicator: str) -> IndicatorValue:
        """The tag for ``indicator``; raises if absent."""
        for t in self._tags:
            if t.name == indicator:
                return t
        raise UnknownIndicatorError(
            f"cell {self.value!r} carries no indicator {indicator!r} "
            f"(tags: {list(self.indicator_names)})"
        )

    def tag_value(self, indicator: str, default: Any = None) -> Any:
        """The tag's value for ``indicator``, or ``default`` if untagged."""
        for t in self._tags:
            if t.name == indicator:
                return t.value
        return default

    def tags_dict(self) -> dict[str, Any]:
        """Indicator name → tag value, as a plain dict."""
        return {t.name: t.value for t in self._tags}

    # -- derivation ---------------------------------------------------------------

    def with_tag(self, tag: IndicatorValue) -> "QualityCell":
        """A copy with one tag added or replaced."""
        kept = [t for t in self._tags if t.name != tag.name]
        return QualityCell(self.value, kept + [tag])

    def with_tags(self, tags: Iterable[IndicatorValue]) -> "QualityCell":
        """A copy with several tags added or replaced."""
        cell = self
        for tag in tags:
            cell = cell.with_tag(tag)
        return cell

    def without_tag(self, indicator: str) -> "QualityCell":
        """A copy with one indicator's tag removed (no-op if absent)."""
        return QualityCell(
            self.value, [t for t in self._tags if t.name != indicator]
        )

    def with_value(self, value: Any) -> "QualityCell":
        """A copy holding a different application value, same tags."""
        return QualityCell(value, self._tags)

    # -- rendering / equality --------------------------------------------------------

    def render(self, date_format: str = "%m-%d-%y") -> str:
        """Paper-style rendering: ``value (tag, tag)``.

        Dates are formatted compactly to match Table 2's ``10-24-91``
        style; other values use ``str``.
        """
        if not self._tags:
            return "" if self.value is None else str(self.value)
        parts = []
        for t in self._tags:
            try:
                parts.append(t.value.strftime(date_format))
            except AttributeError:
                parts.append(str(t.value))
        rendered_value = "" if self.value is None else str(self.value)
        return f"{rendered_value} ({', '.join(parts)})"

    def __repr__(self) -> str:
        return f"QualityCell({self.value!r}, tags={self.tags_dict()!r})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, QualityCell):
            return other.value == self.value and other._tags == self._tags
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("QualityCell", _hashable(self.value), self._tags))


def _hashable(value: Any) -> Any:
    """Best-effort hashable projection of a cell value."""
    try:
        hash(value)
        return value
    except TypeError:
        return repr(value)


def plain(value: Any) -> QualityCell:
    """An untagged cell (convenience for building mixed relations)."""
    return QualityCell(value)
