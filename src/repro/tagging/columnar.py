"""Columnar tag storage: the alternative to per-cell tag objects.

DESIGN.md §7 calls out the tag-representation choice for ablation: the
attribute-based model stores tags *on* each cell (the
:class:`~repro.tagging.relation.TaggedRelation` design — simple,
self-describing rows, tags travel with cells through the algebra).  The
alternative is a **columnar side-table**: values live in a plain
relation; each (column, indicator) pair owns one aligned array of tag
values.

Trade-offs this module lets the E2 ablation measure:

- pro: indicator-constrained scans touch one contiguous array instead
  of per-cell dictionaries (faster filters, smaller per-tag overhead);
- con: rows are no longer self-describing, tags don't travel through
  row-at-a-time operators, and deletions must keep every array aligned.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional, Sequence

from repro.errors import TagSchemaError, UnknownIndicatorError
from repro.obs import metrics as _obs_metrics
from repro.relational import arrays as _codec
from repro.relational.relation import Relation
from repro.tagging.indicators import TagSchema
from repro.tagging.query import OPERATORS
from repro.tagging.relation import TaggedRelation


def _record_scan(rows_total: int, rows_hit: int) -> None:
    """Report one tag-array scan into the global registry (enabled only)."""
    registry = _obs_metrics.global_registry()
    registry.counter(
        "columnar.scans", "tag-array scans served by ColumnarTagStore"
    ).inc()
    registry.counter(
        "columnar.rows_scanned", "rows examined by columnar tag scans"
    ).inc(rows_total)
    if rows_total:
        registry.histogram(
            "columnar.scan_selectivity",
            buckets=_obs_metrics.RATIO_BUCKETS,
            description="fraction of rows surviving each columnar tag scan",
        ).observe(rows_hit / rows_total)


class ColumnarTagStore:
    """Plain relation + aligned per-(column, indicator) tag arrays."""

    def __init__(self, relation: Relation, tag_schema: TagSchema) -> None:
        tag_schema.check_against(relation.schema)
        self.relation = relation
        self.tag_schema = tag_schema
        # (column, indicator) → list aligned with relation rows.
        self._arrays: dict[tuple[str, str], list[Any]] = {}
        for column in tag_schema.tagged_columns:
            for indicator in tag_schema.allowed_for(column):
                self._arrays[(column, indicator)] = [None] * len(relation)

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_tagged_relation(cls, tagged: TaggedRelation) -> "ColumnarTagStore":
        """Convert a per-cell tagged relation into columnar form."""
        store = cls(tagged.values_relation(), tagged.tag_schema)
        for row_index, row in enumerate(tagged):
            for column in tagged.tag_schema.tagged_columns:
                cell = row[column]
                for tag in cell.tags:
                    store._arrays[(column, tag.name)][row_index] = tag.value
        return store

    def to_tagged_relation(self) -> TaggedRelation:
        """Convert back to per-cell representation (round-trip)."""
        from repro.tagging.cell import QualityCell
        from repro.tagging.indicators import IndicatorValue

        tagged = TaggedRelation(self.relation.schema, self.tag_schema)
        for row_index, row in enumerate(self.relation):
            cells: dict[str, Any] = {}
            for column in self.relation.schema.column_names:
                tags = []
                for indicator in self.tag_schema.allowed_for(column):
                    value = self._arrays[(column, indicator)][row_index]
                    if value is not None:
                        tags.append(IndicatorValue(indicator, value))
                cells[column] = QualityCell(row[column], tags)
            tagged.insert(cells)
        return tagged

    # -- mutation -----------------------------------------------------------------

    def append(
        self,
        values: dict[str, Any],
        tags: Optional[dict[tuple[str, str], Any]] = None,
    ) -> int:
        """Append one row with its tags; returns the new row index."""
        self.relation.insert(values)
        _codec.append_blank(self._arrays.values())
        row_index = len(self.relation) - 1
        for (column, indicator), value in (tags or {}).items():
            self.set_tag(row_index, column, indicator, value)
        return row_index

    def set_tag(
        self, row_index: int, column: str, indicator: str, value: Any
    ) -> None:
        """Set one tag value (validated against the indicator's domain)."""
        key = (column, indicator)
        if key not in self._arrays:
            raise UnknownIndicatorError(
                f"indicator {indicator!r} is not allowed on column {column!r}"
            )
        definition = self.tag_schema.definition(indicator)
        self._arrays[key][row_index] = definition.domain.validate(value)

    def delete(self, predicate: Callable[[Any], bool]) -> int:
        """Delete rows matching ``predicate`` (called with the plain row).

        Every ``(column, indicator)`` array drops the same positions as
        the backing relation, so scans stay aligned after deletion.
        Returns the number of rows removed.
        """
        self.check_aligned()
        rows = self.relation.row_batch()
        keep = _codec.keep_indices(rows, predicate)
        removed = len(rows) - len(keep)
        if not removed:
            return 0
        self.relation._replace_rows(_codec.gather(rows, keep))
        _codec.compact_in_place(self._arrays, keep)
        return removed

    def check_aligned(self) -> None:
        """Raise if the backing relation's length diverges from any array.

        Divergence means the relation was mutated behind the store's
        back (e.g. ``store.relation.delete(...)`` instead of
        ``store.delete(...)``); scanning would return misaligned rows.
        """
        divergence = _codec.misaligned(len(self.relation), self._arrays)
        if divergence is not None:
            (column, indicator), length = divergence
            raise TagSchemaError(
                f"columnar store is out of sync with its backing "
                f"relation {self.relation.schema.name!r}: relation has "
                f"{len(self.relation)} rows but tag array ({column!r}, "
                f"{indicator!r}) has {length} entries; mutate "
                f"through the store (append/set_tag/delete), not the "
                f"relation directly"
            )

    # -- access --------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.relation)

    def tag_value(self, row_index: int, column: str, indicator: str) -> Any:
        """One tag value (None when untagged)."""
        key = (column, indicator)
        if key not in self._arrays:
            raise UnknownIndicatorError(
                f"indicator {indicator!r} is not allowed on column {column!r}"
            )
        return self._arrays[key][row_index]

    def tag_array(self, column: str, indicator: str) -> Sequence[Any]:
        """The whole aligned tag array (read-only view by convention)."""
        key = (column, indicator)
        if key not in self._arrays:
            raise UnknownIndicatorError(
                f"indicator {indicator!r} is not allowed on column {column!r}"
            )
        return tuple(self._arrays[key])

    def tag_count(self) -> int:
        """Number of non-None tag values stored."""
        return sum(
            1
            for array in self._arrays.values()
            for value in array
            if value is not None
        )

    # -- filtering --------------------------------------------------------------------

    def filter_indices(
        self,
        column: str,
        indicator: str,
        op: str,
        operand: Any,
        missing_ok: bool = False,
    ) -> list[int]:
        """Row indices whose tag satisfies the constraint.

        The columnar representation's fast path: one pass over one array.
        """
        if op not in OPERATORS:
            raise TagSchemaError(f"unknown operator {op!r}")
        compare = OPERATORS[op]
        array = self._arrays.get((column, indicator))
        if array is None:
            raise UnknownIndicatorError(
                f"indicator {indicator!r} is not allowed on column {column!r}"
            )
        self.check_aligned()
        hits = []
        for index, value in enumerate(array):
            if value is None:
                if missing_ok:
                    hits.append(index)
                continue
            try:
                if compare(value, operand):
                    hits.append(index)
            except TypeError:
                continue
        if _obs_metrics.enabled():
            _record_scan(len(array), len(hits))
        return hits

    def scan(
        self,
        constraints: Sequence[
            tuple[str, str, str, Any] | tuple[str, str, str, Any, bool]
        ],
    ) -> list[int]:
        """Row indices satisfying a *conjunction* of tag constraints.

        Each constraint is ``(column, indicator, op, operand)`` — or,
        with an optional fifth element, ``(..., missing_ok)`` — with
        ``op`` from :data:`~repro.tagging.query.OPERATORS`.  The first
        constraint scans its whole array; each further constraint only
        probes the surviving indices, so selective leading constraints
        keep the scan cheap.  Missing tags (None) never match unless
        the constraint says ``missing_ok=True`` (matching
        :class:`~repro.tagging.query.IndicatorConstraint` semantics).
        """
        self.check_aligned()
        hits: Optional[list[int]] = None
        for constraint in constraints:
            column, indicator, op, operand = constraint[:4]
            missing_ok = bool(constraint[4]) if len(constraint) > 4 else False
            if op not in OPERATORS:
                raise TagSchemaError(f"unknown operator {op!r}")
            compare = OPERATORS[op]
            array = self._arrays.get((column, indicator))
            if array is None:
                raise UnknownIndicatorError(
                    f"indicator {indicator!r} is not allowed on column "
                    f"{column!r}"
                )
            survivors: list[int] = []
            emit = survivors.append
            if hits is None:
                if op == "==" and operand is not None and not missing_ok:
                    # Equality scans hop hit-to-hit with list.index, a
                    # C-level search — no Python per-element loop.  (A
                    # None operand must fall through: missing tags never
                    # match, but index(None) would find them.  Likewise
                    # missing_ok: the hop cannot also emit the Nones.)
                    find = array.index
                    index = -1
                    try:
                        while True:
                            index = find(operand, index + 1)
                            emit(index)
                    except ValueError:
                        pass
                else:
                    for index, value in enumerate(array):
                        if value is None:
                            if missing_ok:
                                emit(index)
                            continue
                        try:
                            if compare(value, operand):
                                emit(index)
                        except TypeError:
                            continue
            else:
                for index in hits:
                    value = array[index]
                    if value is None:
                        if missing_ok:
                            emit(index)
                        continue
                    try:
                        if compare(value, operand):
                            emit(index)
                    except TypeError:
                        continue
            hits = survivors
            if not hits:
                break
        selected = (
            hits if hits is not None else list(range(len(self.relation)))
        )
        if _obs_metrics.enabled():
            _record_scan(len(self.relation), len(selected))
        return selected

    def select_rows(self, indices: Iterable[int]) -> Relation:
        """Materialize selected rows as a plain relation."""
        rows = self.relation.rows
        return Relation.from_rows(
            self.relation.schema, (rows[index] for index in indices)
        )

    def filter(
        self,
        column: str,
        indicator: str,
        op: str,
        operand: Any,
        missing_ok: bool = False,
    ) -> Relation:
        """Convenience: constraint → materialized plain relation."""
        return self.select_rows(
            self.filter_indices(column, indicator, op, operand, missing_ok)
        )

    def __repr__(self) -> str:
        return (
            f"ColumnarTagStore({self.relation.schema.name}, "
            f"{len(self.relation)} rows, {len(self._arrays)} tag arrays)"
        )
