"""QualityDatabase: a catalog of tagged relations with quality services.

The paper's end state is a *database* whose data carries quality tags,
whose tables carry aggregate tags (§1.2 footnote), whose applications
retrieve through stored grades (§4), and whose administrator monitors
requirements conformance.  :class:`QualityDatabase` glues those pieces
into one object:

- named :class:`~repro.tagging.relation.TaggedRelation` instances,
  creatable directly from a methodology-produced
  :class:`~repro.core.views.QualitySchema`;
- aggregate tags per table and for the database itself
  (:class:`~repro.tagging.aggregate.DatabaseTags`);
- a profile registry for grade-based retrieval
  (:class:`~repro.quality.profiles.ProfileRegistry`);
- QSQL over any of its relations.
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping, Optional, TYPE_CHECKING

from repro.errors import SchemaError, TaggingError, UnknownRelationError
from repro.relational.schema import RelationSchema
from repro.tagging.aggregate import DatabaseTags
from repro.tagging.indicators import TagSchema
from repro.tagging.relation import TaggedRelation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.views import QualitySchema
    from repro.quality.profiles import ApplicationProfile


class QualityDatabase:
    """A named collection of tagged relations plus quality services."""

    def __init__(self, name: str) -> None:
        if not name:
            raise TaggingError("quality database must have a name")
        self.name = name
        self._relations: dict[str, TaggedRelation] = {}
        self.aggregate_tags = DatabaseTags(name)
        from repro.quality.profiles import ProfileRegistry

        self.profiles = ProfileRegistry()

    # -- schema management ---------------------------------------------------

    def create_relation(
        self,
        schema: RelationSchema,
        tag_schema: Optional[TagSchema] = None,
    ) -> TaggedRelation:
        """Create an empty tagged relation."""
        if schema.name in self._relations:
            raise SchemaError(
                f"quality database {self.name!r} already has relation "
                f"{schema.name!r}"
            )
        relation = TaggedRelation(schema, tag_schema)
        self._relations[schema.name] = relation
        return relation

    def attach(self, relation: TaggedRelation) -> TaggedRelation:
        """Register an existing tagged relation under its schema name."""
        if relation.schema.name in self._relations:
            raise SchemaError(
                f"quality database {self.name!r} already has relation "
                f"{relation.schema.name!r}"
            )
        self._relations[relation.schema.name] = relation
        return relation

    @classmethod
    def from_quality_schema(
        cls,
        quality_schema: "QualitySchema",
        name: Optional[str] = None,
    ) -> "QualityDatabase":
        """Instantiate the methodology's output as a live database.

        Each entity/relationship of the (refined) application view
        becomes a tagged relation whose tag schema is derived from the
        integrated annotations — the design's quality requirements made
        operational in one call.
        """
        from repro.er.relational_mapping import er_to_relational

        plain = er_to_relational(quality_schema.er_schema)
        database = cls(name or quality_schema.name)
        for relation_name in plain.relation_names:
            relation_schema = plain.relation(relation_name).schema
            if relation_name in quality_schema.er_schema:
                tag_schema = quality_schema.tag_schema_for(relation_name)
            else:  # pragma: no cover - folded relations keep no tags
                tag_schema = None
            database.create_relation(relation_schema, tag_schema)
        return database

    # -- access ----------------------------------------------------------------

    def relation(self, name: str) -> TaggedRelation:
        """Look up a tagged relation by name."""
        try:
            return self._relations[name]
        except KeyError:
            raise UnknownRelationError(
                f"quality database {self.name!r} has no relation {name!r} "
                f"(relations: {sorted(self._relations)})"
            ) from None

    @property
    def relation_names(self) -> tuple[str, ...]:
        return tuple(sorted(self._relations))

    def __contains__(self, name: object) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[TaggedRelation]:
        return iter(self._relations.values())

    def relations(self) -> Mapping[str, TaggedRelation]:
        """All relations, by name (for the administrator's monitor())."""
        return dict(self._relations)

    # -- data entry -----------------------------------------------------------------

    def insert(self, relation_name: str, cells: Mapping[str, Any]) -> Any:
        """Insert a row of (possibly tagged) cells into one relation."""
        return self.relation(relation_name).insert(cells)

    # -- retrieval ---------------------------------------------------------------------

    def query(self, sql: str) -> TaggedRelation:
        """Run a QSQL statement against this database's relations."""
        from repro.sql import execute

        return execute(sql, self._relations)

    def register_profile(self, profile: "ApplicationProfile") -> None:
        """Store an application grade for later retrieval."""
        self.profiles.register(profile)

    def retrieve(self, profile_name: str, relation_name: str) -> TaggedRelation:
        """Grade-based retrieval: apply a stored profile to a relation."""
        return self.profiles.retrieve(profile_name, self.relation(relation_name))

    # -- administration -----------------------------------------------------------------

    def monitor(
        self,
        quality_schema: "QualitySchema",
        **kwargs: Any,
    ):
        """Run the administrator's monitoring pass over all relations."""
        from repro.quality.admin import DataQualityAdministrator

        administrator = DataQualityAdministrator(quality_schema)
        owned = {
            name: relation
            for name, relation in self._relations.items()
            if name in quality_schema.er_schema
        }
        return administrator.monitor(owned, **kwargs)

    def render_summary(self) -> str:
        """One-paragraph inventory for the administrator."""
        lines = [f"QualityDatabase {self.name!r}"]
        for name in self.relation_names:
            relation = self._relations[name]
            lines.append(
                f"  {name}: {len(relation)} rows, "
                f"{relation.tag_count()} tags, tagged columns "
                f"{list(relation.tag_schema.tagged_columns)}"
            )
        if self.aggregate_tags.relation_names:
            lines.append("  aggregate tags:")
            for name in self.aggregate_tags.relation_names:
                lines.append(
                    "    " + self.aggregate_tags.relation(name).render()
                )
        if len(self.profiles):
            lines.append(f"  profiles: {list(self.profiles.names)}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"QualityDatabase({self.name!r}, "
            f"relations={list(self.relation_names)})"
        )
