"""Meta-quality indicators: "what is the quality of the quality tags?"

Premise 1.4 raises the recursive question and defers the machinery to
the attribute-based model [28], where the same tagging mechanism applied
to application data is applied to quality indicators.  Here we implement
that one level of recursion: each
:class:`~repro.tagging.indicators.IndicatorValue` can carry ``meta``
tags (who recorded the tag, when, with what confidence), and this module
provides the helpers to stamp, query, and audit them.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Optional

from repro.tagging.cell import QualityCell
from repro.tagging.indicators import IndicatorValue
from repro.tagging.relation import TaggedRelation, TaggedRow


def stamp_meta(
    tag: IndicatorValue,
    recorded_by: Optional[str] = None,
    recorded_on: Optional[Any] = None,
    confidence: Optional[float] = None,
    **extra: Any,
) -> IndicatorValue:
    """Return a copy of ``tag`` with standard meta-tags added.

    Standard meta keys: ``recorded_by`` (actor that wrote the tag),
    ``recorded_on`` (when), ``confidence`` (0..1 belief in the tag's
    correctness).  Extra keyword arguments become additional meta keys.

    >>> tag = IndicatorValue("source", "acct'g")
    >>> stamped = stamp_meta(tag, recorded_by="etl-job-7", confidence=0.9)
    >>> stamped.meta_dict()["recorded_by"]
    'etl-job-7'
    """
    meta = tag.meta_dict()
    if recorded_by is not None:
        meta["recorded_by"] = recorded_by
    if recorded_on is not None:
        meta["recorded_on"] = recorded_on
    if confidence is not None:
        if not 0.0 <= confidence <= 1.0:
            raise ValueError(f"confidence must be in [0, 1], got {confidence}")
        meta["confidence"] = confidence
    meta.update(extra)
    return IndicatorValue(tag.name, tag.value, meta=meta)


def meta_value(
    cell: QualityCell, indicator: str, meta_key: str, default: Any = None
) -> Any:
    """Read one meta-tag of one indicator on a cell."""
    if not cell.has_tag(indicator):
        return default
    return cell.tag(indicator).meta_dict().get(meta_key, default)


def tags_with_meta(
    relation: TaggedRelation, meta_key: str
) -> Iterator[tuple[TaggedRow, str, IndicatorValue]]:
    """Yield (row, column, tag) for every tag carrying ``meta_key``."""
    for row in relation:
        for column in relation.schema.column_names:
            for tag in row[column].tags:
                if meta_key in tag.meta_dict():
                    yield row, column, tag


def min_confidence_filter(
    relation: TaggedRelation,
    column: str,
    indicator: str,
    threshold: float,
    missing_ok: bool = False,
) -> TaggedRelation:
    """Keep rows whose tag confidence meets ``threshold``.

    A second-order quality filter: it does not test the indicator's
    value but the *meta*-quality of the tag itself.
    """
    from repro.tagging import algebra

    def predicate(row: TaggedRow) -> bool:
        confidence = meta_value(row[column], indicator, "confidence")
        if confidence is None:
            return missing_ok
        return confidence >= threshold

    return algebra.select(relation, predicate)


def meta_coverage(relation: TaggedRelation, meta_key: str) -> float:
    """Fraction of tags (across all cells) carrying ``meta_key``."""
    total = 0
    covered = 0
    for row in relation:
        for cell in row.cells:
            for tag in cell.tags:
                total += 1
                if meta_key in tag.meta_dict():
                    covered += 1
    return covered / total if total else 0.0


def audit_tag_provenance(
    relation: TaggedRelation,
) -> list[dict[str, Any]]:
    """Summarize who recorded each indicator's tags, per column.

    Returns a list of ``{column, indicator, recorded_by, count}`` rows —
    the administrator's view of the tagging process itself.
    """
    counts: dict[tuple[str, str, Any], int] = {}
    for row in relation:
        for column in relation.schema.column_names:
            for tag in row[column].tags:
                actor = tag.meta_dict().get("recorded_by", "(unknown)")
                key = (column, tag.name, actor)
                counts[key] = counts.get(key, 0) + 1
    return [
        {
            "column": column,
            "indicator": indicator,
            "recorded_by": actor,
            "count": count,
        }
        for (column, indicator, actor), count in sorted(counts.items(), key=repr)
    ]
