"""Quality-extended relational algebra with tag propagation.

Mirrors :mod:`repro.relational.algebra` over tagged relations.  The
propagation principle (from the attribute-based model [28]) is that
**every output cell carries the tags of the input cell(s) it derives
from**:

- ``select``/``project``/``rename``/``sort``/``limit`` pass cells
  through untouched (tags included);
- joins concatenate rows, so each output cell keeps the tags of its
  originating side;
- ``union`` keeps each branch's cells as-is (duplicates may differ only
  in tags — both are retained, since their quality differs);
- ``distinct_values`` collapses rows whose *values* are equal, merging
  tags where they agree and dropping conflicting indicator values (the
  conservative resolution: a merged cell only claims tags all of its
  witnesses agree on).

Predicates in this module receive :class:`TaggedRow` objects, so they
can inspect both application values (``row.value("price")``) and tags
(``row["price"].tag_value("source")``) — the paper's query-time quality
filtering.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence

from repro.errors import QueryError, SchemaError, TagSchemaError
from repro.relational.schema import RelationSchema
from repro.tagging.cell import QualityCell
from repro.tagging.indicators import IndicatorValue, TagSchema
from repro.tagging.relation import TaggedRelation, TaggedRow

TaggedPredicate = Callable[[TaggedRow], bool]


def select(relation: TaggedRelation, predicate: TaggedPredicate) -> TaggedRelation:
    """σ — keep rows satisfying ``predicate`` (tags travel with rows).

    Surviving rows are shared by reference with the input (rows are
    immutable), so selection never re-validates values or tags.
    """
    return TaggedRelation.from_rows(
        relation.schema,
        relation.tag_schema,
        (row for row in relation if predicate(row)),
    )


def project(
    relation: TaggedRelation,
    columns: Sequence[str],
    new_name: Optional[str] = None,
) -> TaggedRelation:
    """π — keep only ``columns``; each kept cell keeps its tags."""
    if not columns:
        raise QueryError("projection requires at least one column")
    out_schema = relation.schema.project(columns, new_name)
    out_tags = relation.tag_schema.project(columns)
    positions = relation.schema.positions_of(columns)
    return TaggedRelation.from_rows(
        out_schema,
        out_tags,
        (
            TaggedRow._from_validated(
                out_schema, tuple(row.cells[p] for p in positions)
            )
            for row in relation
        ),
    )


def rename(
    relation: TaggedRelation,
    column_mapping: Optional[dict[str, str]] = None,
    new_name: Optional[str] = None,
) -> TaggedRelation:
    """ρ — rename columns/relation; tag schema renames in lockstep."""
    out_schema = relation.schema
    out_tags = relation.tag_schema
    if column_mapping:
        out_schema = out_schema.rename_columns(column_mapping)
        out_tags = out_tags.rename_columns(column_mapping)
    if new_name:
        out_schema = out_schema.renamed(new_name)
    return TaggedRelation.from_rows(
        out_schema,
        out_tags,
        (
            TaggedRow._from_validated(out_schema, row.cells)
            for row in relation
        ),
    )


def union(left: TaggedRelation, right: TaggedRelation) -> TaggedRelation:
    """∪ — bag union; tag schemas merge; cells keep their own tags.

    Rows whose values coincide but whose tags differ are both kept:
    they represent data of different quality (Premise 1.3).
    """
    if not left.schema.union_compatible_with(right.schema):
        raise SchemaError(
            f"union: schemas are not union-compatible "
            f"({left.schema!r} vs {right.schema!r})"
        )
    merged_tags = left.tag_schema.merge(right.tag_schema)
    result = TaggedRelation(left.schema, merged_tags)
    # Rows of either side are already valid under the merged tag schema
    # *except* for indicators the other side newly requires: a column
    # required only on the right must still be present on left cells.
    for branch in (left, right):
        extra_required = [
            (position, missing)
            for position, column in enumerate(left.schema.column_names)
            for missing in [
                merged_tags.required_for(column)
                - branch.tag_schema.required_for(column)
            ]
            if missing
        ]
        for row in branch:
            for position, required in extra_required:
                cell = row.cells[position]
                absent = required - set(cell.indicator_names)
                if absent:
                    raise TagSchemaError(
                        f"column {left.schema.column_names[position]!r} is "
                        f"missing required indicator(s) {sorted(absent)}"
                    )
            result._insert_validated(
                TaggedRow._from_validated(left.schema, row.cells)
            )
    return result


def difference(left: TaggedRelation, right: TaggedRelation) -> TaggedRelation:
    """− — value-based bag difference (tags on the right are ignored).

    A right row cancels one left duplicate with equal *values*; the
    surviving left rows keep their tags.  Value-based matching follows
    [28]: quality tags describe data, they do not change its identity.
    """
    if not left.schema.union_compatible_with(right.schema):
        raise SchemaError("difference: schemas are not union-compatible")
    from collections import Counter

    remaining = Counter(row.values_tuple() for row in right)
    result = left.empty_like()
    for row in left:
        key = row.values_tuple()
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
        else:
            result._insert_validated(row)
    return result


def _merge_cells(cells: Sequence[QualityCell]) -> QualityCell:
    """Merge same-valued cells: keep only tags every witness agrees on."""
    first = cells[0]
    if len(cells) == 1:
        return first
    shared: list[IndicatorValue] = []
    for tag in first.tags:
        if all(
            other.has_tag(tag.name) and other.tag(tag.name) == tag
            for other in cells[1:]
        ):
            shared.append(tag)
    return QualityCell(first.value, shared)


def distinct_values(relation: TaggedRelation) -> TaggedRelation:
    """δ — collapse rows with equal values, merging tags conservatively."""
    groups: dict[tuple[Any, ...], list[TaggedRow]] = {}
    order: list[tuple[Any, ...]] = []
    for row in relation:
        key = tuple(_freeze(v) for v in row.values_tuple())
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(row)
    result = relation.empty_like()
    required_by_position = [
        relation.tag_schema.required_for(name)
        for name in relation.schema.column_names
    ]
    for key in order:
        rows = groups[key]
        if len(rows) == 1:
            result._insert_validated(rows[0])
            continue
        merged_cells = []
        for position, name in enumerate(relation.schema.column_names):
            merged = _merge_cells([row.cells[position] for row in rows])
            # Conservative merging may drop a required indicator when
            # witnesses disagree; that stays an error, as on insert.
            absent = required_by_position[position] - set(
                merged.indicator_names
            )
            if absent:
                raise TagSchemaError(
                    f"column {name!r} is missing required indicator(s) "
                    f"{sorted(absent)}"
                )
            merged_cells.append(merged)
        result._insert_validated(
            TaggedRow._from_validated(relation.schema, tuple(merged_cells))
        )
    return result


def _freeze(value: Any) -> Any:
    try:
        hash(value)
        return value
    except TypeError:
        return repr(value)


def equi_join(
    left: TaggedRelation,
    right: TaggedRelation,
    on: Sequence[tuple[str, str]],
    new_name: Optional[str] = None,
) -> TaggedRelation:
    """Equality join on *values*; output cells keep their side's tags."""
    if not on:
        raise QueryError("equi_join requires at least one column pair")
    for lcol, rcol in on:
        left.schema.column(lcol)
        right.schema.column(rcol)
    name = new_name or f"{left.schema.name}_join_{right.schema.name}"
    out_schema = left.schema.concat(right.schema, name)

    # Column-name mapping applied by concat (overlaps get qualified).
    left_map, right_map = left.schema.concat_maps(right.schema)
    out_tags = left.tag_schema.rename_columns(left_map).merge(
        right.tag_schema.rename_columns(right_map)
    )
    result = TaggedRelation(out_schema, out_tags)
    left_key = left.schema.positions_of([lcol for lcol, _ in on])
    right_key = right.schema.positions_of([rcol for _, rcol in on])

    index: dict[tuple[Any, ...], list[TaggedRow]] = {}
    for rrow in right:
        key = tuple(_freeze(rrow.cells[p].value) for p in right_key)
        index.setdefault(key, []).append(rrow)
    # concat puts all left columns before all right columns, so the
    # output cell tuple is simply the concatenation of both cell tuples.
    for lrow in left:
        key = tuple(_freeze(lrow.cells[p].value) for p in left_key)
        matches = index.get(key)
        if not matches:
            continue
        for rrow in matches:
            result._insert_validated(
                TaggedRow._from_validated(
                    out_schema, lrow.cells + rrow.cells
                )
            )
    return result


def sort(
    relation: TaggedRelation,
    by: Sequence[str],
    descending: bool = False,
    key_indicator: Optional[str] = None,
) -> TaggedRelation:
    """Order rows by column values, or by a tag when ``key_indicator`` set.

    With ``key_indicator``, rows order by
    ``row[column].tag_value(key_indicator)`` for each column in ``by`` —
    e.g. sort by the ``creation_time`` tag of the address column.
    """
    if not by:
        raise QueryError("sort requires at least one column")
    positions = relation.schema.positions_of(by)

    def sort_key(row: TaggedRow) -> tuple:
        keys = []
        for p in positions:
            cell = row.cells[p]
            v = cell.tag_value(key_indicator) if key_indicator else cell.value
            keys.append((v is not None, v))
        return tuple(keys)

    return TaggedRelation.from_rows(
        relation.schema,
        relation.tag_schema,
        sorted(relation, key=sort_key, reverse=descending),
    )


def limit(relation: TaggedRelation, n: int) -> TaggedRelation:
    """Keep only the first ``n`` rows."""
    if n < 0:
        raise QueryError("limit must be non-negative")
    return TaggedRelation.from_rows(
        relation.schema, relation.tag_schema, relation.rows[:n]
    )


def retag(
    relation: TaggedRelation,
    column: str,
    tagger: Callable[[TaggedRow], Optional[IndicatorValue]],
) -> TaggedRelation:
    """Apply/replace one tag on every cell of ``column``.

    ``tagger`` may return None to leave a row's cell unchanged.  The new
    indicator must already be defined in the relation's tag schema.
    """
    position = relation.schema.position(column)
    allowed = relation.tag_schema.allowed_for(column)
    result = relation.empty_like()
    for row in relation:
        tag = tagger(row)
        if tag is None:
            result._insert_validated(row)
            continue
        if tag.name not in allowed:
            raise TagSchemaError(
                f"indicator {tag.name!r} is not allowed on column {column!r}"
            )
        # The new tag's value is the only unvalidated datum in the row.
        domain = relation.tag_schema.definition(tag.name).domain
        validated = domain.validate(tag.value)
        if validated != tag.value:
            tag = IndicatorValue(tag.name, validated, meta=tag.meta_dict())
        cells = list(row.cells)
        cells[position] = cells[position].with_tag(tag)
        result._insert_validated(
            TaggedRow._from_validated(relation.schema, tuple(cells))
        )
    return result
