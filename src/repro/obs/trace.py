"""A span-based tracer with a context-manager API.

Spans time nested phases of work — the plan cache uses them to account
for parse → plan → compile on a cold statement.  Nesting is tracked
per thread (a thread-local span stack), so concurrent queries trace
independently; finished *root* spans accumulate on the tracer until
:meth:`Tracer.clear`.

Like the metric sinks, ambient tracing is wired through the
:func:`repro.obs.metrics.enabled` flag at the call sites; the tracer
itself is always usable directly::

    tracer = Tracer()
    with tracer.span("load"):
        with tracer.span("parse", statements=3):
            ...
    print("\\n".join(tracer.render_lines()))
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Any, Iterator, Optional

__all__ = ["Span", "Tracer", "global_tracer"]


class Span:
    """One timed phase; children are spans opened while it was active."""

    __slots__ = ("name", "attributes", "children", "start", "end", "error")

    def __init__(self, name: str, attributes: dict[str, Any]) -> None:
        self.name = name
        self.attributes = attributes
        self.children: list[Span] = []
        self.start = time.perf_counter()
        self.end: Optional[float] = None
        self.error: Optional[str] = None

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def seconds(self) -> float:
        if self.end is None:
            return time.perf_counter() - self.start
        return self.end - self.start

    def snapshot(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "name": self.name,
            "seconds": self.seconds,
        }
        if self.attributes:
            data["attributes"] = dict(self.attributes)
        if self.error is not None:
            data["error"] = self.error
        if self.children:
            data["children"] = [child.snapshot() for child in self.children]
        return data

    def __repr__(self) -> str:
        return f"Span({self.name}, {self.seconds * 1e3:.3f} ms)"


class Tracer:
    """Collects span trees; nesting follows the per-thread call stack."""

    def __init__(self) -> None:
        self._local = threading.local()
        self._roots: list[Span] = []
        self._lock = threading.Lock()

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    @contextmanager
    def span(self, name: str, **attributes: Any) -> Iterator[Span]:
        """Open a span for the duration of the ``with`` block.

        The span becomes a child of the innermost open span on this
        thread (or a new root).  Exceptions propagate; the span records
        the exception type in ``error`` and still closes.
        """
        stack = self._stack()
        span = Span(name, attributes)
        if stack:
            stack[-1].children.append(span)
        stack.append(span)
        try:
            yield span
        except BaseException as exc:
            span.error = type(exc).__name__
            raise
        finally:
            span.end = time.perf_counter()
            stack.pop()
            if not stack:
                with self._lock:
                    self._roots.append(span)

    def current(self) -> Optional[Span]:
        """The innermost open span on this thread, or None."""
        stack = self._stack()
        return stack[-1] if stack else None

    def roots(self) -> tuple[Span, ...]:
        """Finished root spans, oldest first."""
        with self._lock:
            return tuple(self._roots)

    def clear(self) -> None:
        with self._lock:
            self._roots.clear()

    def render_lines(self) -> list[str]:
        """The collected span trees as indented text lines."""
        lines: list[str] = []

        def walk(span: Span, depth: int) -> None:
            attrs = "".join(
                f" {key}={value!r}"
                for key, value in sorted(span.attributes.items())
            )
            error = f" error={span.error}" if span.error else ""
            lines.append(
                f"{'  ' * depth}{span.name}: "
                f"{span.seconds * 1e3:.3f} ms{attrs}{error}"
            )
            for child in span.children:
                walk(child, depth + 1)

        for root in self.roots():
            walk(root, 0)
        return lines

    def __repr__(self) -> str:
        return f"Tracer({len(self._roots)} root spans)"


_GLOBAL_TRACER = Tracer()


def global_tracer() -> Tracer:
    """The process-wide tracer the plan cache reports into."""
    return _GLOBAL_TRACER
