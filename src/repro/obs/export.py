"""Exporters: registry → JSON / Prometheus text, bench JSONs, trends.

Two consumer groups:

- monitoring: :func:`to_json` and :func:`to_prometheus` render a
  :class:`~repro.obs.metrics.MetricsRegistry` snapshot for scrapers
  (Prometheus text exposition format, names sanitized);
- the benchmark suite: :func:`write_bench_records` writes the stable
  ``BENCH_*.json`` artifact format (the experiments harness routes
  through it), :data:`SPEEDUP_FLOORS` / :data:`OVERHEAD_CEILINGS` are
  the CI-enforced perf envelope, and :func:`trend_table` renders the
  cross-artifact trend report the ``bench-trend`` CI job prints.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable, Optional, Union

from repro.obs.metrics import MetricsRegistry

__all__ = [
    "OVERHEAD_CEILINGS",
    "SPEEDUP_FLOORS",
    "check_floors",
    "to_json",
    "to_prometheus",
    "trend_table",
    "write_bench_records",
]


# -- registry exporters -------------------------------------------------------


def to_json(registry: MetricsRegistry, indent: Optional[int] = 2) -> str:
    """The registry snapshot as a JSON document."""
    return json.dumps(registry.snapshot(), indent=indent, sort_keys=True)


def _sanitize(name: str) -> str:
    """Metric name → Prometheus-legal name (dots/dashes → underscores)."""
    out = []
    for index, char in enumerate(name):
        if char.isalnum() or char == "_":
            out.append(char)
        else:
            out.append("_")
    sanitized = "".join(out)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _format_value(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return repr(value)


def to_prometheus(registry: MetricsRegistry) -> str:
    """The registry in the Prometheus text exposition format."""
    lines: list[str] = []
    for name in registry.names():
        instrument = registry.get(name)
        metric = _sanitize(name)
        if instrument.description:
            lines.append(f"# HELP {metric} {instrument.description}")
        lines.append(f"# TYPE {metric} {instrument.kind}")
        if instrument.kind == "histogram":
            bounds = [repr(b) for b in instrument.buckets] + ["+Inf"]
            for bound, count in zip(bounds, instrument.cumulative_counts()):
                lines.append(f'{metric}_bucket{{le="{bound}"}} {count}')
            lines.append(f"{metric}_sum {_format_value(instrument.sum)}")
            lines.append(f"{metric}_count {instrument.count}")
        else:
            lines.append(f"{metric} {_format_value(instrument.value)}")
    return "\n".join(lines) + ("\n" if lines else "")


# -- bench artifacts ----------------------------------------------------------


def write_bench_records(
    filename: str,
    records: list[dict[str, Any]],
    directory: Optional[Union[str, Path]] = None,
) -> Path:
    """Write benchmark records as a ``BENCH_*.json`` artifact.

    The stable on-disk format (a sorted, indented JSON list of records,
    each carrying at least ``{"bench", "n", "seconds", "ops_per_sec"}``)
    is owned here; ``repro.experiments.harness.write_bench_json``
    delegates to this function.
    """
    target_dir = Path(directory) if directory is not None else Path.cwd()
    target = target_dir / filename
    target.write_text(json.dumps(records, indent=2, sort_keys=True) + "\n")
    return target


#: CI-enforced relative-speedup floors, by bench record name.  A
#: recorded ``speedup`` below its floor fails the ``bench-trend`` job.
SPEEDUP_FLOORS: dict[str, float] = {
    "e1_graded_retrieval_fast": 1.0,
    "e1_graded_retrieval_columnar": 5.0,
    "e2_tagged_scan_fast": 2.0,
    "e2_tagged_scan_columnar": 10.0,
    "e3_federation_join_fast": 3.0,
    "qsql_columnar_scan": 10.0,
    "qsql_cached_statement": 5.0,
    "columnar_scan_filter_topk": 4.0,
    "columnar_vs_naive": 8.0,
    "partition_pruned_scan": 8.0,
    "partition_incremental_save": 4.0,
    "scoring_incremental_rescore": 8.0,
    "scoring_pushdown_filter": 4.0,
    # Snapshot isolation must keep readers off the writers' lock path:
    # reader throughput with a concurrent writer holds >= 0.5x of the
    # readers-alone rate (the "speedup" here is that ratio).
    "service_reader_throughput_under_writer": 0.5,
}

#: CI-enforced relative-overhead ceilings, by bench record name.  A
#: recorded ``overhead`` above its ceiling fails the job; the obs
#: record asserts disabled instrumentation costs < 5% on the hot path.
OVERHEAD_CEILINGS: dict[str, float] = {
    "obs_disabled_execute": 1.05,
    "e4_federation_retry_zero_fault": 1.10,
}


def check_floors(records: Iterable[dict[str, Any]]) -> list[str]:
    """Floor/ceiling violations in bench records; empty means healthy."""
    violations = []
    for record in records:
        name = record.get("bench")
        floor = SPEEDUP_FLOORS.get(name)
        if floor is not None:
            speedup = record.get("speedup")
            if speedup is None:
                violations.append(f"{name}: no speedup recorded")
            elif speedup < floor:
                violations.append(
                    f"{name}: speedup {speedup:.2f}x below floor {floor}x"
                )
        ceiling = OVERHEAD_CEILINGS.get(name)
        if ceiling is not None:
            overhead = record.get("overhead")
            if overhead is None:
                violations.append(f"{name}: no overhead recorded")
            elif overhead > ceiling:
                violations.append(
                    f"{name}: overhead {overhead:.3f}x above ceiling "
                    f"{ceiling}x"
                )
    return violations


def _load_records(paths: Iterable[Union[str, Path]]) -> list[dict[str, Any]]:
    records: list[dict[str, Any]] = []
    for path in paths:
        records.extend(json.loads(Path(path).read_text()))
    return records


def trend_table(paths: Iterable[Union[str, Path]]) -> tuple[str, list[str]]:
    """Render the cross-artifact trend table; returns (table, violations).

    Each row is one bench record: name, input size, wall time, ops/sec,
    the recorded speedup/overhead, its floor/ceiling, and a PASS/FAIL
    status.  Records without an enforced bound show as ``—``.
    """
    records = _load_records(paths)
    header = (
        "bench", "n", "seconds", "ops/sec", "ratio", "bound", "status"
    )
    rows = [header]
    for record in records:
        name = record.get("bench", "?")
        floor = SPEEDUP_FLOORS.get(name)
        ceiling = OVERHEAD_CEILINGS.get(name)
        if floor is not None:
            ratio = record.get("speedup")
            bound = f">={floor}x"
            healthy = ratio is not None and ratio >= floor
            ratio_text = f"{ratio:.2f}x" if ratio is not None else "?"
            status = "PASS" if healthy else "FAIL"
        elif ceiling is not None:
            ratio = record.get("overhead")
            bound = f"<={ceiling}x"
            healthy = ratio is not None and ratio <= ceiling
            ratio_text = f"{ratio:.3f}x" if ratio is not None else "?"
            status = "PASS" if healthy else "FAIL"
        else:
            ratio = record.get("speedup", record.get("overhead"))
            bound = "—"
            ratio_text = f"{ratio:.2f}x" if ratio is not None else "—"
            status = "—"
        rows.append(
            (
                name,
                str(record.get("n", "?")),
                f"{record.get('seconds', 0.0):.6f}",
                f"{record.get('ops_per_sec', 0.0):,.0f}",
                ratio_text,
                bound,
                status,
            )
        )
    widths = [
        max(len(row[column]) for row in rows) for column in range(len(header))
    ]
    lines = []
    for index, row in enumerate(rows):
        lines.append(
            "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
            .rstrip()
        )
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines), check_floors(records)
