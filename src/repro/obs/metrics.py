"""Thread-safe, zero-dependency metric instruments and their registry.

Three instrument kinds, mirroring the Prometheus vocabulary:

- :class:`Counter` — a monotonically increasing total;
- :class:`Gauge` — a value that can move both ways;
- :class:`Histogram` — observation counts in explicit ascending
  buckets, plus a running sum and count.

Instruments are owned by a :class:`MetricsRegistry`; ``counter()`` /
``gauge()`` / ``histogram()`` are get-or-create, so call sites never
coordinate registration.  The process-wide registry behind
:func:`global_registry` is what the engine layers (plan cache, columnar
tag store, polygen join) report into — but only when the module-level
instrumentation flag is on (:func:`enable` / :func:`enabled`), which
keeps the disabled hot path at one boolean check per batch.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Iterator, Optional, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "disable",
    "enable",
    "enabled",
    "global_registry",
    "instrumented",
]

# -- the instrumentation flag -------------------------------------------------

_ENABLED = False


def enabled() -> bool:
    """True when ambient instrumentation is switched on."""
    return _ENABLED


def enable() -> None:
    """Switch ambient instrumentation on (engine layers start reporting)."""
    global _ENABLED
    _ENABLED = True


def disable() -> None:
    """Switch ambient instrumentation off (the default)."""
    global _ENABLED
    _ENABLED = False


@contextmanager
def instrumented() -> Iterator["MetricsRegistry"]:
    """Enable instrumentation for a ``with`` block; restores the prior
    state on exit and yields the global registry."""
    previous = _ENABLED
    enable()
    try:
        yield global_registry()
    finally:
        if not previous:
            disable()


# -- instruments --------------------------------------------------------------


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "description", "_value", "_lock")

    kind = "counter"

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self._value = 0.0
        self._lock = threading.Lock()

    @property
    def value(self) -> float:
        return self._value

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(
                f"counter {self.name!r} cannot decrease (inc({amount}))"
            )
        with self._lock:
            self._value += amount

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0

    def snapshot(self) -> dict[str, Any]:
        return {"kind": self.kind, "value": self._value}

    def __repr__(self) -> str:
        return f"Counter({self.name}={self._value})"


class Gauge:
    """A value that can move both ways (e.g. cache size)."""

    __slots__ = ("name", "description", "_value", "_lock")

    kind = "gauge"

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self._value = 0.0
        self._lock = threading.Lock()

    @property
    def value(self) -> float:
        return self._value

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1) -> None:
        with self._lock:
            self._value -= amount

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0

    def snapshot(self) -> dict[str, Any]:
        return {"kind": self.kind, "value": self._value}

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self._value})"


#: Default histogram buckets: latency-shaped, in seconds.
DEFAULT_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)

#: Buckets for ratios in [0, 1] (selectivities, hit rates).
RATIO_BUCKETS = (0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0)


class Histogram:
    """Observation counts in explicit ascending buckets.

    ``counts[i]`` is the number of observations with
    ``value <= buckets[i]`` *and* ``value > buckets[i - 1]`` — i.e.
    non-cumulative per-bucket counts, with one implicit overflow bucket
    (``+Inf``) at the end.  The Prometheus exporter re-cumulates them.
    """

    __slots__ = ("name", "description", "buckets", "_counts", "_sum",
                 "_count", "_lock")

    kind = "histogram"

    def __init__(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        description: str = "",
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError(f"histogram {name!r} needs at least one bucket")
        if any(a >= b for a, b in zip(bounds, bounds[1:])):
            raise ValueError(
                f"histogram {name!r} buckets must be strictly ascending: "
                f"{bounds}"
            )
        self.name = name
        self.description = description
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # + overflow
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        index = len(self.buckets)
        for position, bound in enumerate(self.buckets):
            if value <= bound:
                index = position
                break
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def bucket_counts(self) -> tuple[int, ...]:
        """Per-bucket counts; the final entry is the +Inf overflow."""
        return tuple(self._counts)

    def cumulative_counts(self) -> tuple[int, ...]:
        """Prometheus-style cumulative counts, one per bound plus +Inf."""
        total = 0
        out = []
        for count in self._counts:
            total += count
            out.append(total)
        return tuple(out)

    def mean(self) -> Optional[float]:
        if not self._count:
            return None
        return self._sum / self._count

    def reset(self) -> None:
        with self._lock:
            self._counts = [0] * (len(self.buckets) + 1)
            self._sum = 0.0
            self._count = 0

    def snapshot(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "count": self._count,
            "sum": self._sum,
            "buckets": list(self.buckets),
            "counts": list(self._counts),
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name}, n={self._count}, sum={self._sum})"


# -- registry -----------------------------------------------------------------


class MetricsRegistry:
    """A named collection of instruments with get-or-create access."""

    def __init__(self) -> None:
        self._instruments: dict[str, Any] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, name: str, factory, kind: str):
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = factory()
                self._instruments[name] = instrument
            elif instrument.kind != kind:
                raise ValueError(
                    f"metric {name!r} is already registered as a "
                    f"{instrument.kind}, not a {kind}"
                )
            return instrument

    def counter(self, name: str, description: str = "") -> Counter:
        return self._get_or_create(
            name, lambda: Counter(name, description), "counter"
        )

    def gauge(self, name: str, description: str = "") -> Gauge:
        return self._get_or_create(
            name, lambda: Gauge(name, description), "gauge"
        )

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        description: str = "",
    ) -> Histogram:
        return self._get_or_create(
            name, lambda: Histogram(name, buckets, description), "histogram"
        )

    def get(self, name: str) -> Optional[Any]:
        """The instrument registered under ``name``, or None."""
        return self._instruments.get(name)

    def names(self) -> list[str]:
        return sorted(self._instruments)

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """A point-in-time copy of every instrument's state."""
        return {
            name: instrument.snapshot()
            for name, instrument in sorted(self._instruments.items())
        }

    def reset(self) -> None:
        """Zero every instrument (definitions stay registered)."""
        for instrument in self._instruments.values():
            instrument.reset()

    def clear(self) -> None:
        """Drop every instrument definition."""
        with self._lock:
            self._instruments.clear()

    def __len__(self) -> int:
        return len(self._instruments)

    def __repr__(self) -> str:
        return f"MetricsRegistry({len(self._instruments)} instruments)"


_GLOBAL_REGISTRY = MetricsRegistry()


def global_registry() -> MetricsRegistry:
    """The process-wide registry the engine layers report into."""
    return _GLOBAL_REGISTRY
