"""Observability: metrics, tracing, and per-query execution statistics.

The paper's tag-and-query design only pays off operationally if the
cost and effect of quality filtering are *visible* at runtime.  This
package provides that visibility in three zero-dependency layers:

- :mod:`repro.obs.metrics` — a process-wide registry of counters,
  gauges, and histograms (explicit buckets, thread-safe) that the
  engine layers report into when instrumentation is enabled;
- :mod:`repro.obs.trace` — a span-based tracer with a context-manager
  API for timing nested phases (parse → plan → compile → execute);
- :mod:`repro.obs.stats` — per-execution operator trees
  (:class:`ExecutionStats`) behind ``EXPLAIN ANALYZE`` and the
  ``execute(..., stats=...)`` hook.

Instrumentation is **off by default**: the ambient metric/trace sinks
are guarded by a module-level flag (:func:`enabled`), so the hot paths
pay one boolean check per *batch* — never per row — when disabled.
Per-query statistics are opt-in per call (pass a
:class:`~repro.obs.stats.StatsCollector` or use ``EXPLAIN ANALYZE``)
and do not depend on the flag.

Exporters (:mod:`repro.obs.export`) render the registry as JSON or
Prometheus text and write the benchmark-suite JSON artifacts; the
``repro-stats`` CLI (``python -m repro.obs``) runs a scenario and
prints the annotated plan.
"""

from repro.obs.export import (
    SPEEDUP_FLOORS,
    check_floors,
    to_json,
    to_prometheus,
    trend_table,
    write_bench_records,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    disable,
    enable,
    enabled,
    global_registry,
    instrumented,
)
from repro.obs.stats import ExecutionStats, OperatorStats, StatsCollector
from repro.obs.trace import Span, Tracer, global_tracer

__all__ = [
    "Counter",
    "ExecutionStats",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "OperatorStats",
    "SPEEDUP_FLOORS",
    "Span",
    "StatsCollector",
    "Tracer",
    "check_floors",
    "disable",
    "enable",
    "enabled",
    "global_registry",
    "global_tracer",
    "instrumented",
    "to_json",
    "to_prometheus",
    "trend_table",
    "write_bench_records",
]
