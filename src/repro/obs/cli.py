"""``repro-stats``: run a scenario and print its runtime observability.

Usage::

    repro-stats [--scenario {e1,e2,e3}] [--scale N]
                [--format {text,json,prometheus}]
    repro-stats --trend BENCH_E1.json BENCH_QSQL.json ...

Scenario mode enables instrumentation, builds one of the paper's
experiment settings, runs its quality-constrained statement under
``EXPLAIN ANALYZE``, and prints the annotated operator tree followed by
the ambient metric registry (text, JSON, or Prometheus exposition
format) and the cold-statement trace spans.

Trend mode loads ``BENCH_*.json`` artifacts, prints the cross-artifact
trend table, and exits non-zero if any recorded speedup falls below its
CI floor (or the instrumentation-overhead record exceeds its ceiling)
— this is what the ``bench-trend`` CI job runs.
"""

from __future__ import annotations

import argparse
import datetime as _dt
import sys
from typing import Any, Optional, Sequence

from repro.obs import metrics as _metrics
from repro.obs.export import to_json, to_prometheus, trend_table
from repro.obs.stats import StatsCollector
from repro.obs.trace import global_tracer

#: Default relation sizes per scenario (kept small: the CLI is a viewer,
#: not a benchmark).
_DEFAULT_SCALES = {
    "e1": 300,
    "e2": 200,
    "e3": 200,
    "columnar": 2000,
    "partitions": 4096,
    "service": 4096,
    "scoring": 2000,
}


def _build_e1(scale: int) -> tuple[Any, str, str]:
    """E1: the §4 clearinghouse's fund-raising grade as QSQL."""
    from repro.experiments.scenarios import clearinghouse

    world, _, merged, _ = clearinghouse(n_people=scale, seed=23)
    cutoff = (world.today - _dt.timedelta(days=60)).isoformat()
    sql = (
        "SELECT person_id, name, address FROM address_book "
        "WHERE QUALITY(address.source) = 'postal_feed' "
        f"AND QUALITY(address.creation_time) >= DATE '{cutoff}' "
        "ORDER BY person_id LIMIT 25"
    )
    return merged, sql, "E1 clearinghouse: fund-raising quality grade"


def _build_e2(scale: int) -> tuple[Any, str, str]:
    """E2: the scaled customer database's tagged scan."""
    from repro.experiments.scenarios import customer_database

    _, _, relation = customer_database(n_companies=scale, seed=9)
    sql = (
        "SELECT co_name, employees FROM customer "
        "WHERE employees > 1000 AND QUALITY(employees.source) = 'estimate' "
        "ORDER BY employees DESC LIMIT 20"
    )
    return relation, sql, "E2 customer database: tagged scan + top-k"


def _build_e3(scale: int) -> tuple[Any, str, str]:
    """E3: a two-database federation join bridged into tags."""
    from repro.polygen import algebra as polygen_algebra
    from repro.polygen.bridge import polygen_to_tagged
    from repro.polygen.model import PolygenRelation
    from repro.relational.relation import Relation
    from repro.relational.schema import Column, RelationSchema

    people_schema = RelationSchema(
        "people", [Column("k", "INT"), Column("name", "STR")]
    )
    cities_schema = RelationSchema(
        "cities", [Column("rk", "INT"), Column("city", "STR")]
    )
    people = PolygenRelation.from_relation(
        Relation.from_tuples(
            people_schema,
            [(i, f"person_{i}") for i in range(scale)],
        ),
        "db1",
    )
    cities = PolygenRelation.from_relation(
        Relation.from_tuples(
            cities_schema,
            [(i, f"city_{i % 7}") for i in range(0, scale, 2)],
        ),
        "db2",
    )
    joined = polygen_algebra.equi_join(people, cities, [("k", "rk")], "fed")
    fed = polygen_to_tagged(joined)
    sql = (
        "SELECT k, name, city FROM fed "
        "WHERE QUALITY(k.source) = 'db1' "
        "AND QUALITY(k.intermediate_sources) IS NOT NULL "
        "ORDER BY k LIMIT 25"
    )
    return fed, sql, "E3 federation: polygen join provenance as tags"


def _build_columnar(scale: int) -> tuple[Any, str, str]:
    """Columnar access path: a scan-heavy plan over a plain relation."""
    from repro.relational.relation import Relation
    from repro.relational.schema import Column, RelationSchema

    schema = RelationSchema(
        "readings",
        [
            Column("sensor_id", "INT"),
            Column("reading", "FLOAT"),
            Column("station", "STR"),
        ],
    )
    relation = Relation.from_tuples(
        schema,
        [
            (
                i,
                None if i % 13 == 0 else (i * 7919 % 1000) / 10.0,
                f"st_{i % 11}",
            )
            for i in range(scale)
        ],
    )
    sql = (
        "SELECT sensor_id, reading FROM readings "
        "WHERE reading >= 25.0 AND station <> 'st_3' "
        "ORDER BY reading DESC LIMIT 20"
    )
    return relation, sql, "Columnar: vectorized filter + top-k over arrays"


def _build_partitions(scale: int) -> tuple[Any, str, str]:
    """Partition pruning: a selective equality scan over hash buckets."""
    from repro.relational import hash_partitions
    from repro.relational.catalog import Database
    from repro.relational.schema import Column, RelationSchema

    schema = RelationSchema(
        "events",
        [
            Column("event_id", "INT"),
            Column("region", "STR"),
            Column("amount", "FLOAT"),
        ],
    )
    database = Database("partition_demo")
    relation = database.create_relation(
        schema,
        enforce_key=False,
        partition_by=hash_partitions("region", 64),
    )
    for i in range(scale):
        relation.insert(
            {
                "event_id": i,
                "region": f"region_{i % 97}",
                "amount": (i * 7919 % 1000) / 10.0,
            }
        )
    sql = (
        "SELECT event_id, amount FROM events "
        "WHERE region = 'region_7' AND amount >= 25.0 "
        "ORDER BY amount DESC LIMIT 20"
    )
    return (
        database,
        sql,
        "Partitions: statically pruned scan over 64 hash buckets",
    )


def _build_service(scale: int) -> tuple[Any, str, str]:
    """Service: the partitions database read through a pinned snapshot.

    Runs the statement once through an actual
    :class:`~repro.service.core.QueryService` session (so the
    ``service.*`` counters and latency histogram show up in the metric
    report), then returns the pinned :class:`DatabaseSnapshot
    <repro.relational.snapshot.DatabaseSnapshot>` as the scenario
    source — the same frozen view every service query executes against.
    """
    from repro.service.core import QueryService

    database, sql, _ = _build_partitions(scale)
    with QueryService(database, workers=2, name="repro-stats") as service:
        with service.session() as session:
            session.execute(sql)
    return (
        database.snapshot(),
        sql,
        "Service: QSQL through the query service, pinned snapshot reads",
    )


def _build_scoring(scale: int) -> tuple[Any, str, str]:
    """Scoring: a pushed-down QUALITY(parameter) filter over materialized
    score arrays (the §4 credibility grade as one number per row)."""
    from repro.experiments.scenarios import customer_database
    from repro.quality.materialize import (
        ScoringProfile,
        materializer_for,
        register_profile,
    )
    from repro.quality.scoring import credibility_scorer

    _, _, relation = customer_database(n_companies=scale, seed=9)
    profile = ScoringProfile(
        "repro-stats-scoring",
        [credibility_scorer({"acct'g": 0.9, "estimate": 0.3})],
        thresholds={"credibility": 0.5},
        doc="repro-stats demo: credibility from the recording source",
    )
    register_profile(profile, relations=[relation.schema.name])
    materializer_for(relation).refresh()
    sql = (
        "SELECT co_name, employees FROM customer "
        "WHERE QUALITY(credibility) > 0.5 "
        "ORDER BY employees DESC LIMIT 20"
    )
    return (
        relation,
        sql,
        "Scoring: pushed-down parameter-score filter (materialized)",
    )


_SCENARIOS = {
    "e1": _build_e1,
    "e2": _build_e2,
    "e3": _build_e3,
    "columnar": _build_columnar,
    "partitions": _build_partitions,
    "service": _build_service,
    "scoring": _build_scoring,
}


def _render_registry(fmt: str) -> str:
    registry = _metrics.global_registry()
    if fmt == "json":
        return to_json(registry)
    if fmt == "prometheus":
        return to_prometheus(registry)
    lines = ["metrics:"]
    for name, snap in registry.snapshot().items():
        if snap["kind"] == "histogram":
            count = snap["count"]
            mean = (snap["sum"] / count) if count else 0.0
            lines.append(
                f"  {name} (histogram): n={count}, mean={mean:.6f}"
            )
        else:
            lines.append(f"  {name} ({snap['kind']}): {snap['value']}")
    return "\n".join(lines)


def run_scenario(scenario: str, scale: Optional[int], fmt: str) -> str:
    """Build + execute one scenario; returns the printed report."""
    from repro.sql import clear_plan_cache, execute

    build = _SCENARIOS[scenario]
    registry = _metrics.global_registry()
    registry.reset()
    tracer = global_tracer()
    tracer.clear()
    clear_plan_cache()
    with _metrics.instrumented():
        # Built inside the instrumented block so construction-time
        # engine work (e.g. E3's polygen federation join) is counted.
        source, sql, title = build(scale or _DEFAULT_SCALES[scenario])
        sections = [f"== {title} ==", "", sql, ""]
        annotated = execute(f"EXPLAIN ANALYZE {sql}", source)
        sections.append("EXPLAIN ANALYZE:")
        sections.extend(f"  {row['plan']}" for row in annotated)
        # A cold + warm pair, so the cache counters show both outcomes
        # and the collector reports the cached fast path.
        collector = StatsCollector()
        execute(sql, source, stats=collector)
        execute(sql, source, stats=collector)
        sections.append("")
        sections.append(
            f"warm execution: rows={collector.rows}, "
            f"time={collector.seconds * 1e3:.3f} ms, "
            f"cache_hit={collector.cache_hit}"
        )
    sections.append("")
    sections.append(_render_registry(fmt))
    span_lines = tracer.render_lines()
    if span_lines:
        sections.append("")
        sections.append("trace (cold statement):")
        sections.extend(f"  {line}" for line in span_lines)
    return "\n".join(sections)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-stats",
        description=(
            "Run a scenario with instrumentation enabled and print the "
            "annotated plan + metrics, or check BENCH_*.json trends."
        ),
    )
    parser.add_argument(
        "--scenario",
        choices=sorted(_SCENARIOS),
        default="e2",
        help="which experiment setting to run (default: e2)",
    )
    parser.add_argument(
        "--scale",
        type=int,
        default=None,
        help="relation size override (rows/entities in the scenario)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "prometheus"),
        default="text",
        help="metric registry output format (default: text)",
    )
    parser.add_argument(
        "--trend",
        nargs="+",
        metavar="BENCH_JSON",
        help=(
            "print the trend table for these BENCH_*.json artifacts and "
            "exit 1 if any speedup floor / overhead ceiling is violated"
        ),
    )
    args = parser.parse_args(argv)

    if args.trend:
        table, violations = trend_table(args.trend)
        print(table)
        if violations:
            print()
            for violation in violations:
                print(f"FAIL: {violation}", file=sys.stderr)
            return 1
        return 0

    report = run_scenario(args.scenario, args.scale, args.format)
    try:
        print(report)
    except BrokenPipeError:  # e.g. piped into `head`
        sys.stderr.close()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
