"""Per-execution operator statistics: the ``EXPLAIN ANALYZE`` tree.

A compiled physical plan (:mod:`repro.sql.physical`) carries a static
*skeleton* — ``(label, child op-ids)`` per operator, preorder-numbered
— shared by every execution of that (possibly cached) plan.  Each
instrumented execution creates a fresh :class:`ExecutionStats` from the
skeleton and the operators record into it: rows out and inclusive wall
time per operator, plus operator-specific extras (hash-join build/probe
counts).  The direct interpreter (``execute(..., planner=False)``)
builds the same structure from its linear clause pipeline via
:meth:`ExecutionStats.from_stages`.

:class:`StatsCollector` is the ``execute(..., stats=...)`` hook: pass
one in, and after the call it holds the execution tree plus call-level
facts (total seconds, row count, plan-cache hit or miss).
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

__all__ = ["ExecutionStats", "OperatorStats", "StatsCollector"]

#: One skeleton entry: (operator label, child op-ids).  Op-ids are the
#: entry's index in the skeleton tuple; the root is op-id 0.
Skeleton = Sequence[tuple[str, tuple[int, ...]]]

#: Operator labels whose output/input row ratio reads as a selectivity.
_FILTER_PREFIXES = ("Filter", "QualityFilter")


class OperatorStats:
    """Measured facts about one operator in one execution."""

    __slots__ = ("op_id", "label", "children", "rows_out", "seconds",
                 "extras", "executed")

    def __init__(
        self, op_id: int, label: str, children: tuple[int, ...]
    ) -> None:
        self.op_id = op_id
        self.label = label
        self.children = children
        self.rows_out = 0
        self.seconds = 0.0
        self.extras: dict[str, Any] = {}
        self.executed = False

    def __repr__(self) -> str:
        status = (
            f"rows={self.rows_out}, {self.seconds * 1e3:.3f} ms"
            if self.executed
            else "not executed"
        )
        return f"OperatorStats({self.op_id}: {self.label}, {status})"


class ExecutionStats:
    """The operator tree of one execution, ready for annotation."""

    __slots__ = ("nodes",)

    def __init__(self, nodes: list[OperatorStats]) -> None:
        self.nodes = nodes

    @classmethod
    def from_skeleton(cls, skeleton: Skeleton) -> "ExecutionStats":
        """A fresh, unexecuted stats tree for one compiled plan."""
        return cls(
            [
                OperatorStats(op_id, label, tuple(children))
                for op_id, (label, children) in enumerate(skeleton)
            ]
        )

    @classmethod
    def from_stages(
        cls, stages: Sequence[tuple[str, int, float]]
    ) -> "ExecutionStats":
        """A linear chain from interpreter stages in *pipeline* order.

        ``stages`` lists ``(label, rows_out, seconds)`` from source scan
        to final clause; the returned tree is rooted at the last stage
        (matching plan orientation: the root produces the result).
        """
        if not stages:
            return cls([])
        n = len(stages)
        skeleton = tuple(
            (stages[n - 1 - j][0], (j + 1,) if j + 1 < n else ())
            for j in range(n)
        )
        stats = cls.from_skeleton(skeleton)
        for j in range(n):
            _, rows_out, seconds = stages[n - 1 - j]
            stats.record(j, rows_out, seconds)
        return stats

    # -- recording (called by the executors) --------------------------------

    def record(self, op_id: int, rows_out: int, seconds: float) -> None:
        """Record one operator's output size and inclusive wall time."""
        node = self.nodes[op_id]
        node.rows_out = rows_out
        node.seconds = seconds
        node.executed = True

    def annotate(self, op_id: int, **extras: Any) -> None:
        """Attach operator-specific extras (e.g. join build/probe rows)."""
        self.nodes[op_id].extras.update(extras)

    # -- reading -------------------------------------------------------------

    @property
    def root(self) -> Optional[OperatorStats]:
        return self.nodes[0] if self.nodes else None

    @property
    def total_seconds(self) -> float:
        """Inclusive wall time of the root operator."""
        root = self.root
        return root.seconds if root is not None else 0.0

    @property
    def rows(self) -> int:
        """Rows produced by the root operator."""
        root = self.root
        return root.rows_out if root is not None else 0

    def operator(self, label_prefix: str) -> Optional[OperatorStats]:
        """The first operator (preorder) whose label starts with the
        prefix, or None."""
        for node in self.nodes:
            if node.label.startswith(label_prefix):
                return node
        return None

    def selectivity(self, node: OperatorStats) -> Optional[float]:
        """Output/input row ratio for filter-shaped operators."""
        if not node.label.startswith(_FILTER_PREFIXES):
            return None
        if len(node.children) != 1 or not node.executed:
            return None
        child = self.nodes[node.children[0]]
        if not child.executed or child.rows_out <= 0:
            return None
        return node.rows_out / child.rows_out

    def render_lines(self) -> list[str]:
        """The annotated plan tree: ``EXPLAIN ANALYZE``'s output lines."""
        lines: list[str] = []

        def annotation(node: OperatorStats) -> str:
            if not node.executed:
                return "(never executed)"
            parts = [
                f"rows={node.rows_out}",
                f"time={node.seconds * 1e3:.3f} ms",
            ]
            ratio = self.selectivity(node)
            if ratio is not None:
                parts.append(f"selectivity={ratio * 100:.1f}%")
            for key, value in sorted(node.extras.items()):
                parts.append(f"{key}={value}")
            return f"({', '.join(parts)})"

        def walk(op_id: int, prefix: str, is_last: bool, is_root: bool) -> None:
            node = self.nodes[op_id]
            text = f"{node.label}  {annotation(node)}"
            if is_root:
                lines.append(text)
                child_prefix = ""
            else:
                connector = "└─ " if is_last else "├─ "
                lines.append(f"{prefix}{connector}{text}")
                child_prefix = prefix + ("   " if is_last else "│  ")
            for index, child in enumerate(node.children):
                walk(child, child_prefix, index == len(node.children) - 1, False)

        if self.nodes:
            walk(0, "", True, True)
        return lines

    def snapshot(self) -> list[dict[str, Any]]:
        """The tree as plain dicts (JSON-ready), preorder."""
        out = []
        for node in self.nodes:
            entry: dict[str, Any] = {
                "op_id": node.op_id,
                "label": node.label,
                "children": list(node.children),
                "executed": node.executed,
            }
            if node.executed:
                entry["rows_out"] = node.rows_out
                entry["seconds"] = node.seconds
                ratio = self.selectivity(node)
                if ratio is not None:
                    entry["selectivity"] = ratio
            if node.extras:
                entry["extras"] = dict(node.extras)
            out.append(entry)
        return out

    def __repr__(self) -> str:
        return (
            f"ExecutionStats({len(self.nodes)} operators, "
            f"{self.total_seconds * 1e3:.3f} ms)"
        )


class StatsCollector:
    """The ``execute(..., stats=...)`` hook: call-level execution facts.

    After the ``execute`` call returns, the collector holds:

    - ``execution`` — the per-operator :class:`ExecutionStats` tree;
    - ``seconds`` — total wall time of the execution step;
    - ``rows`` — result row count;
    - ``planned`` — whether the planner path ran (vs the interpreter);
    - ``cache_hit`` — whether a cached compiled plan was reused
      (always False on the interpreter path);
    - ``sql`` — the statement text.

    A collector is reusable: each ``execute`` call overwrites it.
    """

    __slots__ = ("sql", "execution", "seconds", "rows", "planned",
                 "cache_hit", "filled")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.sql: Optional[str] = None
        self.execution: Optional[ExecutionStats] = None
        self.seconds = 0.0
        self.rows = 0
        self.planned = False
        self.cache_hit = False
        self.filled = False

    def _fill(
        self,
        sql: str,
        execution: Optional[ExecutionStats],
        seconds: float,
        rows: int,
        planned: bool,
        cache_hit: bool,
    ) -> None:
        self.sql = sql
        self.execution = execution
        self.seconds = seconds
        self.rows = rows
        self.planned = planned
        self.cache_hit = cache_hit
        self.filled = True

    def render(self) -> str:
        """A human-readable report: header plus the annotated tree."""
        if not self.filled:
            return "StatsCollector: no execution recorded"
        path = "planner" if self.planned else "interpreter"
        cache = ""
        if self.planned:
            cache = " (plan-cache hit)" if self.cache_hit else " (cold plan)"
        lines = [
            f"{self.sql}",
            f"path: {path}{cache}; rows: {self.rows}; "
            f"time: {self.seconds * 1e3:.3f} ms",
        ]
        if self.execution is not None:
            lines.extend(self.execution.render_lines())
        return "\n".join(lines)

    def __repr__(self) -> str:
        if not self.filled:
            return "StatsCollector(unfilled)"
        return (
            f"StatsCollector(rows={self.rows}, "
            f"seconds={self.seconds:.6f}, planned={self.planned}, "
            f"cache_hit={self.cache_hit})"
        )
