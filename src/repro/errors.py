"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch one base class.  Subsystems define narrower
subclasses here (rather than in their own modules) so that error types
can be shared across layers without import cycles.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


# ---------------------------------------------------------------------------
# Relational engine errors
# ---------------------------------------------------------------------------


class RelationalError(ReproError):
    """Base class for errors raised by :mod:`repro.relational`."""


class SchemaError(RelationalError):
    """A relation schema is malformed or used inconsistently."""


class DomainError(RelationalError):
    """A value does not belong to the domain of its column."""


class ConstraintViolation(RelationalError):
    """An integrity constraint rejected a modification."""

    def __init__(self, constraint_name: str, message: str) -> None:
        super().__init__(f"{constraint_name}: {message}")
        self.constraint_name = constraint_name


class UnknownRelationError(RelationalError):
    """A named relation does not exist in the catalog."""


class UnknownColumnError(RelationalError):
    """A referenced column does not exist in the schema."""


class TransactionError(RelationalError):
    """A transaction was used incorrectly (e.g. commit after abort)."""


class QueryError(RelationalError):
    """A query expression is malformed."""


class SnapshotWriteError(RelationalError):
    """A mutation was attempted on a frozen snapshot relation.

    Snapshot relations (:meth:`repro.relational.relation.Relation.read_snapshot`,
    :meth:`repro.relational.catalog.Database.snapshot`) are shared by
    every concurrent reader pinned to the same version; writing to one
    would silently corrupt other sessions' reads.  Write to the live
    relation instead — readers pick the change up on their next pin.
    """


# ---------------------------------------------------------------------------
# Query service errors
# ---------------------------------------------------------------------------


class ServiceError(ReproError):
    """Base class for errors raised by :mod:`repro.service`."""


class ServiceOverloadedError(ServiceError):
    """Admission control rejected a query: the pending queue is full.

    The service sheds load instead of queueing unboundedly; callers
    should back off and retry.  The HTTP front end maps this to a
    ``503`` response with ``{"error": "overloaded"}``.
    """


class ServiceClosedError(ServiceError):
    """A query was submitted to a service (or session) already closed."""


# ---------------------------------------------------------------------------
# ER modeling errors
# ---------------------------------------------------------------------------


class ERModelError(ReproError):
    """Base class for errors raised by :mod:`repro.er`."""


class ERValidationError(ERModelError):
    """An ER schema failed well-formedness validation."""


# ---------------------------------------------------------------------------
# Tagging (attribute-based model) errors
# ---------------------------------------------------------------------------


class TaggingError(ReproError):
    """Base class for errors raised by :mod:`repro.tagging`."""


class UnknownIndicatorError(TaggingError):
    """A referenced quality indicator is not defined for the column."""


class TagSchemaError(TaggingError):
    """A tag schema is malformed or inconsistent with its relation."""


# ---------------------------------------------------------------------------
# Polygen errors
# ---------------------------------------------------------------------------


class PolygenError(ReproError):
    """Base class for errors raised by :mod:`repro.polygen`."""


class FederationError(PolygenError):
    """A federation-level operation referenced an unknown database."""


class InjectedFaultError(PolygenError):
    """A simulated acquisition failure raised by a fault injector."""


class RetryExhaustedError(PolygenError):
    """A retried call ran out of attempts or wall-time budget.

    ``attempts`` counts the tries actually made; ``last_error`` is the
    final underlying failure (also chained as ``__cause__``).
    """

    def __init__(
        self,
        message: str,
        attempts: int = 0,
        last_error: BaseException | None = None,
    ) -> None:
        super().__init__(message)
        self.attempts = attempts
        self.last_error = last_error


class SourceUnavailableError(FederationError):
    """One federated source failed to answer (retries exhausted).

    ``source`` names the failed participant; ``attempts`` counts the
    tries made before giving up.
    """

    def __init__(
        self, message: str, source: str = "", attempts: int = 0
    ) -> None:
        super().__init__(message)
        self.source = source
        self.attempts = attempts


class CircuitOpenError(SourceUnavailableError):
    """A source's circuit breaker rejected the call without trying it.

    ``retry_after`` is the remaining recovery window, in seconds.
    """

    def __init__(
        self, message: str, source: str = "", retry_after: float = 0.0
    ) -> None:
        super().__init__(message, source=source, attempts=0)
        self.retry_after = retry_after


class FederationUnavailableError(FederationError):
    """Strict-mode federation query with one or more failed sources.

    ``failures`` maps each failed source name to a human-readable
    reason (the per-source report's error text).
    """

    def __init__(self, message: str, failures: dict[str, str]) -> None:
        super().__init__(message)
        self.failures = dict(failures)

    @property
    def failed_sources(self) -> tuple[str, ...]:
        return tuple(sorted(self.failures))


# ---------------------------------------------------------------------------
# Methodology (core) errors
# ---------------------------------------------------------------------------


class MethodologyError(ReproError):
    """Base class for errors raised by :mod:`repro.core`."""


class StepOrderError(MethodologyError):
    """A methodology step was run before its input step produced output."""


class ViewIntegrationError(MethodologyError):
    """Quality views could not be consolidated into one schema."""


class CatalogError(MethodologyError):
    """A candidate quality attribute lookup failed."""


# ---------------------------------------------------------------------------
# Quality measurement / administration errors
# ---------------------------------------------------------------------------


class QualityError(ReproError):
    """Base class for errors raised by :mod:`repro.quality`."""


class AssessmentError(QualityError):
    """A quality assessment could not be computed."""


class InspectionError(QualityError):
    """An inspection procedure failed or was misconfigured."""


class AuditError(QualityError):
    """The audit trail was queried or written incorrectly."""


# ---------------------------------------------------------------------------
# Record linkage errors
# ---------------------------------------------------------------------------


class LinkageError(ReproError):
    """Base class for errors raised by :mod:`repro.linkage`."""


# ---------------------------------------------------------------------------
# Manufacturing simulation errors
# ---------------------------------------------------------------------------


class ManufacturingError(ReproError):
    """Base class for errors raised by :mod:`repro.manufacturing`."""
