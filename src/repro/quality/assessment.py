"""Quality assessment: aggregating dimension metrics into profiles.

An assessment walks a tagged relation and computes, per column, the
dimensions that are computable from its tags and values: completeness
(from NULLs), currency/timeliness (from ``creation_time`` or ``age``
tags), tag coverage (how well the quality requirements are being met),
and — when a ground truth is supplied — accuracy.  The output feeds the
administrator's reports and the Premise 1.3 heterogeneity analyses.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Sequence

from repro.quality.dimensions import (
    accuracy_against,
    age_in_days,
    completeness,
    currency_score,
)
from repro.tagging.relation import TaggedRelation


@dataclass
class ColumnAssessment:
    """Computed quality dimensions for one column."""

    column: str
    completeness: float
    tag_coverage: dict[str, float] = field(default_factory=dict)
    mean_age_days: Optional[float] = None
    mean_currency: Optional[float] = None
    accuracy: Optional[float] = None

    def summary(self) -> str:
        parts = [f"completeness={self.completeness:.3f}"]
        if self.mean_age_days is not None:
            parts.append(f"mean_age={self.mean_age_days:.1f}d")
        if self.mean_currency is not None:
            parts.append(f"currency={self.mean_currency:.3f}")
        if self.accuracy is not None:
            parts.append(f"accuracy={self.accuracy:.3f}")
        for indicator, coverage in sorted(self.tag_coverage.items()):
            parts.append(f"tagged[{indicator}]={coverage:.2f}")
        return f"{self.column}: " + ", ".join(parts)


@dataclass
class QualityAssessment:
    """A full assessment of one tagged relation."""

    relation_name: str
    row_count: int
    columns: dict[str, ColumnAssessment]

    def column(self, name: str) -> ColumnAssessment:
        return self.columns[name]

    def overall_completeness(self) -> float:
        if not self.columns:
            return 1.0
        return sum(c.completeness for c in self.columns.values()) / len(self.columns)

    def render(self) -> str:
        lines = [
            f"Quality assessment: {self.relation_name} ({self.row_count} rows)"
        ]
        for name in sorted(self.columns):
            lines.append("  " + self.columns[name].summary())
        return "\n".join(lines)


def _mean(values: list[float]) -> Optional[float]:
    return sum(values) / len(values) if values else None


def assess(
    relation: TaggedRelation,
    today: Optional[_dt.date | _dt.datetime] = None,
    shelf_life_days: float = 365.0,
    truth: Optional[Mapping[Any, Mapping[str, Any]]] = None,
    key_column: Optional[str] = None,
    tolerance: float = 0.0,
) -> QualityAssessment:
    """Assess a tagged relation's quality, column by column.

    Parameters
    ----------
    today:
        Reference date for age/currency (required for those metrics to
        be computed; without it they are left None).
    shelf_life_days:
        Volatility model for currency scoring.
    truth, key_column, tolerance:
        Optional ground truth for accuracy scoring (see
        :func:`repro.quality.dimensions.accuracy_against`).
    """
    accuracy: dict[str, float] = {}
    if truth is not None and key_column is not None:
        accuracy = accuracy_against(
            relation, truth, key_column, tolerance=tolerance
        )

    columns: dict[str, ColumnAssessment] = {}
    for name in relation.schema.column_names:
        coverage: dict[str, float] = {}
        for indicator in relation.tag_schema.allowed_for(name):
            coverage[indicator] = relation.tag_coverage(name, indicator)

        ages: list[float] = []
        currencies: list[float] = []
        if today is not None:
            for row in relation:
                cell = row[name]
                created = cell.tag_value("creation_time")
                if created is not None:
                    ages.append(age_in_days(created, today))
                    currencies.append(
                        currency_score(created, today, shelf_life_days)
                    )
                elif cell.has_tag("age"):
                    age = cell.tag_value("age")
                    ages.append(float(age))
                    currencies.append(max(0.0, 1.0 - age / shelf_life_days))

        columns[name] = ColumnAssessment(
            column=name,
            completeness=completeness(relation, [name]),
            tag_coverage=coverage,
            mean_age_days=_mean(ages),
            mean_currency=_mean(currencies),
            accuracy=accuracy.get(name),
        )
    return QualityAssessment(
        relation_name=relation.schema.name,
        row_count=len(relation),
        columns=columns,
    )


def assess_many(
    relations: Mapping[str, TaggedRelation],
    **kwargs: Any,
) -> dict[str, QualityAssessment]:
    """Assess several relations (e.g. a whole database) uniformly."""
    return {name: assess(rel, **kwargs) for name, rel in relations.items()}
