"""Statistical process control over data-quality defect streams.

§4 names "statistical process control" among the administrator's
specifications.  Data manufacturing is monitored like product
manufacturing (Shewhart [20]): samples of records are inspected, defect
fractions are plotted on a p-chart, and points beyond the control
limits (or long runs on one side of the center line) signal that the
data production process — e.g. one collection device — has gone out of
control.

Implemented: p-charts (attribute control) and X̄/R charts (variables
control), with Western Electric rules 1 (beyond 3σ) and 4 (runs of
eight on one side).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.errors import QualityError


@dataclass(frozen=True)
class ControlPoint:
    """One plotted sample on a control chart."""

    index: int
    statistic: float
    center: float
    lower: float
    upper: float
    out_of_control: bool
    rule: str = ""


@dataclass
class ControlChart:
    """A computed control chart."""

    kind: str
    center: float
    points: list[ControlPoint]

    @property
    def signals(self) -> list[ControlPoint]:
        """Points flagged out of control."""
        return [p for p in self.points if p.out_of_control]

    def first_signal_index(self) -> Optional[int]:
        """Sample index of the first out-of-control signal (None if none)."""
        for point in self.points:
            if point.out_of_control:
                return point.index
        return None

    def render(self, width: int = 40) -> str:
        """A simple text rendering of the chart."""
        if not self.points:
            return f"{self.kind}-chart (no points)"
        low = min(p.lower for p in self.points)
        high = max(p.upper for p in self.points)
        span = (high - low) or 1.0
        lines = [f"{self.kind}-chart  center={self.center:.4f}"]
        for p in self.points:
            position = int((p.statistic - low) / span * (width - 1))
            position = min(max(position, 0), width - 1)
            bar = [" "] * width
            bar[position] = "*"
            flag = f"  <-- OUT ({p.rule})" if p.out_of_control else ""
            lines.append(
                f"{p.index:>4} |{''.join(bar)}| {p.statistic:.4f}{flag}"
            )
        return "\n".join(lines)


def _apply_run_rule(points: list[ControlPoint], run_length: int = 8) -> None:
    """Western Electric rule 4: ``run_length`` consecutive points on one
    side of the center line signal a shift even inside the limits."""
    side_run = 0
    last_side = 0
    for i, point in enumerate(points):
        side = 0
        if point.statistic > point.center:
            side = 1
        elif point.statistic < point.center:
            side = -1
        if side != 0 and side == last_side:
            side_run += 1
        else:
            side_run = 1 if side != 0 else 0
        last_side = side
        if side_run >= run_length and not point.out_of_control:
            points[i] = ControlPoint(
                point.index,
                point.statistic,
                point.center,
                point.lower,
                point.upper,
                True,
                rule=f"run of {run_length} on one side",
            )


def p_chart(
    defect_counts: Sequence[int],
    sample_sizes: Sequence[int],
    baseline_samples: Optional[int] = None,
    run_rule: bool = True,
) -> ControlChart:
    """Attribute control chart for defect fractions.

    Parameters
    ----------
    defect_counts / sample_sizes:
        Per-sample defective counts and sizes.
    baseline_samples:
        Number of initial samples used to estimate the center line
        (default: all samples).  Use a clean baseline when hunting for a
        later process shift.
    run_rule:
        Also apply the run-of-eight rule.
    """
    if len(defect_counts) != len(sample_sizes) or not defect_counts:
        raise QualityError("p_chart needs matching, non-empty count/size lists")
    for count, size in zip(defect_counts, sample_sizes):
        if size <= 0:
            raise QualityError("sample sizes must be positive")
        if not 0 <= count <= size:
            raise QualityError(f"defect count {count} outside [0, {size}]")
    baseline = baseline_samples or len(defect_counts)
    baseline = min(baseline, len(defect_counts))
    total_defects = sum(defect_counts[:baseline])
    total_inspected = sum(sample_sizes[:baseline])
    p_bar = total_defects / total_inspected

    points: list[ControlPoint] = []
    for i, (count, size) in enumerate(zip(defect_counts, sample_sizes)):
        fraction = count / size
        sigma = math.sqrt(max(p_bar * (1 - p_bar), 0.0) / size)
        lower = max(0.0, p_bar - 3 * sigma)
        upper = min(1.0, p_bar + 3 * sigma)
        out = fraction > upper or fraction < lower
        points.append(
            ControlPoint(
                i, fraction, p_bar, lower, upper, out,
                rule="beyond 3 sigma" if out else "",
            )
        )
    if run_rule:
        _apply_run_rule(points)
    return ControlChart("p", p_bar, points)


#: Control-chart constants for X̄/R charts, indexed by subgroup size n.
_A2 = {2: 1.880, 3: 1.023, 4: 0.729, 5: 0.577, 6: 0.483, 7: 0.419, 8: 0.373}
_D3 = {2: 0.0, 3: 0.0, 4: 0.0, 5: 0.0, 6: 0.0, 7: 0.076, 8: 0.136}
_D4 = {2: 3.267, 3: 2.574, 4: 2.282, 5: 2.114, 6: 2.004, 7: 1.924, 8: 1.864}


def xbar_r_charts(
    subgroups: Sequence[Sequence[float]],
    baseline_samples: Optional[int] = None,
    run_rule: bool = True,
) -> tuple[ControlChart, ControlChart]:
    """Variables control: X̄ chart and R chart over fixed-size subgroups.

    All subgroups must share one size n ∈ [2, 8] (the classical constant
    table).  Returns ``(xbar_chart, r_chart)``.
    """
    if not subgroups:
        raise QualityError("xbar_r_charts needs at least one subgroup")
    n = len(subgroups[0])
    if n not in _A2:
        raise QualityError(f"subgroup size must be in {sorted(_A2)}, got {n}")
    if any(len(group) != n for group in subgroups):
        raise QualityError("all subgroups must have the same size")

    means = [sum(g) / n for g in subgroups]
    ranges = [max(g) - min(g) for g in subgroups]
    baseline = baseline_samples or len(subgroups)
    baseline = min(baseline, len(subgroups))
    x_bar_bar = sum(means[:baseline]) / baseline
    r_bar = sum(ranges[:baseline]) / baseline

    x_lower = x_bar_bar - _A2[n] * r_bar
    x_upper = x_bar_bar + _A2[n] * r_bar
    r_lower = _D3[n] * r_bar
    r_upper = _D4[n] * r_bar

    x_points = [
        ControlPoint(
            i, m, x_bar_bar, x_lower, x_upper,
            m > x_upper or m < x_lower,
            rule="beyond control limits" if (m > x_upper or m < x_lower) else "",
        )
        for i, m in enumerate(means)
    ]
    r_points = [
        ControlPoint(
            i, r, r_bar, r_lower, r_upper,
            r > r_upper or r < r_lower,
            rule="beyond control limits" if (r > r_upper or r < r_lower) else "",
        )
        for i, r in enumerate(ranges)
    ]
    if run_rule:
        _apply_run_rule(x_points)
        _apply_run_rule(r_points)
    return ControlChart("xbar", x_bar_bar, x_points), ControlChart("R", r_bar, r_points)
