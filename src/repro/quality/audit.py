"""The "electronic trail": auditing the data manufacturing process.

§4: "In handling an exceptional situation, such as tracking an erred
transaction, the administrator may want to track aspects of the data
manufacturing process, such as the time of entry or intermediate
processing steps.  Much like the 'paper trail' currently used in
auditing procedures, an 'electronic trail' may facilitate the auditing
process."

:class:`ElectronicTrail` merges two event streams: the database's
committed transaction journal (:mod:`repro.relational.transactions`)
and manufacturing-pipeline events recorded by
:mod:`repro.manufacturing.pipeline`, and answers the administrator's
trace queries over them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Optional, Sequence

from repro.errors import AuditError
from repro.relational.catalog import Database
from repro.relational.transactions import JournalEntry


@dataclass(frozen=True)
class TrailEvent:
    """One event on the electronic trail.

    ``step`` is a manufacturing/processing step label ("collected",
    "entered", "transformed", "inserted", ...); ``subject`` identifies
    the datum (usually ``relation`` plus a key), ``detail`` carries
    step-specific payload.
    """

    sequence: int
    step: str
    relation: str
    subject: tuple[Any, ...]
    actor: str = ""
    detail: dict[str, Any] = field(default_factory=dict)

    def summary(self) -> str:
        actor = f" by {self.actor}" if self.actor else ""
        return (
            f"#{self.sequence} [{self.step}] {self.relation}{list(self.subject)}"
            f"{actor}"
        )


class ElectronicTrail:
    """An append-only audit trail over the data manufacturing process."""

    def __init__(self) -> None:
        self._events: list[TrailEvent] = []

    # -- recording ------------------------------------------------------------

    def record(
        self,
        step: str,
        relation: str,
        subject: Sequence[Any],
        actor: str = "",
        **detail: Any,
    ) -> TrailEvent:
        """Append one event; returns it with its assigned sequence number."""
        if not step:
            raise AuditError("trail event must name its step")
        event = TrailEvent(
            sequence=len(self._events) + 1,
            step=step,
            relation=relation,
            subject=tuple(subject),
            actor=actor,
            detail=dict(detail),
        )
        self._events.append(event)
        return event

    def ingest_journal(
        self,
        database: Database,
        key_columns: dict[str, Sequence[str]],
    ) -> int:
        """Import the database's committed journal as trail events.

        ``key_columns`` maps relation name → columns identifying a row
        (used as the event subject).  Returns the number of events
        imported.  Journal entries for relations not in ``key_columns``
        are imported with an empty subject.
        """
        count = 0
        for entry in database.transactions.journal:
            keys = key_columns.get(entry.relation, ())
            payload = entry.after or entry.before or {}
            subject = tuple(payload.get(k) for k in keys)
            self.record(
                entry.operation,
                entry.relation,
                subject,
                actor=entry.actor,
                transaction_id=entry.transaction_id,
                before=entry.before,
                after=entry.after,
                note=entry.note,
            )
            count += 1
        return count

    # -- queries --------------------------------------------------------------------

    @property
    def events(self) -> tuple[TrailEvent, ...]:
        return tuple(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def history_of(
        self, relation: str, subject: Sequence[Any]
    ) -> list[TrailEvent]:
        """All events about one datum, in order — its manufacturing history."""
        target = tuple(subject)
        return [
            e
            for e in self._events
            if e.relation == relation and e.subject == target
        ]

    def by_step(self, step: str) -> list[TrailEvent]:
        """All events of one step type."""
        return [e for e in self._events if e.step == step]

    def by_actor(self, actor: str) -> list[TrailEvent]:
        """All events by one actor."""
        return [e for e in self._events if e.actor == actor]

    def find(
        self, predicate: Callable[[TrailEvent], bool]
    ) -> list[TrailEvent]:
        """All events satisfying an arbitrary predicate."""
        return [e for e in self._events if predicate(e)]

    def trace_erred_transaction(
        self,
        relation: str,
        subject: Sequence[Any],
    ) -> dict[str, Any]:
        """The administrator's exception workflow: full trace of one datum.

        Returns the datum's event history, the actors involved, and the
        intermediate processing steps — the "electronic trail" §4 asks
        for.  Raises :class:`AuditError` when there is no trace at all
        (an unaccounted-for datum is itself an audit finding).
        """
        history = self.history_of(relation, subject)
        if not history:
            raise AuditError(
                f"no trail events for {relation}{list(tuple(subject))}: "
                f"datum has no recorded manufacturing history"
            )
        return {
            "relation": relation,
            "subject": tuple(subject),
            "events": history,
            "steps": [e.step for e in history],
            "actors": sorted({e.actor for e in history if e.actor}),
            "first": history[0],
            "last": history[-1],
        }

    def render(self, max_events: Optional[int] = None) -> str:
        """The trail as numbered text lines."""
        shown = self._events if max_events is None else self._events[-max_events:]
        lines = [f"Electronic trail ({len(self._events)} events)"]
        lines.extend("  " + e.summary() for e in shown)
        return "\n".join(lines)
