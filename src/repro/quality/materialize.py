"""Materialized, incrementally maintained parameter scores.

ROADMAP item 4 (the paper's Step 2/3 at scale): registered
:class:`~repro.quality.scoring.ParameterScorer` functions map objective
*indicators* to subjective *parameters* (timeliness, credibility), and
the acceptable score is context-relative — the §4 mass-mailing vs
fund-raising example.  This module makes those scores first-class
storage:

- a :class:`ScoringProfile` names one application view: its parameter
  scorers, the scoring context (e.g. ``today``), and per-parameter
  acceptability thresholds;
- a module-level registry binds profiles to relations *by schema name*,
  so frozen :meth:`~repro.tagging.relation.TaggedRelation.read_snapshot`
  copies (same schema object, different relation object) resolve to the
  same profile — service snapshots read frozen score columns for free;
- a :class:`ScoreMaterializer` keeps **version-gated score arrays**
  beside the relation's :class:`~repro.tagging.columnar.ColumnarTagStore`:
  one aligned ``parameter → [score | None]`` array per partition shard
  (or one flat block when unpartitioned), recomputed **only when that
  shard's mutation counter moved** — the incremental-maintenance
  contract the BENCH_SCORING floor enforces.

The QSQL surface (``WHERE QUALITY(credibility) > 0.8``) routes here:
the optimizer's ``push_score_predicates`` rewrite compiles such
conjuncts into a ``ScoreFilter`` plan node whose physical operator
calls :meth:`ScoreMaterializer.filter_indices`.

Observability (under :func:`repro.obs.metrics.enabled`): the
``scores.recomputed`` / ``scores.reused`` counters count row-scores per
refresh, and the ``scores.staleness`` gauge reports the fraction of
score blocks found stale on the most recent refresh.
"""

from __future__ import annotations

import threading
import weakref
from typing import Any, Iterable, Mapping, Optional, Sequence

from repro.errors import AssessmentError
from repro.obs import metrics as _obs_metrics
from repro.quality.scoring import ParameterScorer
from repro.tagging.query import OPERATORS
from repro.tagging.relation import TaggedRelation

__all__ = [
    "ScoreMaterializer",
    "ScoringProfile",
    "bind_profile",
    "clear_profiles",
    "materializer_for",
    "parameter_defined",
    "profile_for",
    "register_profile",
    "registered_profiles",
    "registry_version",
]

#: Bucket key of the flat (unpartitioned / canonical-order) score block.
_FLAT = -1


class ScoringProfile:
    """One application view's parameter scorers and thresholds.

    Parameters
    ----------
    name:
        The view's name (e.g. ``"fund_raising"``).
    scorers:
        The :class:`ParameterScorer` objects defining this view's
        parameters; parameter names must be unique.
    context:
        The scoring context passed to every scorer (e.g. ``today`` for
        timeliness decay).
    thresholds:
        Optional per-parameter acceptability thresholds in [0, 1] —
        the context-dependent cut the application considers "good
        enough" (documentation + tooling; queries state their own).
    doc:
        Human-readable description of the view.
    """

    def __init__(
        self,
        name: str,
        scorers: Sequence[ParameterScorer],
        *,
        context: Optional[Mapping[str, Any]] = None,
        thresholds: Optional[Mapping[str, float]] = None,
        doc: str = "",
    ) -> None:
        if not name:
            raise AssessmentError("scoring profile must be named")
        if not scorers:
            raise AssessmentError(
                f"scoring profile {name!r} requires at least one scorer"
            )
        parameters = [scorer.parameter for scorer in scorers]
        if len(set(parameters)) != len(parameters):
            raise AssessmentError(
                f"scoring profile {name!r} has duplicate parameters: "
                f"{parameters}"
            )
        self.name = name
        self.scorers: dict[str, ParameterScorer] = {
            scorer.parameter: scorer for scorer in scorers
        }
        self.context = dict(context or {})
        self.thresholds = dict(thresholds or {})
        unknown = set(self.thresholds) - set(parameters)
        if unknown:
            raise AssessmentError(
                f"scoring profile {name!r} has thresholds for unknown "
                f"parameters: {sorted(unknown)}"
            )
        for parameter, threshold in self.thresholds.items():
            if not 0.0 <= float(threshold) <= 1.0:
                raise AssessmentError(
                    f"threshold for {parameter!r} must be in [0, 1], "
                    f"got {threshold!r}"
                )
        self.doc = doc
        #: Assigned by :func:`register_profile`; plan caches pin it.
        self.version = 0

    @property
    def parameters(self) -> tuple[str, ...]:
        """The parameter names this profile defines, in scorer order."""
        return tuple(self.scorers)

    def defines(self, parameter: str) -> bool:
        return parameter in self.scorers

    def scorer(self, parameter: str) -> ParameterScorer:
        try:
            return self.scorers[parameter]
        except KeyError:
            raise AssessmentError(
                f"scoring profile {self.name!r} defines no parameter "
                f"{parameter!r} (defined: {list(self.scorers)})"
            ) from None

    def threshold(self, parameter: str) -> Optional[float]:
        """The view's acceptability cut for ``parameter`` (or None)."""
        return self.thresholds.get(parameter)

    def __repr__(self) -> str:
        return (
            f"ScoringProfile({self.name!r}, "
            f"parameters={list(self.scorers)})"
        )


# -- the profile registry -----------------------------------------------------

_registry_lock = threading.RLock()
_profiles: dict[str, ScoringProfile] = {}
_bindings: dict[str, str] = {}  # relation/schema name → profile name
_registry_version = 0


def registry_version() -> int:
    """Monotonic registry mutation counter (plan-cache pin)."""
    return _registry_version


def register_profile(
    profile: ScoringProfile,
    relations: Iterable[str] = (),
) -> ScoringProfile:
    """Register (or replace) a profile, optionally binding relations.

    Every registration bumps :func:`registry_version`, so cached plans
    keyed on the old version replan and stale materializations rebuild.
    """
    global _registry_version
    with _registry_lock:
        _registry_version += 1
        profile.version = _registry_version
        _profiles[profile.name] = profile
        for relation in relations:
            _bindings[relation] = profile.name
    return profile


def bind_profile(relation_name: str, profile_name: str) -> None:
    """Bind one relation (by schema name) to a registered profile."""
    global _registry_version
    with _registry_lock:
        if profile_name not in _profiles:
            raise AssessmentError(
                f"unknown scoring profile {profile_name!r} "
                f"(registered: {sorted(_profiles)})"
            )
        _bindings[relation_name] = profile_name
        _registry_version += 1


def profile_for(source: Any) -> Optional[ScoringProfile]:
    """The profile bound to a relation (object or schema name), or None.

    Resolution is by *schema name*, so a frozen ``read_snapshot()``
    relation resolves exactly like the live relation it was cut from.
    """
    if isinstance(source, str):
        name = source
    else:
        schema = getattr(source, "schema", None)
        name = getattr(schema, "name", None)
    if name is None:
        return None
    with _registry_lock:
        profile_name = _bindings.get(name)
        if profile_name is None:
            return None
        return _profiles.get(profile_name)


def registered_profiles() -> dict[str, ScoringProfile]:
    """A copy of the registered profiles, by name."""
    with _registry_lock:
        return dict(_profiles)


def parameter_defined(parameter: str) -> bool:
    """True when *any* registered profile defines ``parameter``."""
    with _registry_lock:
        return any(
            profile.defines(parameter) for profile in _profiles.values()
        )


def clear_profiles() -> None:
    """Drop every profile and binding (test isolation support)."""
    global _registry_version
    with _registry_lock:
        _profiles.clear()
        _bindings.clear()
        _registry_version += 1


# -- per-row scoring ----------------------------------------------------------


def row_parameter_score(
    profile: ScoringProfile,
    parameter: str,
    row: Any,
    positions: Sequence[int],
) -> Optional[float]:
    """One row's parameter score: mean over its scorable tagged cells.

    ``positions`` are the cell positions of the relation's tagged
    columns; cells the scorer cannot score (missing tags) drop out, and
    a row with no scorable cell scores ``None`` (SQL NULL semantics).
    """
    scorer = profile.scorer(parameter)
    context = profile.context
    cells = row.cells
    total = 0.0
    scorable = 0
    for position in positions:
        score = scorer.score(cells[position], context)
        if score is not None:
            total += score
            scorable += 1
    if not scorable:
        return None
    return total / scorable


def tagged_positions(relation: TaggedRelation) -> tuple[int, ...]:
    """Cell positions of the relation's tagged columns (schema order)."""
    index_of = relation.schema.index_of
    return tuple(
        index_of(column) for column in relation.tag_schema.tagged_columns
    )


def _record_refresh(recomputed: int, reused: int, staleness: float) -> None:
    registry = _obs_metrics.global_registry()
    registry.counter(
        "scores.recomputed", "row-scores recomputed by materializer refresh"
    ).inc(recomputed)
    registry.counter(
        "scores.reused", "row-scores served from fresh score blocks"
    ).inc(reused)
    registry.gauge(
        "scores.staleness",
        "fraction of score blocks found stale on the last refresh",
    ).set(staleness)


class _ScoreBlock:
    """One segment's score arrays, pinned to the segment's version."""

    __slots__ = ("token", "rows", "scores")

    def __init__(
        self,
        token: int,
        rows: int,
        scores: dict[str, list[Optional[float]]],
    ) -> None:
        self.token = token
        self.rows = rows
        self.scores = scores


class ScoreMaterializer:
    """Version-gated materialized score columns for one tagged relation.

    Blocks mirror the relation's storage layout: one per partition
    shard (keyed by bucket) plus an on-demand flat block (canonical row
    order) for unpruned access.  :meth:`refresh` recomputes only the
    blocks whose segment version moved since the last build; a profile
    re-registration or a ``repartition()`` (layout version bump) drops
    every block.
    """

    def __init__(self, relation: TaggedRelation) -> None:
        # A weak backref: the module cache maps relation → materializer,
        # and a strong ref here would make those entries immortal.
        self._relation_ref = weakref.ref(relation)
        self._lock = threading.RLock()
        self._profile: Optional[ScoringProfile] = None
        self._profile_version = -1
        self._layout_version = -1
        self._blocks: dict[int, _ScoreBlock] = {}

    # -- plumbing -------------------------------------------------------------

    def _relation(self) -> TaggedRelation:
        relation = self._relation_ref()
        if relation is None:  # pragma: no cover - defensive
            raise AssessmentError("the materialized relation was dropped")
        return relation

    def _resolve_profile(self, relation: TaggedRelation) -> ScoringProfile:
        """Resolve the bound profile; any change drops every block."""
        profile = profile_for(relation)
        if profile is None:
            raise AssessmentError(
                f"no scoring profile is bound to relation "
                f"{relation.schema.name!r}; register one with "
                f"repro.quality.materialize.register_profile"
            )
        if (
            profile is not self._profile
            or profile.version != self._profile_version
            or relation.partition_layout_version != self._layout_version
        ):
            self._blocks = {}
            self._profile = profile
            self._profile_version = profile.version
            self._layout_version = relation.partition_layout_version
        return profile

    def _compute_block(
        self, segment: TaggedRelation, profile: ScoringProfile
    ) -> _ScoreBlock:
        token = segment.version
        rows = segment.row_batch()
        positions = tagged_positions(segment)
        scores: dict[str, list[Optional[float]]] = {}
        for parameter in profile.parameters:
            scores[parameter] = [
                row_parameter_score(profile, parameter, row, positions)
                for row in rows
            ]
        return _ScoreBlock(token, len(rows), scores)

    def _segment(self, relation: TaggedRelation, bucket: int) -> TaggedRelation:
        if bucket == _FLAT:
            return relation
        return relation.partition(bucket)

    def _ensure_blocks(
        self, relation: TaggedRelation, buckets: Sequence[int]
    ) -> dict[int, _ScoreBlock]:
        """Bring the named blocks up to date; returns bucket → block."""
        profile = self._resolve_profile(relation)
        recomputed = 0
        reused = 0
        stale = 0
        out: dict[int, _ScoreBlock] = {}
        for bucket in buckets:
            segment = self._segment(relation, bucket)
            block = self._blocks.get(bucket)
            if block is not None and block.token == segment.version:
                reused += block.rows
                out[bucket] = block
                continue
            stale += 1
            block = self._compute_block(segment, profile)
            recomputed += block.rows
            self._blocks[bucket] = block
            out[bucket] = block
        if _obs_metrics.enabled():
            _record_refresh(
                recomputed, reused, stale / len(buckets) if buckets else 0.0
            )
        return out

    # -- public API -----------------------------------------------------------

    def refresh(self) -> None:
        """Bring every storage-layout block up to date (incrementally).

        Partitioned relations refresh one block per shard — only shards
        whose mutation counter moved recompute; unpartitioned relations
        refresh the single flat block.
        """
        relation = self._relation()
        with self._lock:
            if relation.partition_spec is None:
                buckets: Sequence[int] = (_FLAT,)
            else:
                buckets = range(relation.partition_spec.count)
            self._ensure_blocks(relation, list(buckets))

    def row_scores(
        self, parameter: str, bucket: Optional[int] = None
    ) -> list[Optional[float]]:
        """The materialized score array for one block (flat by default),
        aligned with that block's row order."""
        relation = self._relation()
        key = _FLAT if bucket is None else bucket
        with self._lock:
            block = self._ensure_blocks(relation, [key])[key]
            profile = self._profile
            assert profile is not None
            if parameter not in block.scores:
                raise AssessmentError(
                    f"scoring profile {profile.name!r} defines no "
                    f"parameter {parameter!r} "
                    f"(defined: {list(profile.parameters)})"
                )
            return list(block.scores[parameter])

    def filter_indices(
        self,
        constraints: Sequence[tuple[str, str, Any]],
        bucket: Optional[int] = None,
        candidates: Optional[Sequence[int]] = None,
    ) -> list[int]:
        """Row indices of one block satisfying a score conjunction.

        Each constraint is ``(parameter, op, operand)`` with ``op``
        from :data:`repro.tagging.query.OPERATORS`.  ``None`` scores
        (no scorable cell) never match, mirroring SQL NULL semantics.
        ``candidates`` restricts the scan to those (ascending) indices —
        the path a stacked tag-constraint scan feeds.
        """
        relation = self._relation()
        key = _FLAT if bucket is None else bucket
        with self._lock:
            block = self._ensure_blocks(relation, [key])[key]
            profile = self._profile
            assert profile is not None
            hits: Optional[list[int]] = (
                None if candidates is None else list(candidates)
            )
            for parameter, op, operand in constraints:
                if op not in OPERATORS:
                    raise AssessmentError(f"unknown operator {op!r}")
                if parameter not in block.scores:
                    raise AssessmentError(
                        f"scoring profile {profile.name!r} defines no "
                        f"parameter {parameter!r} "
                        f"(defined: {list(profile.parameters)})"
                    )
                compare = OPERATORS[op]
                array = block.scores[parameter]
                survivors: list[int] = []
                emit = survivors.append
                pool = range(len(array)) if hits is None else hits
                for index in pool:
                    score = array[index]
                    if score is None:
                        continue
                    try:
                        if compare(score, operand):
                            emit(index)
                    except TypeError:
                        continue
                hits = survivors
                if not hits:
                    break
            return hits if hits is not None else []


# -- the per-relation materializer cache --------------------------------------

_materializers: "weakref.WeakKeyDictionary[TaggedRelation, ScoreMaterializer]"
_materializers = weakref.WeakKeyDictionary()
_materializers_lock = threading.Lock()


def materializer_for(relation: TaggedRelation) -> ScoreMaterializer:
    """The (cached) score materializer of one tagged relation object.

    Keyed weakly by the relation object itself: a frozen snapshot gets
    its own materializer (whose blocks, like the snapshot, never go
    stale), and dropped relations release their score arrays.
    """
    with _materializers_lock:
        materializer = _materializers.get(relation)
        if materializer is None:
            materializer = ScoreMaterializer(relation)
            _materializers[relation] = materializer
        return materializer
