"""Inspection mechanisms behind the "√ inspection" requirement.

§3.3: "These procedures might include double entry of important data,
front-end rules to enforce domain or update constraints, or manual
processes for performing certification on the data."  §4 adds
"prompting for data inspection on a periodic basis or in the event of
peculiar data".

Implemented here:

- :class:`DoubleEntry` — two independent entries of the same datum are
  compared; disagreement flags the datum;
- :class:`CertificationLog` — manual certification records over data
  subjects, queryable by the administrator;
- :class:`PeriodicInspectionPrompt` — schedule-driven inspection
  prompting (every N records and on peculiar values);
- front-end rules live in :mod:`repro.quality.controls`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Optional, Sequence

from repro.errors import InspectionError


@dataclass(frozen=True)
class EntryPair:
    """The two independent entries of one field of one subject."""

    subject: tuple[Any, ...]
    field_name: str
    first: Any
    second: Any

    @property
    def agrees(self) -> bool:
        return self.first == self.second


class DoubleEntry:
    """Double entry of important data: enter twice, compare, flag.

    Typical flow: ``enter(subject, field, value, operator)`` twice per
    (subject, field); :meth:`discrepancies` lists disagreements.

    >>> de = DoubleEntry()
    >>> de.enter(("Nut Co",), "employees", 700, "alice")
    >>> de.enter(("Nut Co",), "employees", 710, "bob")
    >>> [(p.first, p.second) for p in de.discrepancies()]
    [(700, 710)]
    """

    def __init__(self) -> None:
        self._entries: dict[tuple[tuple[Any, ...], str], list[tuple[Any, str]]] = {}

    def enter(
        self,
        subject: Sequence[Any],
        field_name: str,
        value: Any,
        operator: str,
    ) -> None:
        """Record one entry.  A third entry for the same slot raises."""
        key = (tuple(subject), field_name)
        entries = self._entries.setdefault(key, [])
        if len(entries) >= 2:
            raise InspectionError(
                f"double entry for {key} already has two entries"
            )
        if entries and entries[0][1] == operator:
            raise InspectionError(
                f"double entry requires two *independent* operators; "
                f"{operator!r} already entered {key}"
            )
        entries.append((value, operator))

    def pairs(self) -> list[EntryPair]:
        """All completed pairs (slots entered exactly twice)."""
        result = []
        for (subject, field_name), entries in self._entries.items():
            if len(entries) == 2:
                result.append(
                    EntryPair(subject, field_name, entries[0][0], entries[1][0])
                )
        return result

    def pending(self) -> list[tuple[tuple[Any, ...], str]]:
        """Slots entered only once so far."""
        return [key for key, entries in self._entries.items() if len(entries) == 1]

    def discrepancies(self) -> list[EntryPair]:
        """Completed pairs whose two entries disagree."""
        return [pair for pair in self.pairs() if not pair.agrees]

    def agreement_rate(self) -> float:
        """Fraction of completed pairs that agree (1.0 when none complete)."""
        pairs = self.pairs()
        if not pairs:
            return 1.0
        return sum(1 for p in pairs if p.agrees) / len(pairs)


@dataclass(frozen=True)
class CertificationRecord:
    """One manual certification of a data subject."""

    subject: tuple[Any, ...]
    relation: str
    certified_by: str
    verdict: str  # "certified" | "rejected"
    note: str = ""


class CertificationLog:
    """Manual data certification records (§4's certification process)."""

    CERTIFIED = "certified"
    REJECTED = "rejected"

    def __init__(self) -> None:
        self._records: list[CertificationRecord] = []

    def certify(
        self,
        relation: str,
        subject: Sequence[Any],
        certified_by: str,
        note: str = "",
    ) -> CertificationRecord:
        """Record a positive certification."""
        return self._record(relation, subject, certified_by, self.CERTIFIED, note)

    def reject(
        self,
        relation: str,
        subject: Sequence[Any],
        certified_by: str,
        note: str = "",
    ) -> CertificationRecord:
        """Record a rejection (datum failed certification)."""
        return self._record(relation, subject, certified_by, self.REJECTED, note)

    def _record(
        self,
        relation: str,
        subject: Sequence[Any],
        certified_by: str,
        verdict: str,
        note: str,
    ) -> CertificationRecord:
        if not certified_by:
            raise InspectionError("certification must name its certifier")
        record = CertificationRecord(
            tuple(subject), relation, certified_by, verdict, note
        )
        self._records.append(record)
        return record

    @property
    def records(self) -> tuple[CertificationRecord, ...]:
        return tuple(self._records)

    def status_of(
        self, relation: str, subject: Sequence[Any]
    ) -> Optional[str]:
        """Latest certification verdict for one subject (None = never)."""
        target = tuple(subject)
        for record in reversed(self._records):
            if record.relation == relation and record.subject == target:
                return record.verdict
        return None

    def certified_subjects(self, relation: str) -> list[tuple[Any, ...]]:
        """Subjects whose latest verdict is 'certified'."""
        latest: dict[tuple[Any, ...], str] = {}
        for record in self._records:
            if record.relation == relation:
                latest[record.subject] = record.verdict
        return [s for s, verdict in latest.items() if verdict == self.CERTIFIED]


class PeriodicInspectionPrompt:
    """Prompt for inspection every N records and on peculiar data (§4).

    ``peculiar`` is a predicate flagging records that warrant immediate
    inspection regardless of the schedule.  ``observe`` returns the
    reasons the record should be inspected (empty = no prompt).
    """

    def __init__(
        self,
        every_n: int,
        peculiar: Optional[Callable[[Mapping[str, Any]], bool]] = None,
    ) -> None:
        if every_n <= 0:
            raise InspectionError("every_n must be positive")
        self.every_n = every_n
        self.peculiar = peculiar
        self._count = 0
        self.prompts: list[tuple[int, str]] = []

    def observe(self, record: Mapping[str, Any]) -> list[str]:
        """Feed one record through the prompt schedule."""
        self._count += 1
        reasons: list[str] = []
        if self._count % self.every_n == 0:
            reasons.append(f"periodic inspection (every {self.every_n} records)")
        if self.peculiar is not None and self.peculiar(record):
            reasons.append("peculiar data")
        for reason in reasons:
            self.prompts.append((self._count, reason))
        return reasons

    @property
    def observed(self) -> int:
        return self._count
