"""Quality measurement, assessment, filtering, and administration (§4).

The paper's Discussion section sketches two perspectives on the tagged
database:

- the **end user** retrieves data of a specific "grade" by constraining
  quality indicators (:mod:`repro.quality.profiles`,
  :mod:`repro.quality.filtering`);
- the **data quality administrator** monitors, controls, and reports on
  quality (:mod:`repro.quality.admin`), audits the manufacturing trail
  (:mod:`repro.quality.audit`), runs inspections
  (:mod:`repro.quality.inspection`), applies statistical process
  control (:mod:`repro.quality.spc`), and enforces data-entry controls
  (:mod:`repro.quality.controls`).

:mod:`repro.quality.dimensions` supplies the objective dimension
metrics (timeliness/age, completeness, accuracy vs. ground truth,
consistency) and :mod:`repro.quality.assessment` aggregates them into
per-relation/column quality profiles (Premise 1.3's hierarchy).
"""

from repro.quality.dimensions import (
    accuracy_against,
    age_in_days,
    completeness,
    consistency_rate,
    currency_score,
    timeliness_score,
)
from repro.quality.assessment import ColumnAssessment, QualityAssessment, assess
from repro.quality.profiles import ApplicationProfile, ProfileRegistry
from repro.quality.filtering import FilterOutcome, graded_retrieval, yield_quality_tradeoff
from repro.quality.admin import AdminReport, DataQualityAdministrator
from repro.quality.audit import ElectronicTrail, TrailEvent
from repro.quality.scoring import ParameterScorer, QualityScorecard
from repro.quality.materialize import (
    ScoreMaterializer,
    ScoringProfile,
    bind_profile,
    materializer_for,
    profile_for,
    register_profile,
)
from repro.quality.allocation import DatasetProfile, allocate_budget
from repro.quality.tdqm import TDQMCycle

__all__ = [
    "DatasetProfile",
    "ParameterScorer",
    "QualityScorecard",
    "ScoreMaterializer",
    "ScoringProfile",
    "TDQMCycle",
    "allocate_budget",
    "AdminReport",
    "ApplicationProfile",
    "ColumnAssessment",
    "DataQualityAdministrator",
    "ElectronicTrail",
    "FilterOutcome",
    "ProfileRegistry",
    "QualityAssessment",
    "TrailEvent",
    "accuracy_against",
    "age_in_days",
    "assess",
    "bind_profile",
    "completeness",
    "consistency_rate",
    "currency_score",
    "graded_retrieval",
    "materializer_for",
    "profile_for",
    "register_profile",
    "timeliness_score",
    "yield_quality_tradeoff",
]
