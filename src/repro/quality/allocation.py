"""Resource allocation for data quality enhancement (Ballou & Tayi [1]).

The paper's first citation is Ballou & Kumar Tayi (CACM 1989),
"Methodology for Allocating Resources for Data Quality Enhancement":
given several datasets with known error rates, a budget, and per-dataset
enhancement costs/effectiveness, decide where to spend.  The
administrator needs exactly this to act on monitoring results, so the
model is implemented here:

- each :class:`DatasetProfile` describes one dataset: record count,
  current error rate, per-unit enhancement cost, enhancement
  effectiveness (fraction of remaining errors removed per funded unit),
  and an importance weight (how damaging its errors are);
- :func:`allocate_budget` finds the integer allocation of budget units
  maximizing the total weighted error reduction, via an exact greedy
  argument (marginal gains are decreasing in units, so greedily taking
  the best next unit is optimal — the classic result for concave
  separable maximization under a budget).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from repro.errors import QualityError


@dataclass(frozen=True)
class DatasetProfile:
    """Enhancement economics of one dataset.

    Parameters
    ----------
    name:
        Dataset name.
    records:
        Number of records.
    error_rate:
        Current fraction of erroneous records (0..1).
    unit_cost:
        Cost of one enhancement unit (e.g. one inspection pass).
    effectiveness:
        Fraction of *remaining* errors removed by each funded unit
        (0..1); successive units have geometrically diminishing returns.
    weight:
        Relative damage per erroneous record (importance).
    """

    name: str
    records: int
    error_rate: float
    unit_cost: float
    effectiveness: float
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.records < 0:
            raise QualityError(f"{self.name}: records must be non-negative")
        if not 0.0 <= self.error_rate <= 1.0:
            raise QualityError(f"{self.name}: error_rate must be in [0, 1]")
        if self.unit_cost <= 0:
            raise QualityError(f"{self.name}: unit_cost must be positive")
        if not 0.0 < self.effectiveness <= 1.0:
            raise QualityError(
                f"{self.name}: effectiveness must be in (0, 1]"
            )
        if self.weight < 0:
            raise QualityError(f"{self.name}: weight must be non-negative")

    @property
    def weighted_errors(self) -> float:
        """Current weighted error mass."""
        return self.weight * self.records * self.error_rate

    def errors_after(self, units: int) -> float:
        """Weighted error mass remaining after ``units`` funded units."""
        return self.weighted_errors * (1.0 - self.effectiveness) ** units

    def marginal_gain(self, unit_index: int) -> float:
        """Weighted errors removed by the (unit_index+1)-th unit."""
        return self.errors_after(unit_index) - self.errors_after(unit_index + 1)


@dataclass
class Allocation:
    """The result of a budget allocation."""

    units: dict[str, int]
    spent: float
    weighted_errors_before: float
    weighted_errors_after: float

    @property
    def improvement(self) -> float:
        """Weighted errors removed."""
        return self.weighted_errors_before - self.weighted_errors_after

    @property
    def improvement_fraction(self) -> float:
        """Fraction of the weighted error mass removed (0 when none)."""
        if self.weighted_errors_before == 0:
            return 0.0
        return self.improvement / self.weighted_errors_before

    def render(self, profiles: Mapping[str, DatasetProfile]) -> str:
        lines = [
            f"Quality enhancement allocation (spent {self.spent:g}, "
            f"removed {self.improvement_fraction:.1%} of weighted errors)"
        ]
        for name in sorted(self.units):
            units = self.units[name]
            profile = profiles[name]
            lines.append(
                f"  {name}: {units} unit(s) @ {profile.unit_cost:g} — "
                f"errors {profile.weighted_errors:.1f} → "
                f"{profile.errors_after(units):.1f}"
            )
        return "\n".join(lines)


def allocate_budget(
    profiles: Sequence[DatasetProfile],
    budget: float,
    max_units_per_dataset: int = 1000,
) -> Allocation:
    """Allocate a budget across datasets to maximize error reduction.

    Greedy on marginal gain per cost unit; exact for this concave
    separable objective.  ``max_units_per_dataset`` bounds runaway
    spending on one dataset (and the loop).
    """
    if budget < 0:
        raise QualityError("budget must be non-negative")
    names = [p.name for p in profiles]
    if len(set(names)) != len(names):
        raise QualityError(f"duplicate dataset names: {names}")

    by_name = {p.name: p for p in profiles}
    units = {p.name: 0 for p in profiles}
    remaining = budget

    # Max-heap of (-gain_per_cost, name); lazily refreshed as units are
    # taken, since each dataset's next marginal gain shrinks.
    heap: list[tuple[float, str]] = []
    for profile in profiles:
        gain = profile.marginal_gain(0)
        if gain > 0 and profile.unit_cost <= remaining:
            heapq.heappush(heap, (-gain / profile.unit_cost, profile.name))

    while heap:
        neg_ratio, name = heapq.heappop(heap)
        profile = by_name[name]
        if profile.unit_cost > remaining:
            continue
        # The stored ratio may be stale; recompute and re-push if so.
        current_gain = profile.marginal_gain(units[name])
        current_ratio = current_gain / profile.unit_cost
        if current_ratio + 1e-15 < -neg_ratio:
            if current_gain > 0:
                heapq.heappush(heap, (-current_ratio, name))
            continue
        # Take the unit.
        units[name] += 1
        remaining -= profile.unit_cost
        if units[name] < max_units_per_dataset:
            next_gain = profile.marginal_gain(units[name])
            if next_gain > 0 and profile.unit_cost <= remaining:
                heapq.heappush(
                    heap, (-next_gain / profile.unit_cost, name)
                )

    before = sum(p.weighted_errors for p in profiles)
    after = sum(by_name[name].errors_after(n) for name, n in units.items())
    return Allocation(
        units=units,
        spent=budget - remaining,
        weighted_errors_before=before,
        weighted_errors_after=after,
    )


def profiles_from_monitoring(
    defect_stats: Mapping[str, tuple[int, int]],
    unit_cost: float = 1.0,
    effectiveness: float = 0.5,
    weights: Optional[Mapping[str, float]] = None,
) -> list[DatasetProfile]:
    """Build dataset profiles from pipeline defect statistics.

    ``defect_stats`` maps dataset name → (defects, total) as produced by
    :meth:`repro.manufacturing.pipeline.ManufacturingPipeline.defect_counts_by_method`
    — closing the loop from monitoring to enhancement planning.
    """
    profiles = []
    for name, (defects, total) in defect_stats.items():
        if total == 0:
            continue
        profiles.append(
            DatasetProfile(
                name=name,
                records=total,
                error_rate=defects / total,
                unit_cost=unit_cost,
                effectiveness=effectiveness,
                weight=(weights or {}).get(name, 1.0),
            )
        )
    return profiles
