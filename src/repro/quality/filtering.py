"""Grade-based retrieval and the yield/quality trade-off.

The paper's motivating claim is that constraining quality indicators at
query time "raises the accuracy and timeliness of the retrieved data" —
at the cost of retrieving less of it.  This module measures that
trade-off explicitly against the simulated ground truth, which is what
benchmark E1 reports.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass
from typing import Any, Mapping, Optional, Sequence

from repro.quality.dimensions import accuracy_against, age_in_days, overall_accuracy
from repro.tagging.query import QualityFilter
from repro.tagging.relation import TaggedRelation


@dataclass
class FilterOutcome:
    """The measured outcome of applying one quality filter."""

    filter_name: str
    input_rows: int
    output_rows: int
    delivered_accuracy: Optional[float]
    mean_age_days: Optional[float]

    @property
    def yield_fraction(self) -> float:
        """Fraction of input rows the filter retained."""
        if self.input_rows == 0:
            return 0.0
        return self.output_rows / self.input_rows

    def summary(self) -> str:
        parts = [
            f"{self.filter_name}: yield={self.yield_fraction:.3f} "
            f"({self.output_rows}/{self.input_rows})"
        ]
        if self.delivered_accuracy is not None:
            parts.append(f"accuracy={self.delivered_accuracy:.3f}")
        if self.mean_age_days is not None:
            parts.append(f"mean_age={self.mean_age_days:.1f}d")
        return ", ".join(parts)


def _mean_age(
    relation: TaggedRelation,
    age_columns: Sequence[str],
    today: Optional[_dt.date | _dt.datetime],
) -> Optional[float]:
    if today is None:
        return None
    positions = relation.schema.positions_of(age_columns)
    ages: list[float] = []
    for row in relation:
        for p in positions:
            created = row.cells[p].tag_value("creation_time")
            if created is not None:
                ages.append(age_in_days(created, today))
    return sum(ages) / len(ages) if ages else None


def graded_retrieval(
    relation: TaggedRelation,
    quality_filter: QualityFilter,
    truth: Optional[Mapping[Any, Mapping[str, Any]]] = None,
    key_column: Optional[str] = None,
    today: Optional[_dt.date | _dt.datetime] = None,
    age_columns: Sequence[str] = (),
    tolerance: float = 0.0,
) -> tuple[TaggedRelation, FilterOutcome]:
    """Apply one grade and measure what was delivered.

    Returns the filtered relation plus a :class:`FilterOutcome` with the
    yield, the delivered accuracy (vs. ground truth, if supplied), and
    the mean age of the delivered data (if ``today`` and tagged
    creation times are available).
    """
    filtered = quality_filter.apply(relation)
    delivered_accuracy: Optional[float] = None
    if truth is not None and key_column is not None:
        per_column = accuracy_against(
            filtered, truth, key_column, tolerance=tolerance
        )
        delivered_accuracy = overall_accuracy(per_column)
    outcome = FilterOutcome(
        filter_name=quality_filter.name or "(anonymous)",
        input_rows=len(relation),
        output_rows=len(filtered),
        delivered_accuracy=delivered_accuracy,
        mean_age_days=_mean_age(filtered, age_columns, today),
    )
    return filtered, outcome


def yield_quality_tradeoff(
    relation: TaggedRelation,
    filters: Sequence[QualityFilter],
    truth: Optional[Mapping[Any, Mapping[str, Any]]] = None,
    key_column: Optional[str] = None,
    today: Optional[_dt.date | _dt.datetime] = None,
    age_columns: Sequence[str] = (),
    tolerance: float = 0.0,
) -> list[FilterOutcome]:
    """Measure several grades over the same data (E1's result table).

    The expected *shape*: stricter filters → lower yield, higher
    delivered accuracy, lower mean age.
    """
    outcomes = []
    for quality_filter in filters:
        _, outcome = graded_retrieval(
            relation,
            quality_filter,
            truth=truth,
            key_column=key_column,
            today=today,
            age_columns=age_columns,
            tolerance=tolerance,
        )
        outcomes.append(outcome)
    return outcomes
