"""The data quality administrator (§1.3, §4).

"The data quality administrator is a person (or system) whose
responsibility it is to ensure that data in the database conform to the
quality requirements."

:class:`DataQualityAdministrator` is that system:

- **monitor** — check tagged relations against the quality schema's
  requirements (required tags present? coverage?), assess dimension
  metrics, and summarize;
- **control** — wire entry controllers, inspections, and SPC to the
  incoming stream;
- **report** — produce the administrator's quality report.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Sequence

from repro.core.views import QualitySchema
from repro.quality.assessment import QualityAssessment, assess
from repro.quality.audit import ElectronicTrail
from repro.quality.spc import ControlChart, p_chart
from repro.tagging.relation import TaggedRelation


@dataclass
class RequirementFinding:
    """One monitoring finding against a quality requirement."""

    owner: str
    column: str
    indicator: str
    mandatory: bool
    coverage: float

    @property
    def violated(self) -> bool:
        """A mandatory indicator with less than full coverage is violated."""
        return self.mandatory and self.coverage < 1.0

    def summary(self) -> str:
        kind = "required" if self.mandatory else "allowed"
        status = "VIOLATED" if self.violated else "ok"
        return (
            f"{self.owner}.{self.column} [{kind} {self.indicator}] "
            f"coverage={self.coverage:.3f} {status}"
        )


@dataclass
class AdminReport:
    """The administrator's quality report for one database snapshot."""

    findings: list[RequirementFinding]
    assessments: dict[str, QualityAssessment]
    notes: list[str] = field(default_factory=list)

    @property
    def violations(self) -> list[RequirementFinding]:
        return [f for f in self.findings if f.violated]

    @property
    def conforms(self) -> bool:
        """True when no mandatory requirement is violated."""
        return not self.violations

    def render(self) -> str:
        lines = ["DATA QUALITY ADMINISTRATION REPORT"]
        lines.append(
            f"Conformance: {'PASS' if self.conforms else 'FAIL'} "
            f"({len(self.violations)} violation(s) of "
            f"{len(self.findings)} requirement checks)"
        )
        for finding in self.findings:
            lines.append("  " + finding.summary())
        for name in sorted(self.assessments):
            lines.append("")
            lines.append(self.assessments[name].render())
        if self.notes:
            lines.append("")
            lines.append("Notes:")
            lines.extend(f"  - {note}" for note in self.notes)
        return "\n".join(lines)


class DataQualityAdministrator:
    """Monitors tagged data against a quality schema's requirements.

    Parameters
    ----------
    quality_schema:
        The integrated quality schema (the requirements to enforce).
    trail:
        The electronic trail to use for exception tracking (a fresh one
        is created if omitted).
    """

    def __init__(
        self,
        quality_schema: QualitySchema,
        trail: Optional[ElectronicTrail] = None,
    ) -> None:
        self.quality_schema = quality_schema
        self.trail = trail or ElectronicTrail()

    # -- monitoring -----------------------------------------------------------

    def check_requirements(
        self, relations: Mapping[str, TaggedRelation]
    ) -> list[RequirementFinding]:
        """Coverage of every requirement over the supplied relations.

        ``relations`` maps owner (entity/relationship) name → its tagged
        relation.  Owners present in the schema but absent from the
        mapping are skipped (they may live elsewhere).
        """
        findings: list[RequirementFinding] = []
        for owner, relation in relations.items():
            tag_schema = self.quality_schema.tag_schema_for(owner)
            for column in tag_schema.tagged_columns:
                if column not in relation.schema:
                    continue
                required = tag_schema.required_for(column)
                optional = tag_schema.allowed_for(column) - required

                def coverage_of(indicator: str) -> float:
                    # An empty relation conforms vacuously: there is no
                    # untagged cell to complain about.
                    if not len(relation):
                        return 1.0
                    return relation.tag_coverage(column, indicator)

                for indicator in sorted(required):
                    findings.append(
                        RequirementFinding(
                            owner,
                            column,
                            indicator,
                            mandatory=True,
                            coverage=coverage_of(indicator),
                        )
                    )
                for indicator in sorted(optional):
                    findings.append(
                        RequirementFinding(
                            owner,
                            column,
                            indicator,
                            mandatory=False,
                            coverage=coverage_of(indicator),
                        )
                    )
        return findings

    def monitor(
        self,
        relations: Mapping[str, TaggedRelation],
        today: Optional[_dt.date | _dt.datetime] = None,
        truth: Optional[Mapping[Any, Mapping[str, Any]]] = None,
        key_columns: Optional[Mapping[str, str]] = None,
        shelf_life_days: float = 365.0,
    ) -> AdminReport:
        """Full monitoring pass: requirement checks + assessments."""
        findings = self.check_requirements(relations)
        assessments: dict[str, QualityAssessment] = {}
        for name, relation in relations.items():
            key_column = (key_columns or {}).get(name)
            assessments[name] = assess(
                relation,
                today=today,
                shelf_life_days=shelf_life_days,
                truth=truth if key_column else None,
                key_column=key_column,
            )
        notes = []
        for finding in findings:
            if finding.violated:
                notes.append(
                    f"requirement violated: {finding.owner}.{finding.column} "
                    f"missing required tag {finding.indicator!r} on "
                    f"{(1 - finding.coverage) * 100:.1f}% of rows"
                )
        return AdminReport(findings, assessments, notes)

    # -- control -----------------------------------------------------------------

    def defect_chart(
        self,
        defect_counts: Sequence[int],
        sample_sizes: Sequence[int],
        baseline_samples: Optional[int] = None,
    ) -> ControlChart:
        """SPC p-chart over inspection results (delegates to spc)."""
        return p_chart(
            defect_counts, sample_sizes, baseline_samples=baseline_samples
        )

    # -- exception handling ----------------------------------------------------------

    def trace(self, relation: str, subject: Sequence[Any]) -> dict[str, Any]:
        """Trace one datum's manufacturing history (the electronic trail)."""
        return self.trail.trace_erred_transaction(relation, subject)
