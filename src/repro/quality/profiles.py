"""Application quality profiles: stored "grades" of data (§4).

"Data quality profiles may be stored for different applications.  For
a mass mailing application ... a query with no constraints over quality
indicators may be appropriate.  For more sensitive applications, such
as fund raising, the user may query over and constrain quality
indicator values."

An :class:`ApplicationProfile` names a
:class:`~repro.tagging.query.QualityFilter` for an application; a
:class:`ProfileRegistry` stores them (the clearinghouse's "several
classes of data").
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.errors import QualityError
from repro.tagging.query import QualityFilter
from repro.tagging.relation import TaggedRelation


class ApplicationProfile:
    """One application's quality grade.

    Parameters
    ----------
    name:
        Profile name, e.g. ``"mass_mailing"`` or ``"fund_raising"``.
    quality_filter:
        The indicator constraints the application requires.
    doc:
        Why the application needs (or does not need) those constraints.
    """

    def __init__(
        self, name: str, quality_filter: QualityFilter, doc: str = ""
    ) -> None:
        if not name:
            raise QualityError("application profile must have a name")
        self.name = name
        self.quality_filter = quality_filter
        self.doc = doc

    def retrieve(self, relation: TaggedRelation) -> TaggedRelation:
        """Apply the profile's grade to a tagged relation."""
        return self.quality_filter.apply(relation)

    def describe(self) -> str:
        lines = [f"Profile {self.name!r}" + (f": {self.doc}" if self.doc else "")]
        lines.append("  " + self.quality_filter.describe().replace("\n", "\n  "))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"ApplicationProfile({self.name!r}, "
            f"{len(self.quality_filter)} constraints)"
        )


class ProfileRegistry:
    """A named store of application profiles."""

    def __init__(self) -> None:
        self._profiles: dict[str, ApplicationProfile] = {}

    def register(self, profile: ApplicationProfile) -> ApplicationProfile:
        """Add a profile; duplicate names raise."""
        if profile.name in self._profiles:
            raise QualityError(f"profile {profile.name!r} already registered")
        self._profiles[profile.name] = profile
        return profile

    def get(self, name: str) -> ApplicationProfile:
        """Look up a profile by name."""
        try:
            return self._profiles[name]
        except KeyError:
            raise QualityError(
                f"no profile {name!r} (registered: {sorted(self._profiles)})"
            ) from None

    def retrieve(self, name: str, relation: TaggedRelation) -> TaggedRelation:
        """Apply a named profile to a relation."""
        return self.get(name).retrieve(relation)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(sorted(self._profiles))

    def __iter__(self) -> Iterator[ApplicationProfile]:
        return iter(self._profiles.values())

    def __len__(self) -> int:
        return len(self._profiles)

    def __contains__(self, name: object) -> bool:
        return name in self._profiles

    def describe(self) -> str:
        """All profiles, rendered for the administrator's documentation."""
        if not self._profiles:
            return "(no profiles registered)"
        return "\n".join(
            self._profiles[name].describe() for name in sorted(self._profiles)
        )
