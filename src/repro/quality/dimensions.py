"""Objective data quality dimension metrics.

The paper's §4 names completeness, timeliness, accuracy, and
interpretability as "universally important" dimensions.  This module
implements the measurable ones over the library's data structures.
Accuracy requires a reference ("real world conditions"); in this
reproduction the reference is the simulated ground-truth world of
:mod:`repro.manufacturing.world`.
"""

from __future__ import annotations

import datetime as _dt
from typing import Any, Callable, Mapping, Optional, Sequence

from repro.errors import AssessmentError
from repro.relational.relation import Relation
from repro.tagging.relation import TaggedRelation

# ---------------------------------------------------------------------------
# Time dimensions
# ---------------------------------------------------------------------------


def age_in_days(created: Any, today: Any) -> float:
    """Age of a datum in days given its creation date/datetime.

    Accepts ``date`` or ``datetime`` for both arguments (mixed OK).

    >>> import datetime as dt
    >>> age_in_days(dt.date(1991, 10, 24), dt.date(1991, 10, 31))
    7.0
    """
    created_dt = _as_datetime(created)
    today_dt = _as_datetime(today)
    return (today_dt - created_dt).total_seconds() / 86400.0


def _as_datetime(value: Any) -> _dt.datetime:
    if isinstance(value, _dt.datetime):
        return value
    if isinstance(value, _dt.date):
        return _dt.datetime(value.year, value.month, value.day)
    raise AssessmentError(f"expected date/datetime, got {type(value).__name__}")


def currency_score(created: Any, today: Any, shelf_life_days: float) -> float:
    """Currency in [0, 1]: 1 when brand new, 0 at/after the shelf life.

    A linear decay model: ``max(0, 1 - age/shelf_life)``.  The shelf
    life encodes the data's *volatility* (Premise 1.2: timeliness and
    volatility are related — volatile data has a short shelf life).
    """
    if shelf_life_days <= 0:
        raise AssessmentError("shelf_life_days must be positive")
    age = age_in_days(created, today)
    if age < 0:
        return 1.0
    return max(0.0, 1.0 - age / shelf_life_days)


def timeliness_score(
    created: Any,
    today: Any,
    shelf_life_days: float,
    needed_by_days: Optional[float] = None,
) -> float:
    """Timeliness: currency discounted by the user's deadline.

    With ``needed_by_days`` (how current the *user* needs the data to
    be), data older than the deadline scores 0 regardless of shelf life
    — "data quality is in the eye of the beholder" (Premise 2.2).
    """
    age = age_in_days(created, today)
    if needed_by_days is not None and age > needed_by_days:
        return 0.0
    return currency_score(created, today, shelf_life_days)


# ---------------------------------------------------------------------------
# Completeness
# ---------------------------------------------------------------------------


def completeness(
    relation: Relation | TaggedRelation,
    columns: Optional[Sequence[str]] = None,
) -> float:
    """Fraction of non-NULL cells over the given columns (all by default).

    Column-level completeness of an empty relation is 1.0 (vacuously
    complete); population completeness against a reference is
    :func:`population_completeness`.
    """
    names = list(columns) if columns else list(relation.schema.column_names)
    for name in names:
        relation.schema.column(name)
    total = 0
    present = 0
    for row in relation:
        for name in names:
            total += 1
            value = _cell_value(row, name)
            if value is not None:
                present += 1
    return present / total if total else 1.0


def population_completeness(
    relation: Relation | TaggedRelation,
    reference_keys: Sequence[Any],
    key_column: str,
) -> float:
    """Fraction of reference entities represented in the relation.

    "All real-world states of interest are represented": the reference
    keys are the real-world population (from the simulated world).
    """
    relation.schema.column(key_column)
    if not reference_keys:
        return 1.0
    present = {_cell_value(row, key_column) for row in relation}
    covered = sum(1 for key in reference_keys if key in present)
    return covered / len(reference_keys)


# ---------------------------------------------------------------------------
# Accuracy
# ---------------------------------------------------------------------------


def accuracy_against(
    relation: Relation | TaggedRelation,
    truth: Mapping[Any, Mapping[str, Any]],
    key_column: str,
    columns: Optional[Sequence[str]] = None,
    tolerance: float = 0.0,
) -> dict[str, float]:
    """Per-column accuracy against a ground-truth mapping.

    ``truth`` maps key value → {column: true value}.  A cell is accurate
    when it equals the true value (numeric values may differ by up to
    ``tolerance`` in relative terms).  Rows whose key is missing from
    the truth are skipped; columns with no comparable cells score NaN-
    free 1.0 by convention (vacuous accuracy).

    Returns ``{column: accuracy in [0, 1]}``.
    """
    relation.schema.column(key_column)
    names = list(columns) if columns else [
        c for c in relation.schema.column_names if c != key_column
    ]
    for name in names:
        relation.schema.column(name)
    totals = {name: 0 for name in names}
    correct = {name: 0 for name in names}
    for row in relation:
        key = _cell_value(row, key_column)
        expected = truth.get(key)
        if expected is None:
            continue
        for name in names:
            if name not in expected:
                continue
            totals[name] += 1
            if _values_match(_cell_value(row, name), expected[name], tolerance):
                correct[name] += 1
    return {
        name: (correct[name] / totals[name] if totals[name] else 1.0)
        for name in names
    }


def overall_accuracy(per_column: Mapping[str, float]) -> float:
    """Unweighted mean of per-column accuracies (1.0 if empty)."""
    if not per_column:
        return 1.0
    return sum(per_column.values()) / len(per_column)


def _values_match(actual: Any, expected: Any, tolerance: float) -> bool:
    if actual is None or expected is None:
        return actual is None and expected is None
    if tolerance > 0 and isinstance(actual, (int, float)) and isinstance(
        expected, (int, float)
    ):
        scale = max(abs(float(expected)), 1e-12)
        return abs(float(actual) - float(expected)) / scale <= tolerance
    return actual == expected


# ---------------------------------------------------------------------------
# Consistency
# ---------------------------------------------------------------------------


def consistency_rate(
    relation: Relation | TaggedRelation,
    rule: Callable[[Mapping[str, Any]], bool],
) -> float:
    """Fraction of rows satisfying a consistency rule (1.0 if empty).

    The rule receives the row's application values as a mapping.
    """
    rows = list(relation)
    if not rows:
        return 1.0
    passing = 0
    for row in rows:
        values = _row_values(row)
        if rule(values):
            passing += 1
    return passing / len(rows)


def functional_dependency_rate(
    relation: Relation | TaggedRelation,
    determinant: Sequence[str],
    dependent: str,
) -> float:
    """Fraction of rows not violating the FD determinant → dependent.

    A row violates the FD when another row shares its determinant
    values but differs on the dependent.
    """
    for name in list(determinant) + [dependent]:
        relation.schema.column(name)
    witnesses: dict[tuple[Any, ...], Any] = {}
    conflicted: set[tuple[Any, ...]] = set()
    rows = list(relation)
    for row in rows:
        key = tuple(_cell_value(row, c) for c in determinant)
        value = _cell_value(row, dependent)
        if key in witnesses and witnesses[key] != value:
            conflicted.add(key)
        witnesses.setdefault(key, value)
    if not rows:
        return 1.0
    violating = sum(
        1
        for row in rows
        if tuple(_cell_value(row, c) for c in determinant) in conflicted
    )
    return 1.0 - violating / len(rows)


# ---------------------------------------------------------------------------
# Helpers over plain and tagged rows
# ---------------------------------------------------------------------------


def _cell_value(row: Any, name: str) -> Any:
    cell = row[name]
    return getattr(cell, "value", cell)


def _row_values(row: Any) -> Mapping[str, Any]:
    values_dict = getattr(row, "values_dict", None)
    if values_dict is not None:
        return values_dict()
    return row.to_dict()
