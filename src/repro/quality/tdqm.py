"""The TDQM improvement cycle: define → measure → analyze → improve.

§4 situates the paper inside a larger program: "improvement of data
quality through process and systems redesign and organizational
commitment to data quality [13][27]" — [27] being Wang & Kon's *Towards
Total Data Quality Management*.  This module implements that cycle over
the library's pieces:

- **define** — the quality requirements come from the integrated
  :class:`~repro.core.views.QualitySchema` (the methodology's output);
- **measure** — requirement conformance
  (:class:`~repro.quality.admin.DataQualityAdministrator`) plus numeric
  scoring (:class:`~repro.quality.scoring.QualityScorecard`);
- **analyze** — rank deficits by column and attribute the defect mass
  to manufacturing routes (source/method), producing
  :class:`ImprovementAction` proposals;
- **improve** — apply accepted actions to the
  :class:`~repro.manufacturing.pipeline.ManufacturingPipeline`
  (re-route an attribute through a better source or device) and
  optionally allocate an inspection budget
  (:mod:`repro.quality.allocation`).

Because the substrate is the simulator, a cycle's effect is
*measurable*: re-manufacture, re-measure, and the scores move.  The
integration test and the ``tdqm_cycle`` example demonstrate exactly
that loop.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Sequence

from typing import TYPE_CHECKING

from repro.core.views import QualitySchema
from repro.errors import QualityError
from repro.quality.admin import AdminReport, DataQualityAdministrator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    # quality.__init__ re-exports TDQMCycle while manufacturing.pipeline
    # imports quality.audit; keep the manufacturing imports lazy.
    from repro.manufacturing.collection import CollectionMethod
    from repro.manufacturing.pipeline import ManufacturingPipeline
    from repro.manufacturing.sources import DataSource
from repro.quality.allocation import Allocation, allocate_budget, profiles_from_monitoring
from repro.quality.scoring import QualityScorecard, RelationScore
from repro.tagging.relation import TaggedRelation


@dataclass
class Measurement:
    """One measure-phase output."""

    cycle: int
    admin_report: AdminReport
    scores: RelationScore

    @property
    def overall_score(self) -> Optional[float]:
        return self.scores.composite.score

    def summary(self) -> str:
        score = self.overall_score
        score_text = "n/a" if score is None else f"{score:.3f}"
        return (
            f"cycle {self.cycle}: conformance="
            f"{'PASS' if self.admin_report.conforms else 'FAIL'}, "
            f"overall score={score_text}"
        )


@dataclass(frozen=True)
class ImprovementAction:
    """One proposed process change.

    ``kind`` is ``"replace_method"`` or ``"replace_source"``;
    ``attribute`` names the routed attribute; ``reason`` documents the
    analysis that motivated the proposal.
    """

    kind: str
    attribute: str
    reason: str
    current: str = ""

    def describe(self) -> str:
        return f"{self.kind}({self.attribute}): {self.reason}"


@dataclass
class Analysis:
    """One analyze-phase output: ranked deficits and proposed actions."""

    cycle: int
    column_deficits: list[tuple[str, float]]  # (column, 1 - score), worst first
    route_defect_rates: dict[str, float]  # "source/method" → defect rate
    actions: list[ImprovementAction]
    inspection_plan: Optional[Allocation] = None

    def render(self) -> str:
        lines = [f"TDQM analysis (cycle {self.cycle})"]
        lines.append("  column deficits (worst first):")
        for column, deficit in self.column_deficits:
            lines.append(f"    {column}: deficit={deficit:.3f}")
        lines.append("  route defect rates:")
        for route, rate in sorted(self.route_defect_rates.items()):
            lines.append(f"    {route}: {rate:.3f}")
        lines.append("  proposed actions:")
        for action in self.actions:
            lines.append(f"    - {action.describe()}")
        if self.inspection_plan is not None:
            lines.append(
                f"  inspection budget: spent {self.inspection_plan.spent:g}, "
                f"removes {self.inspection_plan.improvement_fraction:.1%} "
                f"of weighted errors"
            )
        return "\n".join(lines)


class TDQMCycle:
    """Orchestrates define/measure/analyze/improve over a pipeline.

    Parameters
    ----------
    quality_schema:
        The methodology's integrated schema (the *define* phase input).
    owner:
        The entity whose relation the pipeline manufactures.
    scorecard:
        Numeric scoring model used by *measure*.
    pipeline:
        The manufacturing pipeline under improvement.
    deficit_threshold:
        Columns whose composite score falls below ``1 − threshold`` are
        *not* flagged; i.e. a column is flagged when its deficit
        (1 − score) exceeds this threshold.
    """

    def __init__(
        self,
        quality_schema: QualitySchema,
        owner: str,
        scorecard: QualityScorecard,
        pipeline: ManufacturingPipeline,
        deficit_threshold: float = 0.25,
    ) -> None:
        if not 0.0 <= deficit_threshold <= 1.0:
            raise QualityError("deficit_threshold must be in [0, 1]")
        self.quality_schema = quality_schema
        self.owner = owner
        self.scorecard = scorecard
        self.pipeline = pipeline
        self.deficit_threshold = deficit_threshold
        self.administrator = DataQualityAdministrator(
            quality_schema, trail=pipeline.trail
        )
        self.cycle = 0
        self.measurements: list[Measurement] = []
        self.analyses: list[Analysis] = []
        self.change_log: list[str] = []

    # -- measure ---------------------------------------------------------------

    def measure(
        self,
        relation: TaggedRelation,
        today: Optional[_dt.date] = None,
        truth: Optional[Mapping[Any, Mapping[str, Any]]] = None,
        key_column: Optional[str] = None,
    ) -> Measurement:
        """Measure conformance and scores for one manufactured snapshot."""
        report = self.administrator.monitor(
            {self.owner: relation},
            today=today,
            truth=truth,
            key_columns={self.owner: key_column} if key_column else None,
        )
        scores = self.scorecard.score_relation(
            relation, context={"today": today} if today else None
        )
        measurement = Measurement(self.cycle, report, scores)
        self.measurements.append(measurement)
        return measurement

    # -- analyze -----------------------------------------------------------------

    def analyze(
        self,
        measurement: Measurement,
        inspection_budget: float = 0.0,
    ) -> Analysis:
        """Rank deficits, attribute defects to routes, propose actions."""
        deficits: list[tuple[str, float]] = []
        for column, score in measurement.scores.columns.items():
            composite = score.composite.score
            deficit = 1.0 if composite is None else 1.0 - composite
            deficits.append((column, deficit))
        deficits.sort(key=lambda item: -item[1])

        route_rates: dict[str, float] = {}
        route_counts: dict[str, list[int]] = {}
        for record in self.pipeline.manufactured:
            route = f"{record.source}/{record.method}"
            entry = route_counts.setdefault(route, [0, 0])
            entry[1] += 1
            if record.erroneous or record.missing:
                entry[0] += 1
        for route, (defects, total) in route_counts.items():
            route_rates[route] = defects / total if total else 0.0

        actions: list[ImprovementAction] = []
        for column, deficit in deficits:
            if deficit <= self.deficit_threshold:
                continue
            route = self.pipeline.routes.get(column)
            if route is None:
                continue
            route_key = f"{route.source.name}/{route.method.name}"
            rate = route_rates.get(route_key, 0.0)
            if route.source.error_rate >= route.method.error_rate:
                actions.append(
                    ImprovementAction(
                        "replace_source",
                        column,
                        f"column deficit {deficit:.2f}; route {route_key} "
                        f"defect rate {rate:.2f}, dominated by source error "
                        f"rate {route.source.error_rate:.2f}",
                        current=route.source.name,
                    )
                )
            else:
                actions.append(
                    ImprovementAction(
                        "replace_method",
                        column,
                        f"column deficit {deficit:.2f}; route {route_key} "
                        f"defect rate {rate:.2f}, dominated by device error "
                        f"rate {route.method.error_rate:.2f}",
                        current=route.method.name,
                    )
                )

        inspection_plan: Optional[Allocation] = None
        if inspection_budget > 0:
            profiles = profiles_from_monitoring(
                self.pipeline.defect_counts_by_method()
            )
            if profiles:
                inspection_plan = allocate_budget(profiles, inspection_budget)

        analysis = Analysis(
            self.cycle, deficits, route_rates, actions, inspection_plan
        )
        self.analyses.append(analysis)
        return analysis

    # -- improve --------------------------------------------------------------------

    def improve(
        self,
        analysis: Analysis,
        replacement_sources: Optional[Mapping[str, DataSource]] = None,
        replacement_methods: Optional[Mapping[str, CollectionMethod]] = None,
    ) -> list[str]:
        """Apply proposed actions using the supplied replacements.

        ``replacement_sources`` / ``replacement_methods`` map attribute →
        the better source/device procured for it.  Actions without a
        matching replacement are skipped (procurement said no).  Returns
        the change log entries for this cycle.
        """
        changes: list[str] = []
        for action in analysis.actions:
            route = self.pipeline.routes.get(action.attribute)
            if route is None:
                continue
            if action.kind == "replace_source":
                replacement = (replacement_sources or {}).get(action.attribute)
                if replacement is None:
                    continue
                self.pipeline.assign(action.attribute, replacement, route.method)
                changes.append(
                    f"cycle {self.cycle}: {action.attribute} source "
                    f"{action.current!r} → {replacement.name!r}"
                )
            elif action.kind == "replace_method":
                replacement = (replacement_methods or {}).get(action.attribute)
                if replacement is None:
                    continue
                self.pipeline.assign(action.attribute, route.source, replacement)
                changes.append(
                    f"cycle {self.cycle}: {action.attribute} method "
                    f"{action.current!r} → {replacement.name!r}"
                )
        self.change_log.extend(changes)
        return changes

    # -- one full turn -----------------------------------------------------------------

    def run_cycle(
        self,
        today: Optional[_dt.date] = None,
        truth: Optional[Mapping[Any, Mapping[str, Any]]] = None,
        key_column: Optional[str] = None,
        replacement_sources: Optional[Mapping[str, DataSource]] = None,
        replacement_methods: Optional[Mapping[str, CollectionMethod]] = None,
        inspection_budget: float = 0.0,
    ) -> tuple[Measurement, Analysis, list[str]]:
        """Manufacture → measure → analyze → improve; returns all three."""
        self.cycle += 1
        relation = self.pipeline.manufacture(report_day=today)
        measurement = self.measure(
            relation, today=today, truth=truth, key_column=key_column
        )
        analysis = self.analyze(measurement, inspection_budget)
        changes = self.improve(
            analysis, replacement_sources, replacement_methods
        )
        return measurement, analysis, changes

    def render_history(self) -> str:
        """Cycle-over-cycle summary."""
        lines = ["TDQM history"]
        for measurement in self.measurements:
            lines.append("  " + measurement.summary())
        for change in self.change_log:
            lines.append("  * " + change)
        return "\n".join(lines)
