"""Front-end data-entry controls (§3.3 / §4).

The paper lists "front-end rules to enforce domain or update
constraints" among the inspection mechanisms a quality view may demand.
This module implements a small validation framework used at data-entry
time, *before* values reach the database: rules examine a candidate
record and report violations; an :class:`EntryController` applies a
rule set and keeps rejection statistics that feed the SPC layer.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping, Optional, Sequence

from repro.errors import InspectionError


@dataclass(frozen=True)
class Violation:
    """One rule violation found in a candidate record."""

    rule: str
    field: str
    message: str


class EntryRule:
    """Base class for data-entry rules."""

    def __init__(self, name: str) -> None:
        if not name:
            raise InspectionError("entry rule must have a name")
        self.name = name

    def check(self, record: Mapping[str, Any]) -> list[Violation]:
        """Return violations (empty list = record passes this rule)."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class RequiredFieldRule(EntryRule):
    """Named fields must be present and non-None."""

    def __init__(self, name: str, fields: Sequence[str]) -> None:
        super().__init__(name)
        self.fields = tuple(fields)

    def check(self, record: Mapping[str, Any]) -> list[Violation]:
        return [
            Violation(self.name, field, f"field {field!r} is required")
            for field in self.fields
            if record.get(field) is None
        ]


class RangeRule(EntryRule):
    """A numeric field must fall in [low, high] (None bounds are open)."""

    def __init__(
        self,
        name: str,
        field: str,
        low: Optional[float] = None,
        high: Optional[float] = None,
    ) -> None:
        super().__init__(name)
        if low is None and high is None:
            raise InspectionError(f"range rule {name!r} needs at least one bound")
        self.field = field
        self.low = low
        self.high = high

    def check(self, record: Mapping[str, Any]) -> list[Violation]:
        value = record.get(self.field)
        if value is None:
            return []
        try:
            number = float(value)
        except (TypeError, ValueError):
            return [
                Violation(
                    self.name, self.field, f"value {value!r} is not numeric"
                )
            ]
        if self.low is not None and number < self.low:
            return [
                Violation(
                    self.name,
                    self.field,
                    f"value {number} is below the minimum {self.low}",
                )
            ]
        if self.high is not None and number > self.high:
            return [
                Violation(
                    self.name,
                    self.field,
                    f"value {number} is above the maximum {self.high}",
                )
            ]
        return []


class PatternRule(EntryRule):
    """A string field must match a regular expression."""

    def __init__(self, name: str, field: str, pattern: str) -> None:
        super().__init__(name)
        self.field = field
        self.pattern = re.compile(pattern)

    def check(self, record: Mapping[str, Any]) -> list[Violation]:
        value = record.get(self.field)
        if value is None:
            return []
        if not isinstance(value, str) or not self.pattern.fullmatch(value):
            return [
                Violation(
                    self.name,
                    self.field,
                    f"value {value!r} does not match {self.pattern.pattern!r}",
                )
            ]
        return []


class MembershipRule(EntryRule):
    """A field's value must come from an allowed set."""

    def __init__(self, name: str, field: str, allowed: Iterable[Any]) -> None:
        super().__init__(name)
        self.field = field
        self.allowed = frozenset(allowed)

    def check(self, record: Mapping[str, Any]) -> list[Violation]:
        value = record.get(self.field)
        if value is None or value in self.allowed:
            return []
        return [
            Violation(
                self.name,
                self.field,
                f"value {value!r} is not one of {sorted(self.allowed, key=repr)}",
            )
        ]


class CrossFieldRule(EntryRule):
    """An arbitrary predicate over the whole record."""

    def __init__(
        self,
        name: str,
        predicate: Callable[[Mapping[str, Any]], bool],
        message: str,
        field: str = "*",
    ) -> None:
        super().__init__(name)
        self.predicate = predicate
        self.message = message
        self.field = field

    def check(self, record: Mapping[str, Any]) -> list[Violation]:
        try:
            ok = self.predicate(record)
        except (KeyError, TypeError, ValueError) as exc:
            return [
                Violation(self.name, self.field, f"rule not evaluable: {exc}")
            ]
        if ok:
            return []
        return [Violation(self.name, self.field, self.message)]


class EntryController:
    """Applies a rule set at entry time and keeps rejection statistics."""

    def __init__(self, rules: Iterable[EntryRule] = ()) -> None:
        self._rules: list[EntryRule] = []
        for rule in rules:
            self.add_rule(rule)
        self.accepted = 0
        self.rejected = 0
        self._violation_counts: dict[str, int] = {}

    def add_rule(self, rule: EntryRule) -> None:
        """Register a rule (names must be unique)."""
        if any(r.name == rule.name for r in self._rules):
            raise InspectionError(f"duplicate entry rule name {rule.name!r}")
        self._rules.append(rule)

    @property
    def rules(self) -> tuple[EntryRule, ...]:
        return tuple(self._rules)

    def validate(self, record: Mapping[str, Any]) -> list[Violation]:
        """All violations of the record against every rule."""
        violations: list[Violation] = []
        for rule in self._rules:
            violations.extend(rule.check(record))
        return violations

    def submit(self, record: Mapping[str, Any]) -> tuple[bool, list[Violation]]:
        """Validate and tally: returns (accepted?, violations)."""
        violations = self.validate(record)
        if violations:
            self.rejected += 1
            for violation in violations:
                self._violation_counts[violation.rule] = (
                    self._violation_counts.get(violation.rule, 0) + 1
                )
        else:
            self.accepted += 1
        return (not violations), violations

    @property
    def rejection_rate(self) -> float:
        """Fraction of submissions rejected (0 when nothing submitted)."""
        total = self.accepted + self.rejected
        return self.rejected / total if total else 0.0

    def violation_counts(self) -> dict[str, int]:
        """Per-rule violation tallies (copy)."""
        return dict(self._violation_counts)

    def report(self) -> str:
        """One-paragraph controller report for the administrator."""
        total = self.accepted + self.rejected
        lines = [
            f"Entry controller: {total} submissions, "
            f"{self.accepted} accepted, {self.rejected} rejected "
            f"(rejection rate {self.rejection_rate:.3f})"
        ]
        for rule, count in sorted(self._violation_counts.items()):
            lines.append(f"  rule {rule!r}: {count} violations")
        return "\n".join(lines)
