"""Deriving parameter values and overall data quality scores.

§4 closes with: "The derivation and estimation of quality parameter
values and overall data quality from underlying indicator values
remains an area for further investigation."  This module is that
investigation, built from the paper's own ingredients:

- a :class:`ParameterScorer` derives a *numeric* parameter score in
  [0, 1] for one cell from its indicator values (generalizing the
  boolean mappings of :mod:`repro.core.mapping`);
- a :class:`QualityScorecard` combines several scorers with weights
  into a per-cell composite, then rolls scores up the hierarchy of
  Premise 1.3: cell → column → relation → database;
- rollups carry *coverage* (what fraction of cells were scorable) so an
  impressive average over three scorable cells cannot masquerade as
  database quality.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Optional, Sequence

from repro.errors import AssessmentError
from repro.tagging.cell import QualityCell
from repro.tagging.relation import TaggedRelation

#: A scoring function: (indicator values, context) → score in [0, 1],
#: or None when the cell is not scorable (missing tags).
ScoringFunction = Callable[[Mapping[str, Any], Mapping[str, Any]], Optional[float]]


class ParameterScorer:
    """Derives one parameter's numeric score from a cell's tags.

    Parameters
    ----------
    parameter:
        The quality parameter being scored (e.g. ``"timeliness"``).
    func:
        The scoring function; its return value is clamped to [0, 1].
    uses:
        Indicator names read, for satisfiability documentation.
    doc:
        Human-readable description of the scoring rule.
    """

    def __init__(
        self,
        parameter: str,
        func: ScoringFunction,
        uses: Sequence[str] = (),
        doc: str = "",
    ) -> None:
        if not parameter:
            raise AssessmentError("scorer must name its parameter")
        self.parameter = parameter
        self.func = func
        self.uses = tuple(uses)
        self.doc = doc

    def score(
        self,
        cell: QualityCell,
        context: Optional[Mapping[str, Any]] = None,
    ) -> Optional[float]:
        """Score one cell; None when not scorable."""
        raw = self.func(cell.tags_dict(), dict(context or {}))
        if raw is None:
            return None
        return min(max(float(raw), 0.0), 1.0)

    def __repr__(self) -> str:
        return f"ParameterScorer({self.parameter!r})"


# ---------------------------------------------------------------------------
# Ready-made scorers for the paper's standard indicators
# ---------------------------------------------------------------------------


def timeliness_scorer(shelf_life_days: float) -> ParameterScorer:
    """Timeliness as linear currency decay over creation_time or age."""
    if shelf_life_days <= 0:
        raise AssessmentError("shelf_life_days must be positive")

    def func(tags: Mapping[str, Any], context: Mapping[str, Any]) -> Optional[float]:
        age: Optional[float] = None
        if "age" in tags and tags["age"] is not None:
            try:
                age = float(tags["age"])
            except (TypeError, ValueError):
                # A malformed age tag makes the cell unscorable, not a
                # crash: acquisition feeds do ship junk values.
                return None
        elif "creation_time" in tags and tags["creation_time"] is not None:
            today = context.get("today")
            if today is None:
                return None
            created = tags["creation_time"]
            if isinstance(created, _dt.datetime):
                created = created.date()
            if isinstance(today, _dt.datetime):
                today = today.date()
            try:
                age = (today - created).days
            except TypeError:
                return None
        if age is None:
            return None
        # A future-dated creation_time (clock skew between sources)
        # yields a negative age; clamp both ends of the [0, 1] contract.
        return min(1.0, max(0.0, 1.0 - age / shelf_life_days))

    return ParameterScorer(
        "timeliness",
        func,
        uses=("age", "creation_time"),
        doc=f"linear decay over a {shelf_life_days}-day shelf life",
    )


def _check_ratings(name: str, ratings: Mapping[str, float],
                   default: Optional[float]) -> None:
    """Ratings and the default must honor the [0, 1] score contract."""
    for key, rating in ratings.items():
        if not 0.0 <= float(rating) <= 1.0:
            raise AssessmentError(
                f"{name} rating for {key!r} must be in [0, 1], "
                f"got {rating!r}"
            )
    if default is not None and not 0.0 <= float(default) <= 1.0:
        raise AssessmentError(
            f"{name} default must be in [0, 1], got {default!r}"
        )


def credibility_scorer(
    source_ratings: Mapping[str, float],
    default: Optional[float] = None,
) -> ParameterScorer:
    """Credibility from a source-rating table (the WSJ example)."""
    _check_ratings("source", source_ratings, default)

    def func(tags: Mapping[str, Any], _context: Mapping[str, Any]) -> Optional[float]:
        source = tags.get("source")
        if source is None:
            return default
        return source_ratings.get(source, default)

    return ParameterScorer(
        "credibility",
        func,
        uses=("source",),
        doc="rating table over the source indicator",
    )


def collection_accuracy_scorer(
    method_ratings: Mapping[str, float],
    default: Optional[float] = None,
) -> ParameterScorer:
    """Expected accuracy from the collection_method indicator.

    §3.3: "different means of capturing data ... each has inherent
    accuracy implications."  The ratings would come from device
    error-rate studies (1 − error rate).
    """
    _check_ratings("collection method", method_ratings, default)

    def func(tags: Mapping[str, Any], _context: Mapping[str, Any]) -> Optional[float]:
        method = tags.get("collection_method")
        if method is None:
            return default
        return method_ratings.get(method, default)

    return ParameterScorer(
        "accuracy",
        func,
        uses=("collection_method",),
        doc="device-level expected accuracy (1 - error rate)",
    )


def inspection_scorer(certified_value: str = "certified") -> ParameterScorer:
    """Reliability evidence: 1.0 when inspected/certified, 0.5 otherwise."""

    def func(tags: Mapping[str, Any], _context: Mapping[str, Any]) -> Optional[float]:
        inspection = tags.get("inspection")
        if inspection is None:
            return 0.5
        return 1.0 if inspection == certified_value else 0.75

    return ParameterScorer(
        "reliability",
        func,
        uses=("inspection",),
        doc="inspection status as reliability evidence",
    )


# ---------------------------------------------------------------------------
# Rollups
# ---------------------------------------------------------------------------


@dataclass
class ScoreRollup:
    """A score aggregated over some population of cells.

    ``score`` is the mean over scorable cells (None when none were
    scorable); ``coverage`` is the scorable fraction.
    """

    score: Optional[float]
    coverage: float
    scorable: int
    total: int

    def summary(self) -> str:
        score_text = "n/a" if self.score is None else f"{self.score:.3f}"
        return (
            f"score={score_text} coverage={self.coverage:.2f} "
            f"({self.scorable}/{self.total} cells)"
        )


@dataclass
class ColumnScore:
    """Per-parameter and composite rollups for one column."""

    column: str
    parameters: dict[str, ScoreRollup]
    composite: ScoreRollup


@dataclass
class RelationScore:
    """Column scores plus the relation-level composite."""

    relation: str
    columns: dict[str, ColumnScore]
    composite: ScoreRollup

    def render(self) -> str:
        lines = [
            f"Data quality scorecard: {self.relation} "
            f"[{self.composite.summary()}]"
        ]
        for name in sorted(self.columns):
            column = self.columns[name]
            lines.append(f"  {name}: {column.composite.summary()}")
            for parameter in sorted(column.parameters):
                lines.append(
                    f"    {parameter}: "
                    f"{column.parameters[parameter].summary()}"
                )
        return "\n".join(lines)


def _rollup(scores: list[Optional[float]]) -> ScoreRollup:
    present = [s for s in scores if s is not None]
    return ScoreRollup(
        score=sum(present) / len(present) if present else None,
        coverage=len(present) / len(scores) if scores else 0.0,
        scorable=len(present),
        total=len(scores),
    )


class QualityScorecard:
    """Weighted multi-parameter scoring with hierarchical rollups.

    Parameters
    ----------
    scorers:
        The parameter scorers to apply.
    weights:
        Optional per-parameter weights for the composite (default:
        equal).  Weights are renormalized over the parameters actually
        scorable for each cell, so unscorable parameters don't silently
        zero the composite.
    """

    def __init__(
        self,
        scorers: Sequence[ParameterScorer],
        weights: Optional[Mapping[str, float]] = None,
    ) -> None:
        if not scorers:
            raise AssessmentError("scorecard requires at least one scorer")
        names = [s.parameter for s in scorers]
        if len(set(names)) != len(names):
            raise AssessmentError(f"duplicate scorers: {names}")
        self.scorers = tuple(scorers)
        self.weights = dict(weights or {})
        unknown = set(self.weights) - set(names)
        if unknown:
            raise AssessmentError(
                f"weights for unknown parameters: {sorted(unknown)}"
            )
        for parameter, weight in self.weights.items():
            if weight < 0:
                raise AssessmentError(
                    f"negative weight for {parameter!r}"
                )

    def _weight(self, parameter: str) -> float:
        return self.weights.get(parameter, 1.0)

    # -- cell level -----------------------------------------------------------

    def score_cell(
        self,
        cell: QualityCell,
        context: Optional[Mapping[str, Any]] = None,
    ) -> dict[str, Optional[float]]:
        """Per-parameter scores for one cell."""
        return {
            scorer.parameter: scorer.score(cell, context)
            for scorer in self.scorers
        }

    def composite_cell(
        self,
        cell: QualityCell,
        context: Optional[Mapping[str, Any]] = None,
    ) -> Optional[float]:
        """Weighted composite over the scorable parameters (None if none)."""
        scores = self.score_cell(cell, context)
        weighted_sum = 0.0
        weight_sum = 0.0
        for parameter, score in scores.items():
            if score is None:
                continue
            weight = self._weight(parameter)
            weighted_sum += weight * score
            weight_sum += weight
        if weight_sum == 0.0:
            return None
        return weighted_sum / weight_sum

    # -- column / relation level --------------------------------------------------

    def score_column(
        self,
        relation: TaggedRelation,
        column: str,
        context: Optional[Mapping[str, Any]] = None,
    ) -> ColumnScore:
        """Rollups for one column of a tagged relation."""
        relation.schema.column(column)
        per_parameter: dict[str, list[Optional[float]]] = {
            scorer.parameter: [] for scorer in self.scorers
        }
        composites: list[Optional[float]] = []
        for row in relation:
            cell = row[column]
            for parameter, score in self.score_cell(cell, context).items():
                per_parameter[parameter].append(score)
            composites.append(self.composite_cell(cell, context))
        return ColumnScore(
            column=column,
            parameters={
                parameter: _rollup(scores)
                for parameter, scores in per_parameter.items()
            },
            composite=_rollup(composites),
        )

    def score_relation(
        self,
        relation: TaggedRelation,
        columns: Optional[Sequence[str]] = None,
        context: Optional[Mapping[str, Any]] = None,
    ) -> RelationScore:
        """Rollups for a whole relation (tagged columns by default)."""
        names = (
            list(columns)
            if columns is not None
            else list(relation.tag_schema.tagged_columns)
        )
        if not names:
            names = list(relation.schema.column_names)
        column_scores = {
            name: self.score_column(relation, name, context) for name in names
        }
        all_composites: list[Optional[float]] = []
        for row in relation:
            for name in names:
                all_composites.append(
                    self.composite_cell(row[name], context)
                )
        return RelationScore(
            relation=relation.schema.name,
            columns=column_scores,
            composite=_rollup(all_composites),
        )

    def score_database(
        self,
        relations: Mapping[str, TaggedRelation],
        context: Optional[Mapping[str, Any]] = None,
    ) -> dict[str, Any]:
        """Database-level rollup: per-relation scorecards + overall.

        Returns ``{"relations": {name: RelationScore}, "overall":
        ScoreRollup}`` — the top of Premise 1.3's hierarchy.
        """
        relation_scores = {
            name: self.score_relation(relation, context=context)
            for name, relation in relations.items()
        }
        all_cell_scores: list[Optional[float]] = []
        for name, relation in relations.items():
            columns = relation_scores[name].columns
            for row in relation:
                for column in columns:
                    all_cell_scores.append(
                        self.composite_cell(row[column], context)
                    )
        return {
            "relations": relation_scores,
            "overall": _rollup(all_cell_scores),
        }
