"""Immutable point-in-time views of a :class:`~repro.relational.catalog.Database`.

:meth:`Database.snapshot() <repro.relational.catalog.Database.snapshot>`
pins every relation at its current version behind the transaction
manager's write gate and wraps the frozen copies in a
:class:`DatabaseSnapshot`.  The snapshot is a ``Mapping[str, Relation]``,
which is exactly the shape :func:`repro.analysis.query.execute` accepts
as a multi-relation source — so a long analytical query can run against
a snapshot while writers keep mutating the live database, and never
observes a mid-scan write.

Snapshots are cheap: each relation snapshot is a pointer-list copy of
immutable ``Row`` objects, cached until the relation's next mutation,
and partitioned relations reuse untouched shards across generations.
"""

from __future__ import annotations

from typing import Iterator, Mapping

from repro.errors import UnknownRelationError
from repro.relational.relation import Relation


class DatabaseSnapshot(Mapping[str, Relation]):
    """A frozen name → relation mapping pinned at one catalog version.

    Every relation in the mapping is frozen
    (:attr:`Relation.frozen <repro.relational.relation.Relation.frozen>`
    is True); mutating one raises
    :class:`~repro.errors.SnapshotWriteError`.

    Example
    -------
    >>> from repro.relational.catalog import Database
    >>> from repro.relational.schema import schema
    >>> db = Database("corp")
    >>> _ = db.create_relation(schema("t", [("a", "INT")]))
    >>> snap = db.snapshot()
    >>> _ = db.insert("t", {"a": 1})
    >>> len(snap["t"]), len(db.relation("t"))
    (0, 1)
    """

    def __init__(
        self,
        name: str,
        catalog_version: int,
        relations: Mapping[str, Relation],
    ) -> None:
        self.name = name
        self._catalog_version = catalog_version
        self._relations = dict(relations)

    @property
    def catalog_version(self) -> int:
        """The live database's catalog version when this snapshot was taken."""
        return self._catalog_version

    def relation(self, name: str) -> Relation:
        """Look up a relation by name (parity with :class:`Database`)."""
        try:
            return self._relations[name]
        except KeyError:
            raise UnknownRelationError(
                f"snapshot of database {self.name!r} has no relation "
                f"{name!r} (relations: {sorted(self._relations)})"
            ) from None

    @property
    def relation_names(self) -> tuple[str, ...]:
        return tuple(sorted(self._relations))

    # -- Mapping protocol ------------------------------------------------------

    def __getitem__(self, name: str) -> Relation:
        return self.relation(name)

    def __iter__(self) -> Iterator[str]:
        return iter(self._relations)

    def __len__(self) -> int:
        return len(self._relations)

    def __repr__(self) -> str:
        return (
            f"DatabaseSnapshot({self.name!r}, "
            f"catalog_version={self._catalog_version}, "
            f"relations={list(self.relation_names)})"
        )
