"""A fluent query builder over the relational algebra.

:class:`Query` composes algebra operators lazily and executes them with
:meth:`Query.run`.  It exists so examples and the quality-filtering layer
can express "SELECT ... WHERE ... ORDER BY ..." pipelines readably:

>>> from repro.relational.schema import schema
>>> from repro.relational.relation import Relation
>>> r = Relation.from_tuples(
...     schema("t", [("name", "STR"), ("n", "INT")]),
...     [("a", 3), ("b", 1), ("c", 2)])
>>> Query(r).where(lambda row: row["n"] > 1).order_by("n").run().to_dicts()
[{'name': 'c', 'n': 2}, {'name': 'a', 'n': 3}]
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence

from repro.errors import QueryError
from repro.relational import algebra
from repro.relational.relation import Relation, Row

Predicate = Callable[[Row], bool]


class Query:
    """A lazily-composed pipeline of relational operators.

    Query objects are immutable: each method returns a new Query whose
    plan extends the receiver's.  ``run()`` executes the plan.
    """

    def __init__(
        self,
        source: Relation,
        _plan: Optional[tuple[Callable[[Relation], Relation], ...]] = None,
    ) -> None:
        self._source = source
        self._plan: tuple[Callable[[Relation], Relation], ...] = _plan or ()

    def _extend(self, step: Callable[[Relation], Relation]) -> "Query":
        return Query(self._source, self._plan + (step,))

    # -- operators -----------------------------------------------------------

    def where(self, predicate: Predicate) -> "Query":
        """Filter rows (σ)."""
        return self._extend(lambda rel: algebra.select(rel, predicate))

    def eq(self, **equalities: Any) -> "Query":
        """Filter rows by column equalities (convenience for where)."""
        return self.where(
            lambda row: all(row[k] == v for k, v in equalities.items())
        )

    def select(self, *columns: str) -> "Query":
        """Project to the named columns (π)."""
        if not columns:
            raise QueryError("select() requires at least one column")
        return self._extend(lambda rel: algebra.project(rel, list(columns)))

    def rename(
        self,
        column_mapping: Optional[dict[str, str]] = None,
        new_name: Optional[str] = None,
    ) -> "Query":
        """Rename columns and/or the relation (ρ)."""
        return self._extend(
            lambda rel: algebra.rename(rel, column_mapping, new_name)
        )

    def distinct(self) -> "Query":
        """Remove duplicate rows (δ)."""
        return self._extend(algebra.distinct)

    def order_by(self, *columns: str, descending: bool = False) -> "Query":
        """Sort by the given columns."""
        return self._extend(
            lambda rel: algebra.sort(rel, list(columns), descending=descending)
        )

    def limit(self, n: int) -> "Query":
        """Keep the first ``n`` rows."""
        return self._extend(lambda rel: algebra.limit(rel, n))

    def join(
        self,
        other: Relation,
        on: Optional[Sequence[tuple[str, str]]] = None,
    ) -> "Query":
        """Join with another relation: natural join if ``on`` is omitted."""
        if on is None:
            return self._extend(lambda rel: algebra.natural_join(rel, other))
        return self._extend(lambda rel: algebra.equi_join(rel, other, on))

    def extend(
        self, column_name: str, domain: Any, compute: Callable[[Row], Any]
    ) -> "Query":
        """Add a computed column (ε)."""
        return self._extend(
            lambda rel: algebra.extend(rel, column_name, domain, compute)
        )

    def group_by(
        self,
        columns: Sequence[str],
        **aggregations: tuple[str, str],
    ) -> "Query":
        """Group and aggregate (γ).

        Keyword arguments map output column → (aggregate name, input column):

        >>> # Query(r).group_by(["dept"], headcount=("count", "emp_id"))
        """
        return self._extend(
            lambda rel: algebra.aggregate(rel, list(columns), dict(aggregations))
        )

    # -- execution -------------------------------------------------------------

    def run(self) -> Relation:
        """Execute the plan and return the result relation."""
        result = self._source
        for step in self._plan:
            result = step(result)
        return result

    def count(self) -> int:
        """Execute and return the row count."""
        return len(self.run())

    def rows(self) -> tuple[Row, ...]:
        """Execute and return the rows."""
        return self.run().rows

    def to_dicts(self) -> list[dict[str, Any]]:
        """Execute and return rows as plain dicts."""
        return self.run().to_dicts()

    def __repr__(self) -> str:
        return f"Query({self._source.schema.name!r}, {len(self._plan)} steps)"
