"""Columnar value storage: array-per-column mirrors of base relations.

The row store (:class:`~repro.relational.relation.Relation`) keeps one
``Row`` object per tuple — the right shape for OLTP-style mutation and
for operators that genuinely need rows.  Scan-heavy query pipelines
want the transpose: one contiguous Python list per *column*, so a
filter touches a single array instead of calling a getter closure on
every row object, and rows are materialized late, only for the
survivors.

:class:`ColumnarRelation` is that transpose, kept as a side-table of a
live relation exactly like the columnar *tag* store
(:class:`~repro.tagging.columnar.ColumnarTagStore`) is for tags: built
lazily through :meth:`Relation.columnar_store`, cached against the
relation's mutation counter, and maintained through the shared array
codec (:mod:`repro.relational.arrays`) on store-mediated appends and
deletes.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence

from repro.errors import SchemaError
from repro.obs import metrics as _obs_metrics
from repro.relational import arrays as _codec
from repro.relational.relation import Relation, Row
from repro.relational.schema import RelationSchema


def _record_build(rows: int) -> None:
    """Report one store build into the global registry (enabled only)."""
    registry = _obs_metrics.global_registry()
    registry.counter(
        "columnar.relation_builds",
        "ColumnarRelation stores built from row data",
    ).inc()
    registry.counter(
        "columnar.relation_rows_transposed",
        "rows transposed into column arrays",
    ).inc(rows)


class ColumnarRelation:
    """Aligned per-column value arrays over a backing relation.

    The arrays are position-aligned with ``relation.row_batch()``: row
    ``i``'s value for column ``c`` is ``column(c)[i]``.  Mutate through
    the store (:meth:`append` / :meth:`delete`) to keep that alignment;
    mutating the relation directly is detected by :meth:`check_aligned`
    — and by the version-gated cache in
    :meth:`Relation.columnar_store`, which simply rebuilds.
    """

    def __init__(self, relation: Relation) -> None:
        self.relation = relation
        self._arrays: dict[str, list[Any]] = {
            name: [] for name in relation.schema.column_names
        }

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_relation(cls, relation: Relation) -> "ColumnarRelation":
        """Transpose a row store into column arrays (one pass)."""
        store = cls(relation)
        rows = relation.row_batch()
        if rows:
            names = relation.schema.column_names
            for name, values in zip(names, zip(*(r.values_tuple() for r in rows))):
                store._arrays[name] = list(values)
        if _obs_metrics.enabled():
            _record_build(len(rows))
        return store

    # -- access ----------------------------------------------------------------

    @property
    def schema(self) -> RelationSchema:
        return self.relation.schema

    def __len__(self) -> int:
        return len(self.relation)

    def column(self, name: str) -> list[Any]:
        """One column's aligned value array (treat as read-only)."""
        try:
            return self._arrays[name]
        except KeyError:
            self.relation.schema.column(name)  # raises UnknownColumnError
            raise  # pragma: no cover - schema.column always raises first

    def column_arrays(self) -> list[list[Any]]:
        """Every column array, in schema order."""
        return [
            self._arrays[name] for name in self.relation.schema.column_names
        ]

    # -- mutation --------------------------------------------------------------

    def append(self, row: Row | dict[str, Any]) -> Row:
        """Insert into the backing relation and extend every array."""
        self.check_aligned()
        inserted = self.relation.insert(row)
        for array, value in zip(
            self.column_arrays(), inserted.values_tuple()
        ):
            array.append(value)
        self._refresh_cache()
        return inserted

    def delete(self, predicate: Callable[[Row], bool]) -> int:
        """Delete matching rows; every array drops the same positions."""
        self.check_aligned()
        rows = self.relation.row_batch()
        keep = _codec.keep_indices(rows, predicate)
        removed = len(rows) - len(keep)
        if not removed:
            return 0
        self.relation._replace_rows(_codec.gather(rows, keep))
        _codec.compact_in_place(self._arrays, keep)
        self._refresh_cache()
        return removed

    def _refresh_cache(self) -> None:
        """Re-validate the owner's cache after a store-mediated mutation.

        Mutating through the store keeps the arrays aligned, so when
        this store *is* the relation's cached columnar store, the cache
        entry is moved to the new version instead of being rebuilt on
        the next query.
        """
        cached = self.relation._columnar_cache
        if cached is not None and cached[1] is self:
            self.relation._columnar_cache = (self.relation.version, self)

    def check_aligned(self) -> None:
        """Raise if the backing relation's length diverges from any array."""
        divergence = _codec.misaligned(len(self.relation), self._arrays)
        if divergence is not None:
            name, length = divergence
            raise SchemaError(
                f"columnar store is out of sync with its backing relation "
                f"{self.relation.schema.name!r}: relation has "
                f"{len(self.relation)} rows but column array {name!r} has "
                f"{length} entries; mutate through the store "
                f"(append/delete), not the relation directly"
            )

    # -- materialization -------------------------------------------------------

    def materialize(
        self, indices: Optional[Sequence[int]] = None
    ) -> list[Row]:
        """Rows for the selected positions (all rows when ``None``).

        The late-materialization step: ``Row`` objects are built only
        here, from already-validated column values, via the trusted
        constructor.
        """
        schema = self.relation.schema
        make = Row._from_validated
        columns = self.column_arrays()
        if indices is None:
            return [make(schema, values) for values in zip(*columns)]
        gathered = [_codec.gather(array, indices) for array in columns]
        return [make(schema, values) for values in zip(*gathered)]

    def __repr__(self) -> str:
        return (
            f"ColumnarRelation({self.relation.schema.name}, "
            f"{len(self.relation)} rows, {len(self._arrays)} column arrays)"
        )
