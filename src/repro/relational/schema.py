"""Relation schemas: named, typed, keyed column lists."""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Optional, Sequence

from repro.errors import SchemaError, UnknownColumnError
from repro.relational.types import Domain, domain_by_name


class Column:
    """A named, typed column of a relation schema.

    Parameters
    ----------
    name:
        Column name; must be a non-empty identifier-like string.
    domain:
        A :class:`~repro.relational.types.Domain` or the name of a
        built-in domain (e.g. ``"INT"``).
    doc:
        Optional human-readable description, carried into generated
        documentation (the quality-requirements specification references
        column docs).
    """

    __slots__ = ("name", "domain", "doc")

    def __init__(self, name: str, domain: Domain | str, doc: str = "") -> None:
        if not name or not isinstance(name, str):
            raise SchemaError(f"invalid column name {name!r}")
        self.name = name
        self.domain = domain_by_name(domain) if isinstance(domain, str) else domain
        self.doc = doc

    def __repr__(self) -> str:
        return f"Column({self.name}: {self.domain.name})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Column)
            and other.name == self.name
            and other.domain == self.domain
        )

    def __hash__(self) -> int:
        return hash(("Column", self.name, self.domain))

    def renamed(self, new_name: str) -> "Column":
        """Return a copy of this column under a new name."""
        return Column(new_name, self.domain, self.doc)


class RelationSchema:
    """An ordered collection of columns with an optional primary key.

    Schemas are immutable; transformation methods return new schemas.
    """

    def __init__(
        self,
        name: str,
        columns: Sequence[Column],
        key: Optional[Sequence[str]] = None,
        doc: str = "",
    ) -> None:
        if not name:
            raise SchemaError("relation schema must have a name")
        if not columns:
            raise SchemaError(f"relation {name!r} must have at least one column")
        names = [c.name for c in columns]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise SchemaError(
                f"relation {name!r} has duplicate column names: {sorted(duplicates)}"
            )
        self.name = name
        self.columns: tuple[Column, ...] = tuple(columns)
        self.doc = doc
        self._by_name = {c.name: c for c in self.columns}
        # Cached name→position map: row lookups, join-key extraction and
        # projections are all O(1) per column instead of a linear scan.
        self._names: tuple[str, ...] = tuple(c.name for c in self.columns)
        self._positions: dict[str, int] = {
            n: i for i, n in enumerate(self._names)
        }
        if key is not None:
            missing = [k for k in key if k not in self._by_name]
            if missing:
                raise SchemaError(
                    f"key columns {missing} are not columns of relation {name!r}"
                )
            if len(set(key)) != len(key):
                raise SchemaError(f"key of relation {name!r} has duplicate columns")
        self.key: Optional[tuple[str, ...]] = tuple(key) if key else None

    # -- introspection ------------------------------------------------------

    @property
    def column_names(self) -> tuple[str, ...]:
        return self._names

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self) -> Iterator[Column]:
        return iter(self.columns)

    def __contains__(self, name: object) -> bool:
        return name in self._by_name

    def __repr__(self) -> str:
        cols = ", ".join(f"{c.name}:{c.domain.name}" for c in self.columns)
        key = f" key={list(self.key)}" if self.key else ""
        return f"RelationSchema({self.name}[{cols}]{key})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, RelationSchema)
            and other.name == self.name
            and other.columns == self.columns
            and other.key == self.key
        )

    def __hash__(self) -> int:
        return hash(("RelationSchema", self.name, self.columns, self.key))

    def column(self, name: str) -> Column:
        """Return the column named ``name`` or raise UnknownColumnError."""
        try:
            return self._by_name[name]
        except KeyError:
            raise UnknownColumnError(
                f"relation {self.name!r} has no column {name!r} "
                f"(columns: {list(self.column_names)})"
            ) from None

    def position(self, name: str) -> int:
        """O(1) positional index of the named column."""
        try:
            return self._positions[name]
        except KeyError:
            raise UnknownColumnError(
                f"relation {self.name!r} has no column {name!r} "
                f"(columns: {list(self._names)})"
            ) from None

    def positions_of(self, names: Sequence[str]) -> tuple[int, ...]:
        """Positions of several columns (validates each name)."""
        return tuple(self.position(n) for n in names)

    def index_of(self, name: str) -> int:
        """Return the positional index of the named column."""
        return self.position(name)

    def validate_values(self, values: dict[str, Any]) -> dict[str, Any]:
        """Validate and coerce a full row's values against the schema.

        Missing columns are filled with ``None``; unknown columns raise.
        """
        unknown = set(values) - set(self.column_names)
        if unknown:
            raise UnknownColumnError(
                f"values reference unknown columns {sorted(unknown)} "
                f"of relation {self.name!r}"
            )
        return {
            c.name: c.domain.validate(values.get(c.name)) for c in self.columns
        }

    # -- schema transformations --------------------------------------------

    def project(self, names: Sequence[str], new_name: Optional[str] = None) -> "RelationSchema":
        """Return a schema keeping only ``names`` (in the given order)."""
        cols = [self.column(n) for n in names]
        key = self.key if self.key and all(k in names for k in self.key) else None
        return RelationSchema(new_name or self.name, cols, key=key, doc=self.doc)

    def rename_columns(self, mapping: dict[str, str]) -> "RelationSchema":
        """Return a schema with columns renamed per ``mapping``."""
        for old in mapping:
            self.column(old)
        cols = [
            c.renamed(mapping[c.name]) if c.name in mapping else c
            for c in self.columns
        ]
        key = (
            tuple(mapping.get(k, k) for k in self.key) if self.key else None
        )
        return RelationSchema(self.name, cols, key=key, doc=self.doc)

    def renamed(self, new_name: str) -> "RelationSchema":
        """Return the same schema under a new relation name."""
        return RelationSchema(new_name, self.columns, key=self.key, doc=self.doc)

    def with_key(self, key: Sequence[str]) -> "RelationSchema":
        """Return a copy of this schema with the given primary key."""
        return RelationSchema(self.name, self.columns, key=key, doc=self.doc)

    def concat_maps(
        self, other: "RelationSchema"
    ) -> tuple[dict[str, str], dict[str, str]]:
        """Column-name mappings used when concatenating two schemas.

        Overlapping column names are qualified as ``relname.column``; in
        a self-join (equal relation names) the right side is qualified
        with ``relname#2`` to keep output names unique.
        """
        overlap = set(self.column_names) & set(other.column_names)
        right_prefix = other.name if other.name != self.name else f"{other.name}#2"
        left_map = {
            c: (f"{self.name}.{c}" if c in overlap else c)
            for c in self.column_names
        }
        right_map = {
            c: (f"{right_prefix}.{c}" if c in overlap else c)
            for c in other.column_names
        }
        return left_map, right_map

    def concat(self, other: "RelationSchema", new_name: str) -> "RelationSchema":
        """Return the concatenation of two schemas (for products/joins).

        Overlapping column names are qualified as ``relname.column``
        (``relname#2.column`` on the right side of a self-join).
        """
        left_map, right_map = self.concat_maps(other)
        left_cols = [c.renamed(left_map[c.name]) for c in self.columns]
        right_cols = [c.renamed(right_map[c.name]) for c in other.columns]
        return RelationSchema(new_name, left_cols + right_cols)

    def union_compatible_with(self, other: "RelationSchema") -> bool:
        """True if both schemas have the same column names and domains."""
        return len(self.columns) == len(other.columns) and all(
            a.name == b.name and a.domain == b.domain
            for a, b in zip(self.columns, other.columns)
        )

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Serialize to a plain dict (JSON-compatible)."""
        return {
            "name": self.name,
            "doc": self.doc,
            "columns": [
                {"name": c.name, "domain": c.domain.name, "doc": c.doc}
                for c in self.columns
            ],
            "key": list(self.key) if self.key else None,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "RelationSchema":
        """Deserialize a schema produced by :meth:`to_dict`."""
        columns = [
            Column(c["name"], c["domain"], c.get("doc", ""))
            for c in data["columns"]
        ]
        return cls(
            data["name"], columns, key=data.get("key"), doc=data.get("doc", "")
        )


def schema(
    name: str,
    columns: Iterable[tuple[str, Domain | str]] | dict[str, Domain | str],
    key: Optional[Sequence[str]] = None,
    doc: str = "",
) -> RelationSchema:
    """Convenience constructor: build a schema from (name, domain) pairs.

    >>> s = schema("customer", [("co_name", "STR"), ("employees", "INT")],
    ...            key=["co_name"])
    >>> s.column_names
    ('co_name', 'employees')
    """
    if isinstance(columns, dict):
        pairs = list(columns.items())
    else:
        pairs = list(columns)
    return RelationSchema(
        name, [Column(n, d) for n, d in pairs], key=key, doc=doc
    )
