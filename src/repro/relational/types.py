"""Column domains (data types) for the relational engine.

A :class:`Domain` validates and coerces Python values into the canonical
representation stored in relations.  ``None`` is handled uniformly: every
domain admits ``None`` (SQL-style NULL); nullability is enforced
separately by :class:`~repro.relational.constraints.NotNullConstraint`.
"""

from __future__ import annotations

import datetime as _dt
from typing import Any, Callable, Optional

from repro.errors import DomainError


class Domain:
    """A typed domain of atomic values.

    Parameters
    ----------
    name:
        Human-readable domain name, e.g. ``"INT"``.
    pytypes:
        Tuple of Python types whose instances belong to the domain.
    coerce:
        Optional function attempting to convert a foreign value into the
        domain; it should raise ``ValueError``/``TypeError`` on failure.
    """

    __slots__ = ("name", "pytypes", "excludes", "_coerce")

    def __init__(
        self,
        name: str,
        pytypes: tuple[type, ...],
        coerce: Optional[Callable[[Any], Any]] = None,
        excludes: tuple[type, ...] = (),
    ) -> None:
        self.name = name
        self.pytypes = pytypes
        self.excludes = excludes
        self._coerce = coerce

    def __repr__(self) -> str:
        return f"Domain({self.name})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Domain) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("Domain", self.name))

    def contains(self, value: Any) -> bool:
        """Return True if ``value`` is already a canonical member."""
        if value is None:
            return True
        # bool is a subclass of int; keep INT and BOOL disjoint.
        if self.name != "BOOL" and isinstance(value, bool):
            return bool in self.pytypes
        if self.excludes and isinstance(value, self.excludes):
            return False
        return isinstance(value, self.pytypes)

    def validate(self, value: Any) -> Any:
        """Coerce ``value`` into the domain or raise :class:`DomainError`.

        Returns the canonical representation (which may differ from the
        input, e.g. an ISO date string becomes a ``datetime.date``).
        """
        if value is None or self.contains(value):
            return value
        if self._coerce is not None:
            try:
                coerced = self._coerce(value)
            except (ValueError, TypeError) as exc:
                raise DomainError(
                    f"value {value!r} is not coercible to domain {self.name}"
                ) from exc
            if self.contains(coerced):
                return coerced
        raise DomainError(f"value {value!r} does not belong to domain {self.name}")


def _coerce_int(value: Any) -> int:
    if isinstance(value, bool):
        raise TypeError("bool is not an INT")
    if isinstance(value, float) and not value.is_integer():
        raise ValueError(f"{value} has a fractional part")
    return int(value)


def _coerce_float(value: Any) -> float:
    if isinstance(value, bool):
        raise TypeError("bool is not a FLOAT")
    return float(value)


def _coerce_date(value: Any) -> _dt.date:
    if isinstance(value, _dt.datetime):
        return value.date()
    if isinstance(value, str):
        return _dt.date.fromisoformat(value)
    raise TypeError(f"cannot coerce {type(value).__name__} to DATE")


def _coerce_datetime(value: Any) -> _dt.datetime:
    if isinstance(value, _dt.date) and not isinstance(value, _dt.datetime):
        return _dt.datetime(value.year, value.month, value.day)
    if isinstance(value, str):
        return _dt.datetime.fromisoformat(value)
    if isinstance(value, (int, float)):
        return _dt.datetime.fromtimestamp(float(value), tz=_dt.timezone.utc).replace(
            tzinfo=None
        )
    raise TypeError(f"cannot coerce {type(value).__name__} to DATETIME")


def _coerce_bool(value: Any) -> bool:
    if isinstance(value, str):
        lowered = value.strip().lower()
        if lowered in ("true", "t", "yes", "1"):
            return True
        if lowered in ("false", "f", "no", "0"):
            return False
        raise ValueError(f"{value!r} is not a boolean literal")
    if isinstance(value, int) and value in (0, 1):
        return bool(value)
    raise TypeError(f"cannot coerce {type(value).__name__} to BOOL")


INT = Domain("INT", (int,), _coerce_int)
FLOAT = Domain("FLOAT", (float, int), _coerce_float)
STR = Domain("STR", (str,), str)
DATE = Domain("DATE", (_dt.date,), _coerce_date, excludes=(_dt.datetime,))
DATETIME = Domain("DATETIME", (_dt.datetime,), _coerce_datetime)
BOOL = Domain("BOOL", (bool,), _coerce_bool)

#: All built-in domains, by name.
BUILTIN_DOMAINS: dict[str, Domain] = {
    d.name: d for d in (INT, FLOAT, STR, DATE, DATETIME, BOOL)
}


def domain_by_name(name: str) -> Domain:
    """Look up a built-in domain by its name (case-insensitive)."""
    try:
        return BUILTIN_DOMAINS[name.upper()]
    except KeyError:
        raise DomainError(f"unknown domain name {name!r}") from None
