"""A small transaction manager with rollback and a write-ahead journal.

The paper cites transaction management as one of the classical tools that
prevent data *corruption* (§1.1).  The administrator's "electronic trail"
(§4) additionally wants every modification attributable and traceable;
the journal kept here feeds :mod:`repro.quality.audit`.

The design is deliberately simple: transactions are serialized (one
writer at a time per manager), undo records are kept in memory, and the
journal is an append-only list of committed operations.
"""

from __future__ import annotations

import contextlib
import itertools
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional

from repro.errors import TransactionError


@dataclass(frozen=True)
class JournalEntry:
    """One committed operation in the write-ahead journal."""

    transaction_id: int
    sequence: int
    operation: str  # "insert" | "delete" | "update"
    relation: str
    before: Optional[dict[str, Any]]
    after: Optional[dict[str, Any]]
    actor: str = ""
    note: str = ""


class Transaction:
    """An open transaction: a list of undo actions plus journal staging.

    Created via :meth:`TransactionManager.begin`; user code usually uses
    the :meth:`TransactionManager.transaction` context manager instead.
    """

    _ACTIVE = "active"
    _COMMITTED = "committed"
    _ABORTED = "aborted"

    def __init__(self, transaction_id: int, manager: "TransactionManager", actor: str) -> None:
        self.transaction_id = transaction_id
        self.actor = actor
        self._manager = manager
        self._undo: list[Callable[[], None]] = []
        self._staged: list[JournalEntry] = []
        self._state = self._ACTIVE
        self._sequence = itertools.count()

    # -- state -------------------------------------------------------------

    @property
    def is_active(self) -> bool:
        return self._state == self._ACTIVE

    def _require_active(self) -> None:
        if self._state != self._ACTIVE:
            raise TransactionError(
                f"transaction {self.transaction_id} is {self._state}, not active"
            )

    # -- recording ------------------------------------------------------------

    def record(
        self,
        operation: str,
        relation: str,
        undo: Callable[[], None],
        before: Optional[dict[str, Any]] = None,
        after: Optional[dict[str, Any]] = None,
        note: str = "",
    ) -> None:
        """Record one applied modification with its undo action."""
        self._require_active()
        self._undo.append(undo)
        self._staged.append(
            JournalEntry(
                transaction_id=self.transaction_id,
                sequence=next(self._sequence),
                operation=operation,
                relation=relation,
                before=before,
                after=after,
                actor=self.actor,
                note=note,
            )
        )

    # -- termination -------------------------------------------------------------

    def commit(self) -> None:
        """Make the transaction's effects durable and journal them."""
        self._require_active()
        self._state = self._COMMITTED
        self._manager._on_commit(self)

    def abort(self) -> None:
        """Undo every recorded modification, newest first.

        A raising undo action must not strand the rest of the rollback:
        every remaining undo still runs (newest first), the manager is
        always released, and the failures are re-raised afterwards as
        one :class:`TransactionError` naming the failed steps (the
        individual exceptions ride along on its ``failures`` attribute).
        """
        self._require_active()
        self._state = self._ABORTED
        failures: list[tuple[JournalEntry, Exception]] = []
        try:
            # record() appends to _undo and _staged in lockstep, so the
            # journal entry at the same position describes each undo.
            for entry, undo in reversed(list(zip(self._staged, self._undo))):
                try:
                    undo()
                except Exception as exc:
                    failures.append((entry, exc))
        finally:
            self._manager._on_finish(self)
        if failures:
            detail = "; ".join(
                f"step {entry.sequence} ({entry.operation} on "
                f"{entry.relation}): {exc}"
                for entry, exc in failures
            )
            error = TransactionError(
                f"abort of transaction {self.transaction_id} failed to undo "
                f"{len(failures)} of {len(self._undo)} step(s): {detail}"
            )
            error.failures = failures
            raise error from failures[0][1]


class TransactionManager:
    """Serialized transaction manager with an append-only journal."""

    def __init__(self) -> None:
        self._next_id = itertools.count(1)
        self._journal: list[JournalEntry] = []
        self._current: Optional[Transaction] = None
        # Guards _current/_owner_thread/_journal.  Condition (over an
        # RLock) so cross-thread begin() can wait for the active writer
        # instead of failing.
        self._cond = threading.Condition()
        self._owner_thread: Optional[int] = None

    # -- lifecycle -------------------------------------------------------------

    def begin(self, actor: str = "") -> Transaction:
        """Start a transaction.  Only one may be active at a time.

        A second ``begin`` from the *same* thread while a transaction is
        active raises :class:`TransactionError` (nested transactions are
        a programming error, and waiting would self-deadlock).  A
        ``begin`` from a *different* thread blocks until the active
        transaction commits or aborts — concurrent writers serialize
        instead of failing.
        """
        me = threading.get_ident()
        with self._cond:
            while self._current is not None and self._current.is_active:
                if self._owner_thread == me:
                    raise TransactionError(
                        f"transaction {self._current.transaction_id} "
                        "is still active"
                    )
                self._cond.wait()
            txn = Transaction(next(self._next_id), self, actor)
            self._current = txn
            self._owner_thread = me
            return txn

    @contextlib.contextmanager
    def exclusive(self) -> Iterator[None]:
        """Hold the write gate without opening a transaction.

        While the context is held no *other* thread can begin (or be
        inside) a transaction; :meth:`Database.snapshot
        <repro.relational.catalog.Database.snapshot>` uses this so a
        snapshot never observes half of a multi-statement transaction
        (e.g. the middle of an ``insert_many`` batch).  Re-entrant for
        the owning thread: a thread holding its own active transaction
        may still snapshot its own in-progress state.
        """
        me = threading.get_ident()
        with self._cond:
            while (
                self._current is not None
                and self._current.is_active
                and self._owner_thread != me
            ):
                self._cond.wait()
            yield

    def transaction(self, actor: str = "") -> "_TransactionContext":
        """Context manager: commit on success, abort on exception.

        >>> manager = TransactionManager()
        >>> with manager.transaction(actor="alice") as txn:
        ...     txn.record("insert", "t", undo=lambda: None, after={"a": 1})
        >>> len(manager.journal)
        1
        """
        return _TransactionContext(self, actor)

    # -- manager callbacks ---------------------------------------------------------

    def _on_commit(self, txn: Transaction) -> None:
        with self._cond:
            self._journal.extend(txn._staged)
        self._on_finish(txn)

    def _on_finish(self, txn: Transaction) -> None:
        with self._cond:
            if self._current is txn:
                self._current = None
                self._owner_thread = None
                self._cond.notify_all()

    # -- journal access ---------------------------------------------------------

    @property
    def journal(self) -> tuple[JournalEntry, ...]:
        """All committed operations, in commit order."""
        with self._cond:
            return tuple(self._journal)

    def entries_for_relation(self, relation: str) -> Iterator[JournalEntry]:
        """Committed operations affecting one relation."""
        return (e for e in self._journal if e.relation == relation)

    def entries_for_transaction(self, transaction_id: int) -> Iterator[JournalEntry]:
        """Committed operations of one transaction."""
        return (e for e in self._journal if e.transaction_id == transaction_id)


class _TransactionContext:
    """Context-manager wrapper produced by TransactionManager.transaction."""

    def __init__(self, manager: TransactionManager, actor: str) -> None:
        self._manager = manager
        self._actor = actor
        self._txn: Optional[Transaction] = None

    def __enter__(self) -> Transaction:
        self._txn = self._manager.begin(self._actor)
        return self._txn

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        assert self._txn is not None
        if exc_type is None:
            self._txn.commit()
        elif self._txn.is_active:
            self._txn.abort()
        return False
