"""Relations (tuple stores) and rows.

A :class:`Relation` is a multiset of typed rows conforming to a
:class:`~repro.relational.schema.RelationSchema`.  The engine uses bag
semantics by default (as SQL does); :func:`repro.relational.algebra.distinct`
converts to set semantics explicitly.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Iterable, Iterator, Mapping, Optional, Sequence

from repro.errors import SchemaError, SnapshotWriteError, UnknownColumnError
from repro.relational.partition import PartitionSpec
from repro.relational.schema import RelationSchema


class Row(Mapping[str, Any]):
    """An immutable, schema-ordered row of a relation.

    Rows behave as read-only mappings from column name to value and also
    support positional access through :meth:`at`.
    """

    __slots__ = ("_schema", "_values")

    def __init__(self, schema: RelationSchema, values: dict[str, Any]) -> None:
        self._schema = schema
        validated = schema.validate_values(values)
        self._values = tuple(validated[name] for name in schema.column_names)

    @classmethod
    def _from_validated(
        cls, schema: RelationSchema, values: tuple[Any, ...]
    ) -> "Row":
        """Trusted constructor: ``values`` must already be validated
        members of the schema's domains, in schema order.  Used by the
        algebra's fast path to move rows without re-validation."""
        row = object.__new__(cls)
        row._schema = schema
        row._values = values
        return row

    # -- Mapping interface ---------------------------------------------------

    def __getitem__(self, name: str) -> Any:
        try:
            return self._values[self._schema._positions[name]]
        except KeyError:
            raise UnknownColumnError(
                f"row of {self._schema.name!r} has no column {name!r}"
            ) from None

    def __iter__(self) -> Iterator[str]:
        return iter(self._schema.column_names)

    def __len__(self) -> int:
        return len(self._values)

    # -- extras ----------------------------------------------------------------

    @property
    def schema(self) -> RelationSchema:
        return self._schema

    def at(self, index: int) -> Any:
        """Positional access to the row's values."""
        return self._values[index]

    def values_tuple(self) -> tuple[Any, ...]:
        """The row's values in schema order, as a hashable tuple."""
        return self._values

    def to_dict(self) -> dict[str, Any]:
        """A plain dict copy of the row."""
        return dict(zip(self._schema.column_names, self._values))

    def replace(self, **updates: Any) -> "Row":
        """Return a new row with some values replaced."""
        data = self.to_dict()
        data.update(updates)
        return Row(self._schema, data)

    def key_tuple(self) -> tuple[Any, ...]:
        """The values of the schema's primary-key columns.

        Raises :class:`SchemaError` if the schema declares no key.
        """
        if self._schema.key is None:
            raise SchemaError(
                f"relation {self._schema.name!r} declares no primary key"
            )
        return tuple(self[k] for k in self._schema.key)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Row):
            return (
                self._schema.column_names == other._schema.column_names
                and self._values == other._values
            )
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self._schema.column_names, self._values))

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{n}={v!r}" for n, v in zip(self._schema.column_names, self._values)
        )
        return f"Row({inner})"


class Relation:
    """A named multiset of rows over a fixed schema.

    Relations support mutation (``insert``/``delete``/``update``) so the
    catalog and transaction manager can manage live tables, while the
    algebra in :mod:`repro.relational.algebra` treats them as values and
    always returns fresh relations.
    """

    def __init__(
        self,
        schema: RelationSchema,
        rows: Iterable[Row | dict[str, Any]] = (),
    ) -> None:
        self.schema = schema
        self._rows: list[Row] = []
        #: Mutation counter; bumped by every insert/delete/update so
        #: caches derived from the rows (the columnar store, cached
        #: query plans) can detect staleness cheaply.
        self._version = 0
        self._columnar_cache: Optional[tuple[int, Any]] = None
        #: Partitioning state.  The flat ``_rows`` list stays canonical
        #: (all read accessors are partition-oblivious); ``_partitions``
        #: holds one shard Relation per bucket, each with its own
        #: version-gated columnar cache, so a write to one partition
        #: never invalidates the other shards' stores.
        self._partition_spec: Optional[PartitionSpec] = None
        self._partitions: list["Relation"] = []
        self._partition_position: Optional[int] = None
        #: Bumped by :meth:`repartition`; cached plans pin this so a
        #: layout change forces a replan (see ``sql/plancache.py``).
        self._partition_layout_version = 0
        self._dirty_partitions: set[int] = set()
        #: Mutation lock.  Every write path (and every version-gated
        #: cache build) runs under it so concurrent sessions never lose
        #: a version bump or observe a half-applied mutation; see
        #: DESIGN.md §15 for the locking discipline.  Reentrant because
        #: writers compose (``delete`` → ``_replace_rows``).
        self._lock = threading.RLock()
        #: Version-gated read snapshot (see :meth:`read_snapshot`).
        self._snapshot_cache: Optional[tuple[tuple[int, int], "Relation"]] = None
        #: Frozen relations (read snapshots) reject every mutation.
        self._frozen = False
        for row in rows:
            self.insert(row)

    # -- construction helpers --------------------------------------------------

    @classmethod
    def from_dicts(
        cls, schema: RelationSchema, dicts: Iterable[dict[str, Any]]
    ) -> "Relation":
        """Build a relation from plain dictionaries."""
        return cls(schema, dicts)

    @classmethod
    def from_tuples(
        cls, schema: RelationSchema, tuples: Iterable[Sequence[Any]]
    ) -> "Relation":
        """Build a relation from positional value sequences."""
        names = schema.column_names
        rows = []
        for values in tuples:
            if len(values) != len(names):
                raise SchemaError(
                    f"tuple {values!r} has {len(values)} values; "
                    f"schema {schema.name!r} has {len(names)} columns"
                )
            rows.append(dict(zip(names, values)))
        return cls(schema, rows)

    @classmethod
    def from_rows(
        cls, schema: RelationSchema, rows: Iterable[Row]
    ) -> "Relation":
        """Trusted bulk constructor: ``rows`` must already conform to
        ``schema`` (validated values, matching column order).  The
        algebra operators use this to move already-validated tuples
        without re-validation or dict round-trips."""
        relation = cls(schema)
        relation._replace_rows(list(rows))
        return relation

    def empty_like(self) -> "Relation":
        """An empty relation with the same schema."""
        return Relation(self.schema)

    def copy(self) -> "Relation":
        """A shallow copy (rows are immutable, so this is a full copy)."""
        fresh = Relation(self.schema)
        if self._partition_spec is not None:
            fresh.repartition(self._partition_spec)
        fresh._replace_rows(list(self._rows))
        return fresh

    # -- mutation ---------------------------------------------------------------

    def _as_row(self, row: Row | dict[str, Any]) -> Row:
        if isinstance(row, Row):
            if row.schema.column_names != self.schema.column_names:
                # Re-validate under our schema (supports cross-schema moves).
                return Row(self.schema, row.to_dict())
            return row
        return Row(self.schema, dict(row))

    def _require_mutable(self) -> None:
        if self._frozen:
            raise SnapshotWriteError(
                f"relation {self.schema.name!r} is a frozen read snapshot; "
                f"write to the live relation instead"
            )

    def insert(self, row: Row | dict[str, Any]) -> Row:
        """Insert a row (validated against the schema) and return it."""
        prepared = self._as_row(row)
        with self._lock:
            self._require_mutable()
            self._rows.append(prepared)
            self._version += 1
            if self._partition_spec is not None:
                self._route_insert(prepared)
        return prepared

    def _insert_validated(self, row: Row) -> Row:
        """Append a row that is already valid under this schema.

        Internal fast path for the algebra: skips domain validation and
        coercion, which :meth:`insert` would redo on values that came
        out of another relation with the same domains."""
        with self._lock:
            self._require_mutable()
            self._rows.append(row)
            self._version += 1
            if self._partition_spec is not None:
                self._route_insert(row)
        return row

    def insert_many(self, rows: Iterable[Row | dict[str, Any]]) -> int:
        """Insert many rows; returns the number inserted."""
        count = 0
        for row in rows:
            self.insert(row)
            count += 1
        return count

    def _replace_rows(self, rows: list[Row]) -> None:
        """Swap in a new backing row list (trusted; bumps the version).

        Every wholesale row replacement must flow through here so
        version-gated caches (the columnar store, cached plans) observe
        the mutation — including replacements performed by side-tables
        such as :class:`~repro.tagging.columnar.ColumnarTagStore`.
        """
        with self._lock:
            self._require_mutable()
            self._rows = rows
            self._version += 1
            if self._partition_spec is not None:
                self._redistribute()

    def delete(self, predicate: Callable[[Row], bool]) -> int:
        """Delete all rows matching ``predicate``; return the count removed."""
        with self._lock:
            self._require_mutable()
            if self._partition_spec is None:
                before = len(self._rows)
                self._replace_rows(
                    [r for r in self._rows if not predicate(r)]
                )
                return before - len(self._rows)
            # Partitioned: one predicate pass over the canonical flat
            # list, then surgical per-shard removal so untouched
            # partitions keep their columnar caches (and stay clean for
            # incremental saves).
            dead: set[int] = set()
            kept: list[Row] = []
            for row in self._rows:
                if predicate(row):
                    dead.add(id(row))
                else:
                    kept.append(row)
            removed = len(self._rows) - len(kept)
            self._rows = kept
            self._version += 1
            if not dead:
                return 0
            for bucket, shard in enumerate(self._partitions):
                if any(id(row) in dead for row in shard._rows):
                    shard._replace_rows(
                        [row for row in shard._rows if id(row) not in dead]
                    )
                    self._dirty_partitions.add(bucket)
            return removed

    def update(
        self,
        predicate: Callable[[Row], bool],
        updater: Callable[[Row], dict[str, Any]],
    ) -> int:
        """Replace matching rows with updated copies; return the count.

        ``updater`` receives the old row and returns a dict of column
        updates applied via :meth:`Row.replace`.
        """
        with self._lock:
            self._require_mutable()
            if self._partition_spec is None:
                count = 0
                new_rows = []
                for row in self._rows:
                    if predicate(row):
                        new_rows.append(row.replace(**updater(row)))
                        count += 1
                    else:
                        new_rows.append(row)
                self._replace_rows(new_rows)
                return count
            # Partitioned: replace in the flat list, then patch only the
            # shards that held a matching row.  An update that changes
            # the partition-key value moves the row to its new bucket.
            count = 0
            pending: dict[int, list[Row]] = {}
            new_rows: list[Row] = []
            for row in self._rows:
                if predicate(row):
                    fresh = row.replace(**updater(row))
                    pending.setdefault(id(row), []).append(fresh)
                    new_rows.append(fresh)
                    count += 1
                else:
                    new_rows.append(row)
            self._rows = new_rows
            self._version += 1
            if not count:
                return 0
            spec = self._partition_spec
            position = self._partition_position
            moves: list[tuple[int, Row]] = []
            for bucket, shard in enumerate(self._partitions):
                if not any(id(row) in pending for row in shard._rows):
                    continue
                shard_rows: list[Row] = []
                for row in shard._rows:
                    queue = pending.get(id(row))
                    if not queue:
                        shard_rows.append(row)
                        continue
                    fresh = queue.pop(0)
                    target = spec.bucket_of(fresh.at(position))
                    if target == bucket:
                        shard_rows.append(fresh)
                    else:
                        moves.append((target, fresh))
                shard._replace_rows(shard_rows)
                self._dirty_partitions.add(bucket)
            for target, fresh in moves:
                self._partitions[target]._insert_validated(fresh)
                self._dirty_partitions.add(target)
            return count

    def clear(self) -> None:
        """Remove all rows."""
        self._replace_rows([])

    @property
    def version(self) -> int:
        """Monotonic mutation counter (for cache invalidation)."""
        return self._version

    # -- partitioning ----------------------------------------------------------

    def repartition(self, spec: Optional[PartitionSpec]) -> "Relation":
        """(Re)declare the partition layout; ``None`` drops partitioning.

        Rows are redistributed into ``spec.count`` shard relations (one
        per bucket, all sharing this relation's schema object) and every
        bucket is marked dirty.  Bumps :attr:`partition_layout_version`
        so cached plans pinned to the old layout replan.
        """
        position: Optional[int] = None
        if spec is not None:
            position = self.schema.index_of(spec.column)
        with self._lock:
            self._require_mutable()
            self._partition_spec = spec
            self._partition_position = position
            self._partition_layout_version += 1
            if spec is None:
                self._partitions = []
                self._dirty_partitions = set()
                return self
            self._partitions = [
                Relation(self.schema) for _ in range(spec.count)
            ]
            self._redistribute()
        return self

    def _route_insert(self, row: Row) -> None:
        """Append an already-inserted row to its shard."""
        bucket = self._partition_spec.bucket_of(
            row.at(self._partition_position)
        )
        self._partitions[bucket]._insert_validated(row)
        self._dirty_partitions.add(bucket)

    def _redistribute(self) -> None:
        """Rebuild every shard from the canonical flat row list."""
        spec = self._partition_spec
        position = self._partition_position
        grouped: list[list[Row]] = [[] for _ in range(spec.count)]
        for row in self._rows:
            grouped[spec.bucket_of(row.at(position))].append(row)
        for shard, rows in zip(self._partitions, grouped):
            shard._replace_rows(rows)
        self._dirty_partitions = set(range(spec.count))

    @property
    def partition_spec(self) -> Optional[PartitionSpec]:
        """The declared layout, or ``None`` when unpartitioned."""
        return self._partition_spec

    @property
    def partition_layout_version(self) -> int:
        """Bumped by every :meth:`repartition` (plan-cache pin)."""
        return self._partition_layout_version

    @property
    def dirty_partitions(self) -> frozenset[int]:
        """Buckets mutated since :meth:`mark_partitions_clean`."""
        return frozenset(self._dirty_partitions)

    def mark_partitions_clean(self) -> None:
        """Reset dirty tracking (called after a successful save)."""
        self._dirty_partitions.clear()

    def partition(self, bucket: int) -> "Relation":
        """The shard relation backing one bucket."""
        return self._partitions[bucket]

    def partitions(self) -> list["Relation"]:
        """All shard relations, in bucket order."""
        return list(self._partitions)

    def columnar_store(self):
        """The relation's columnar value store, built lazily and cached.

        Mirrors :meth:`repro.tagging.relation.TaggedRelation.columnar_store`:
        the store is rebuilt whenever :attr:`version` shows the rows
        changed since the last build, so batch execution paths can scan
        contiguous per-column arrays without ever reading stale data.
        """
        cached = self._columnar_cache
        if cached is not None and cached[0] == self._version:
            return cached[1]
        from repro.relational.columnar import ColumnarRelation

        # Built under the mutation lock so two sessions racing on a cold
        # cache agree on one store (and neither sees a half-built one).
        with self._lock:
            cached = self._columnar_cache
            if cached is not None and cached[0] == self._version:
                return cached[1]
            store = ColumnarRelation.from_relation(self)
            self._columnar_cache = (self._version, store)
            return store

    # -- snapshot reads --------------------------------------------------------

    @property
    def frozen(self) -> bool:
        """True for read snapshots, which reject every mutation."""
        return self._frozen

    def read_snapshot(self) -> "Relation":
        """A frozen copy-on-write snapshot of the current rows.

        The snapshot is a plain :class:`Relation` sharing this
        relation's schema object and (immutable) ``Row`` objects — the
        copy is a pointer-list copy, never a row copy — so queries run
        against it exactly as against the live relation, but no later
        write is ever visible through it.  Snapshots are *frozen*:
        mutating one raises :class:`~repro.errors.SnapshotWriteError`.

        Copy-on-write is version-gated: the snapshot is cached and
        reused until the next mutation, so pinning is O(1) on an
        unchanged relation.  Partition layouts carry over with
        per-shard snapshot reuse — a write to one bucket rebuilds only
        that shard's snapshot, and every untouched shard keeps its
        (lazily built) columnar store across snapshot generations.
        """
        with self._lock:
            if self._frozen:
                return self
            token = (self._version, self._partition_layout_version)
            cached = self._snapshot_cache
            if cached is not None and cached[0] == token:
                return cached[1]
            snapshot = Relation(self.schema)
            snapshot._rows = list(self._rows)
            snapshot._partition_spec = self._partition_spec
            snapshot._partition_position = self._partition_position
            snapshot._partition_layout_version = (
                self._partition_layout_version
            )
            if self._partition_spec is not None:
                snapshot._partitions = [
                    shard.read_snapshot() for shard in self._partitions
                ]
            snapshot._frozen = True
            self._snapshot_cache = (token, snapshot)
            return snapshot

    # -- access -------------------------------------------------------------------

    @property
    def rows(self) -> tuple[Row, ...]:
        """All rows, in insertion order (immutable snapshot)."""
        return tuple(self._rows)

    def row_batch(self) -> list[Row]:
        """The backing row list, *not* a copy (treat as read-only).

        Batch execution paths iterate relations many times; this avoids
        the per-call tuple copy :attr:`rows` makes.  Callers must not
        mutate the returned list.
        """
        return self._rows

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __contains__(self, row: object) -> bool:
        return row in self._rows

    def __eq__(self, other: object) -> bool:
        """Bag equality: same schema columns and same row multiset."""
        if not isinstance(other, Relation):
            return NotImplemented
        if self.schema.column_names != other.schema.column_names:
            return False
        return sorted(
            (r.values_tuple() for r in self._rows), key=repr
        ) == sorted((r.values_tuple() for r in other._rows), key=repr)

    def __repr__(self) -> str:
        return f"Relation({self.schema.name}, {len(self._rows)} rows)"

    def column_values(self, name: str) -> list[Any]:
        """All values of one column, in row order."""
        index = self.schema.index_of(name)
        return [row.at(index) for row in self._rows]

    def find(self, predicate: Callable[[Row], bool]) -> Optional[Row]:
        """The first row matching ``predicate``, or None."""
        for row in self._rows:
            if predicate(row):
                return row
        return None

    def lookup(self, **equalities: Any) -> list[Row]:
        """All rows whose named columns equal the given values."""
        for name in equalities:
            self.schema.column(name)
        return [
            row
            for row in self._rows
            if all(row[n] == v for n, v in equalities.items())
        ]

    # -- serialization / display ---------------------------------------------------

    def to_dicts(self) -> list[dict[str, Any]]:
        """All rows as plain dictionaries."""
        return [row.to_dict() for row in self._rows]

    def to_dict(self) -> dict[str, Any]:
        """Serialize schema and data (values stringified for JSON safety)."""
        return {
            "schema": self.schema.to_dict(),
            "rows": [
                {k: _serialize_value(v) for k, v in row.to_dict().items()}
                for row in self._rows
            ],
        }

    def render(self, max_rows: Optional[int] = None, title: Optional[str] = None) -> str:
        """Render the relation as an aligned text table (paper style).

        >>> from repro.relational.schema import schema
        >>> r = Relation.from_tuples(
        ...     schema("t", [("a", "STR"), ("b", "INT")]), [("x", 1)])
        >>> print(r.render())
        a | b
        --+--
        x | 1
        """
        names = list(self.schema.column_names)
        shown = self._rows if max_rows is None else self._rows[:max_rows]
        grid = [names] + [
            ["" if row[n] is None else str(row[n]) for n in names] for row in shown
        ]
        widths = [max(len(cell) for cell in col) for col in zip(*grid)]
        lines = []
        if title:
            lines.append(title)
        header = " | ".join(n.ljust(w) for n, w in zip(names, widths))
        lines.append(header.rstrip())
        lines.append("-+-".join("-" * w for w in widths))
        for cells in grid[1:]:
            lines.append(
                " | ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()
            )
        if max_rows is not None and len(self._rows) > max_rows:
            lines.append(f"... ({len(self._rows) - max_rows} more rows)")
        return "\n".join(lines)


def _serialize_value(value: Any) -> Any:
    """Make a cell value JSON-friendly."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)
