"""Partition specifications: stable hash/range bucketing for relations.

A :class:`PartitionSpec` declares how a relation's rows are split into
``count`` buckets keyed on one column.  Two kinds exist:

- ``hash`` — ``bucket = crc32(canonical(value)) % buckets``.  The hash
  is **process-stable** (CRC-32 over a type-tagged canonical byte
  encoding, never Python's randomized ``hash()``), so the on-disk
  ``key=<bucket>`` snapshot layout reloads into the identical
  distribution in any interpreter.
- ``range`` — ``bounds`` is an ascending tuple of split points; bucket
  ``i`` holds values in ``(bounds[i-1], bounds[i]]``-style half-open
  ranges as produced by ``bisect_right``.  ``NULL`` routes to bucket 0.

The spec is frozen and shared: a partitioned relation and all of its
snapshots reference one immutable layout, and the planner derives
static partition elimination from it (see
``repro.sql.optimizer.derive_partition_buckets``).
"""

from __future__ import annotations

import datetime as _dt
import zlib
from bisect import bisect_right
from dataclasses import dataclass
from typing import Any, Mapping, Optional, Sequence

from repro.errors import SchemaError

__all__ = [
    "PartitionSpec",
    "hash_partitions",
    "range_partitions",
    "stable_bucket_hash",
]


def _canonical_bytes(value: Any) -> bytes:
    """A type-tagged, cross-process-stable byte encoding of *value*.

    Values that compare equal under ``==`` must encode identically
    (``7 == 7.0 == True*7`` all land in one bucket), because equality
    predicates prune to the bucket of the *literal*, whatever numeric
    flavor the stored value has.
    """
    if value is None:
        return b"z:"
    if isinstance(value, bool):
        value = int(value)
    if isinstance(value, int):
        return b"n:" + repr(value).encode("ascii")
    if isinstance(value, float):
        try:
            if value.is_integer():
                return b"n:" + repr(int(value)).encode("ascii")
        except (OverflowError, ValueError):  # pragma: no cover - inf/nan
            pass
        return b"n:" + repr(value).encode("ascii")
    if isinstance(value, str):
        return b"s:" + value.encode("utf-8")
    if isinstance(value, _dt.datetime):
        return b"t:" + value.isoformat().encode("ascii")
    if isinstance(value, _dt.date):
        return b"d:" + value.isoformat().encode("ascii")
    return b"r:" + repr(value).encode("utf-8", "backslashreplace")


def stable_bucket_hash(value: Any) -> int:
    """CRC-32 of the canonical encoding: the hash-partition router."""
    return zlib.crc32(_canonical_bytes(value))


@dataclass(frozen=True)
class PartitionSpec:
    """An immutable hash/range partition layout over one column."""

    kind: str
    column: str
    buckets: int = 0
    bounds: tuple = ()

    def __post_init__(self) -> None:
        if self.kind not in ("hash", "range"):
            raise SchemaError(f"unknown partition kind: {self.kind!r}")
        if self.kind == "hash":
            if self.buckets < 1:
                raise SchemaError("hash partitioning needs buckets >= 1")
            if self.bounds:
                raise SchemaError("hash partitioning takes no bounds")
        else:
            if not self.bounds:
                raise SchemaError("range partitioning needs split bounds")
            if self.buckets:
                raise SchemaError("range partitioning takes no bucket count")
            object.__setattr__(self, "bounds", tuple(self.bounds))
            for low, high in zip(self.bounds, self.bounds[1:]):
                if not low < high:
                    raise SchemaError(
                        "range bounds must be strictly ascending"
                    )

    @property
    def count(self) -> int:
        """Total bucket count N (``partitions=k/N`` in EXPLAIN)."""
        if self.kind == "hash":
            return self.buckets
        return len(self.bounds) + 1

    def bucket_of(self, value: Any) -> int:
        """The bucket holding *value*.

        Raises ``TypeError`` for a range spec when *value* is not
        comparable to the bounds (callers deriving pruning sets treat
        that as "cannot prune").
        """
        if self.kind == "hash":
            return stable_bucket_hash(value) % self.buckets
        if value is None:
            return 0
        return bisect_right(self.bounds, value)

    def describe(self) -> str:
        """A compact human-readable layout summary."""
        if self.kind == "hash":
            return f"hash({self.column}, {self.buckets})"
        bounds = ", ".join(repr(bound) for bound in self.bounds)
        return f"range({self.column}, bounds=[{bounds}])"

    def to_dict(self) -> dict:
        """A plain-dict form; bound values are raw (callers encode)."""
        payload: dict = {"kind": self.kind, "column": self.column}
        if self.kind == "hash":
            payload["buckets"] = self.buckets
        else:
            payload["bounds"] = list(self.bounds)
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "PartitionSpec":
        if payload.get("kind") == "hash":
            return cls(
                kind="hash",
                column=payload["column"],
                buckets=int(payload["buckets"]),
            )
        return cls(
            kind="range",
            column=payload["column"],
            bounds=tuple(payload["bounds"]),
        )


def hash_partitions(column: str, buckets: int) -> PartitionSpec:
    """A hash layout: ``buckets`` partitions keyed on *column*."""
    return PartitionSpec(kind="hash", column=column, buckets=buckets)


def range_partitions(column: str, bounds: Sequence[Any]) -> PartitionSpec:
    """A range layout: ``len(bounds) + 1`` partitions keyed on *column*."""
    return PartitionSpec(kind="range", column=column, bounds=tuple(bounds))
