"""Integrity constraints for catalog-managed relations.

The paper (§1.1) points to integrity constraints and transaction
management as the classical database tools that *prevent* bad data from
entering a database — necessary but insufficient for data quality.  This
module provides that classical layer; the quality layers build on top.

Constraints are checked by :class:`~repro.relational.catalog.Database`
on every insert/update.  Each constraint implements
:meth:`Constraint.check_insert` and may implement
:meth:`Constraint.check_delete` for referential actions.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence, TYPE_CHECKING

from repro.errors import ConstraintViolation, SchemaError
from repro.relational.relation import Relation, Row

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.relational.catalog import Database


class Constraint:
    """Base class for integrity constraints.

    Parameters
    ----------
    name:
        Unique constraint name (used in violation messages).
    relation_name:
        The relation the constraint applies to.
    """

    def __init__(self, name: str, relation_name: str) -> None:
        if not name:
            raise SchemaError("constraint must have a name")
        self.name = name
        self.relation_name = relation_name

    def check_insert(self, database: "Database", relation: Relation, row: Row) -> None:
        """Validate an insert of ``row`` into ``relation``.

        Raise :class:`ConstraintViolation` to reject the modification.
        ``row`` is *not yet present* in the relation when this is called.
        """

    def check_delete(self, database: "Database", relation: Relation, row: Row) -> None:
        """Validate a delete of ``row`` from ``relation``."""

    def check_update(
        self,
        database: "Database",
        relation: Relation,
        old_row: Row,
        new_row: Row,
    ) -> None:
        """Validate replacing ``old_row`` with ``new_row``.

        The default is a no-op: value-level validity of ``new_row`` is
        covered by the catalog's re-run of :meth:`check_insert`.
        Referential constraints override this to enforce RESTRICT when a
        *referenced key* changes.
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r} on {self.relation_name!r})"


class NotNullConstraint(Constraint):
    """Reject NULL values in the given columns."""

    def __init__(self, name: str, relation_name: str, columns: Sequence[str]) -> None:
        super().__init__(name, relation_name)
        if not columns:
            raise SchemaError("NotNullConstraint requires at least one column")
        self.columns = tuple(columns)

    def check_insert(self, database: "Database", relation: Relation, row: Row) -> None:
        for column in self.columns:
            if row[column] is None:
                raise ConstraintViolation(
                    self.name,
                    f"column {column!r} of {self.relation_name!r} must not be NULL",
                )


class UniqueConstraint(Constraint):
    """Reject duplicate values over a column tuple (NULLs are exempt)."""

    def __init__(self, name: str, relation_name: str, columns: Sequence[str]) -> None:
        super().__init__(name, relation_name)
        if not columns:
            raise SchemaError("UniqueConstraint requires at least one column")
        self.columns = tuple(columns)

    def check_insert(self, database: "Database", relation: Relation, row: Row) -> None:
        key = tuple(row[c] for c in self.columns)
        if any(v is None for v in key):
            return
        for existing in relation:
            if tuple(existing[c] for c in self.columns) == key:
                raise ConstraintViolation(
                    self.name,
                    f"duplicate value {key!r} for unique columns "
                    f"{list(self.columns)} in {self.relation_name!r}",
                )


class PrimaryKeyConstraint(Constraint):
    """NOT NULL + UNIQUE over the key columns."""

    def __init__(self, name: str, relation_name: str, columns: Sequence[str]) -> None:
        super().__init__(name, relation_name)
        self._not_null = NotNullConstraint(name, relation_name, columns)
        self._unique = UniqueConstraint(name, relation_name, columns)
        self.columns = tuple(columns)

    def check_insert(self, database: "Database", relation: Relation, row: Row) -> None:
        self._not_null.check_insert(database, relation, row)
        self._unique.check_insert(database, relation, row)


class ForeignKeyConstraint(Constraint):
    """Values in ``columns`` must exist in ``target`` relation's columns.

    Deleting a referenced row is rejected (RESTRICT semantics).
    """

    def __init__(
        self,
        name: str,
        relation_name: str,
        columns: Sequence[str],
        target_relation: str,
        target_columns: Sequence[str],
    ) -> None:
        super().__init__(name, relation_name)
        if len(columns) != len(target_columns) or not columns:
            raise SchemaError(
                "ForeignKeyConstraint requires matching non-empty column lists"
            )
        self.columns = tuple(columns)
        self.target_relation = target_relation
        self.target_columns = tuple(target_columns)

    def check_insert(self, database: "Database", relation: Relation, row: Row) -> None:
        key = tuple(row[c] for c in self.columns)
        if any(v is None for v in key):
            return  # SQL MATCH SIMPLE: NULLs satisfy the FK.
        target = database.relation(self.target_relation)
        for candidate in target:
            if tuple(candidate[c] for c in self.target_columns) == key:
                return
        raise ConstraintViolation(
            self.name,
            f"value {key!r} in {self.relation_name!r}.{list(self.columns)} has no "
            f"match in {self.target_relation!r}.{list(self.target_columns)}",
        )

    def check_delete(self, database: "Database", relation: Relation, row: Row) -> None:
        # Called when a row of the *target* relation is deleted.
        if relation.schema.name != self.target_relation:
            return
        self._require_unreferenced(database, row, "delete")

    def check_update(
        self,
        database: "Database",
        relation: Relation,
        old_row: Row,
        new_row: Row,
    ) -> None:
        # Changing a referenced key is a delete of the old key value
        # from this constraint's perspective: RESTRICT on update too.
        if relation.schema.name != self.target_relation:
            return
        old_key = tuple(old_row[c] for c in self.target_columns)
        new_key = tuple(new_row[c] for c in self.target_columns)
        if old_key != new_key:
            self._require_unreferenced(database, old_row, "update key of")

    def _require_unreferenced(
        self, database: "Database", row: Row, action: str
    ) -> None:
        key = tuple(row[c] for c in self.target_columns)
        referencing = database.relation(self.relation_name)
        for candidate in referencing:
            if tuple(candidate[c] for c in self.columns) == key:
                raise ConstraintViolation(
                    self.name,
                    f"cannot {action} {key!r} in {self.target_relation!r}: "
                    f"still referenced by {self.relation_name!r}",
                )


class CheckConstraint(Constraint):
    """A row-level predicate that must hold for every row.

    Parameters
    ----------
    predicate:
        Callable Row → bool; False (or a raised ValueError) rejects.
    description:
        Human-readable statement of the rule, used in messages and in the
        quality-requirements specification document.
    """

    def __init__(
        self,
        name: str,
        relation_name: str,
        predicate: Callable[[Row], bool],
        description: str = "",
    ) -> None:
        super().__init__(name, relation_name)
        self.predicate = predicate
        self.description = description

    def check_insert(self, database: "Database", relation: Relation, row: Row) -> None:
        try:
            ok = self.predicate(row)
        except ValueError as exc:
            raise ConstraintViolation(self.name, str(exc)) from exc
        if not ok:
            detail = self.description or "row failed CHECK predicate"
            raise ConstraintViolation(
                self.name, f"{detail} (row: {row.to_dict()!r})"
            )


def key_constraint_for(relation_name: str, key: Sequence[str]) -> PrimaryKeyConstraint:
    """Build the standard primary-key constraint for a schema's key."""
    return PrimaryKeyConstraint(f"pk_{relation_name}", relation_name, key)
