"""The database catalog: named relations + constraint enforcement + journal.

:class:`Database` is the integration point of the relational substrate:
it owns relations, enforces registered constraints on every modification,
and records committed modifications in the transaction journal so the
quality-administration layer can audit them.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Any, Callable, Iterable, Optional

from repro.errors import (
    ConstraintViolation,
    SchemaError,
    UnknownRelationError,
)
from repro.relational.constraints import Constraint, key_constraint_for
from repro.relational.partition import PartitionSpec
from repro.relational.relation import Relation, Row
from repro.relational.schema import RelationSchema
from repro.relational.transactions import Transaction, TransactionManager

if TYPE_CHECKING:
    from repro.relational.snapshot import DatabaseSnapshot


class Database:
    """A named collection of relations with integrity enforcement.

    Parameters
    ----------
    name:
        Database name (used in provenance tags by the polygen layer).

    Example
    -------
    >>> from repro.relational.schema import schema
    >>> db = Database("corp")
    >>> _ = db.create_relation(schema("customer",
    ...     [("co_name", "STR"), ("employees", "INT")], key=["co_name"]))
    >>> db.insert("customer", {"co_name": "Fruit Co", "employees": 4004})
    Row(co_name='Fruit Co', employees=4004)
    >>> len(db.relation("customer"))
    1
    """

    def __init__(self, name: str) -> None:
        if not name:
            raise SchemaError("database must have a name")
        self.name = name
        self._relations: dict[str, Relation] = {}
        self._constraints: list[Constraint] = []
        self.transactions = TransactionManager()
        self._catalog_version = 0
        # Guards the relation map, the constraint list, and the catalog
        # version.  Lock order: transaction gate -> this lock -> any
        # relation's lock (never the reverse).
        self._lock = threading.RLock()

    # -- schema management ---------------------------------------------------

    def create_relation(
        self,
        schema: RelationSchema,
        enforce_key: bool = True,
        partition_by: Optional[PartitionSpec] = None,
    ) -> Relation:
        """Create an empty relation for ``schema``.

        If the schema declares a primary key and ``enforce_key`` is True,
        the standard primary-key constraint is registered automatically.
        ``partition_by`` declares a hash/range partition layout (see
        :mod:`repro.relational.partition`) up front; use
        :meth:`repartition` to change it later.
        """
        with self._lock:
            if schema.name in self._relations:
                raise SchemaError(
                    f"database {self.name!r} already has relation "
                    f"{schema.name!r}"
                )
            relation = Relation(schema)
            if partition_by is not None:
                relation.repartition(partition_by)
            self._relations[schema.name] = relation
            self._catalog_version += 1
            if enforce_key and schema.key:
                self.add_constraint(
                    key_constraint_for(schema.name, schema.key)
                )
            return relation

    def repartition(
        self, name: str, spec: Optional[PartitionSpec]
    ) -> Relation:
        """Change (or drop, with ``None``) a relation's partition layout.

        Purely physical: rows and schema are untouched.  The relation's
        own partition-layout version bump invalidates cached plans that
        pinned the old layout.
        """
        relation = self.relation(name)
        relation.repartition(spec)
        return relation

    def drop_relation(self, name: str) -> None:
        """Remove a relation and its constraints."""
        with self._lock:
            self.relation(name)  # raise if unknown
            del self._relations[name]
            self._catalog_version += 1
            self._constraints = [
                c
                for c in self._constraints
                if c.relation_name != name
                and getattr(c, "target_relation", None) != name
            ]

    @property
    def catalog_version(self) -> int:
        """Monotonic counter of schema-level changes (create/drop).

        Cached query plans resolve FROM names against the catalog; a
        version bump tells them the name → relation binding may have
        changed.  Row-level mutations do not bump it — plans depend on
        schemas, not data.
        """
        return self._catalog_version

    @property
    def metrics(self):
        """The process-wide observability registry (:mod:`repro.obs`).

        Engine layers — plan cache, columnar tag scans, polygen joins —
        report into it while instrumentation is enabled
        (:func:`repro.obs.enable`); read it here for counters like
        ``qsql.plancache.hits`` or the statement-latency histogram.
        """
        from repro.obs import global_registry

        return global_registry()

    def relation(self, name: str) -> Relation:
        """Look up a relation by name."""
        try:
            return self._relations[name]
        except KeyError:
            raise UnknownRelationError(
                f"database {self.name!r} has no relation {name!r} "
                f"(relations: {sorted(self._relations)})"
            ) from None

    @property
    def relation_names(self) -> tuple[str, ...]:
        return tuple(sorted(self._relations))

    def __contains__(self, name: object) -> bool:
        return name in self._relations

    def __repr__(self) -> str:
        return f"Database({self.name!r}, relations={list(self.relation_names)})"

    # -- constraints ---------------------------------------------------------

    def add_constraint(self, constraint: Constraint) -> None:
        """Register a constraint; existing rows are validated immediately."""
        with self._lock:
            self._add_constraint_locked(constraint)

    def _add_constraint_locked(self, constraint: Constraint) -> None:
        if constraint.relation_name not in self._relations:
            raise UnknownRelationError(
                f"constraint {constraint.name!r} targets unknown relation "
                f"{constraint.relation_name!r}"
            )
        if any(c.name == constraint.name for c in self._constraints):
            raise SchemaError(f"duplicate constraint name {constraint.name!r}")
        # Validate existing data: re-check each row against a copy that
        # excludes the row itself (so UNIQUE checks don't self-collide).
        relation = self._relations[constraint.relation_name]
        for i, row in enumerate(relation.rows):
            probe = Relation(relation.schema)
            for j, other in enumerate(relation.rows):
                if i != j:
                    probe.insert(other)
            constraint.check_insert(self, probe, row)
        self._constraints.append(constraint)

    @property
    def constraints(self) -> tuple[Constraint, ...]:
        return tuple(self._constraints)

    def constraints_for(self, relation_name: str) -> list[Constraint]:
        """Constraints applying directly to one relation."""
        return [c for c in self._constraints if c.relation_name == relation_name]

    # -- data modification --------------------------------------------------

    def _check_insert(self, relation: Relation, row: Row) -> None:
        for constraint in self._constraints:
            if constraint.relation_name == relation.schema.name:
                constraint.check_insert(self, relation, row)

    def _check_delete(self, relation: Relation, row: Row) -> None:
        for constraint in self._constraints:
            constraint.check_delete(self, relation, row)

    def insert(
        self,
        relation_name: str,
        values: dict[str, Any],
        transaction: Optional[Transaction] = None,
        actor: str = "",
        note: str = "",
    ) -> Row:
        """Insert one row, enforcing constraints and journaling the write.

        If no transaction is supplied, an implicit single-statement
        transaction is used (auto-commit).
        """
        relation = self.relation(relation_name)
        candidate = Row(relation.schema, dict(values))
        self._check_insert(relation, candidate)

        own_txn = transaction is None
        txn = self.transactions.begin(actor) if own_txn else transaction
        assert txn is not None
        inserted = relation.insert(candidate)

        def undo() -> None:
            relation.delete(lambda r: r is inserted)

        txn.record(
            "insert",
            relation_name,
            undo,
            before=None,
            after=inserted.to_dict(),
            note=note,
        )
        if own_txn:
            txn.commit()
        return inserted

    def insert_many(
        self,
        relation_name: str,
        rows: Iterable[dict[str, Any]],
        actor: str = "",
        note: str = "",
    ) -> int:
        """Insert many rows atomically: all succeed or none do."""
        with self.transactions.transaction(actor=actor) as txn:
            count = 0
            for values in rows:
                self.insert(relation_name, values, transaction=txn, note=note)
                count += 1
        return count

    def delete(
        self,
        relation_name: str,
        predicate: Callable[[Row], bool],
        transaction: Optional[Transaction] = None,
        actor: str = "",
        note: str = "",
    ) -> int:
        """Delete matching rows, enforcing referential actions."""
        relation = self.relation(relation_name)
        victims = [row for row in relation if predicate(row)]
        for row in victims:
            self._check_delete(relation, row)

        own_txn = transaction is None
        txn = self.transactions.begin(actor) if own_txn else transaction
        assert txn is not None
        for row in victims:
            relation.delete(lambda r, target=row: r is target)

            def undo(target: Row = row) -> None:
                relation.insert(target)

            txn.record(
                "delete",
                relation_name,
                undo,
                before=row.to_dict(),
                after=None,
                note=note,
            )
        if own_txn:
            txn.commit()
        return len(victims)

    def update(
        self,
        relation_name: str,
        predicate: Callable[[Row], bool],
        updates: dict[str, Any] | Callable[[Row], dict[str, Any]],
        transaction: Optional[Transaction] = None,
        actor: str = "",
        note: str = "",
    ) -> int:
        """Update matching rows, enforcing constraints on the new values."""
        relation = self.relation(relation_name)
        updater = updates if callable(updates) else (lambda _row: dict(updates))

        targets = [row for row in relation if predicate(row)]
        own_txn = transaction is None
        txn = self.transactions.begin(actor) if own_txn else transaction
        assert txn is not None
        try:
            for old_row in targets:
                new_row = old_row.replace(**updater(old_row))
                for constraint in self._constraints:
                    constraint.check_update(self, relation, old_row, new_row)
                # Check against the relation minus the old row so UNIQUE
                # doesn't collide with the row being replaced.
                probe = Relation(relation.schema)
                for other in relation:
                    if other is not old_row:
                        probe.insert(other)
                self._check_insert(probe, new_row)

                relation.delete(lambda r, target=old_row: r is target)
                relation.insert(new_row)

                def undo(old: Row = old_row, new: Row = new_row) -> None:
                    relation.delete(lambda r: r is new)
                    relation.insert(old)

                txn.record(
                    "update",
                    relation_name,
                    undo,
                    before=old_row.to_dict(),
                    after=new_row.to_dict(),
                    note=note,
                )
        except ConstraintViolation:
            if own_txn:
                txn.abort()
            raise
        if own_txn:
            txn.commit()
        return len(targets)

    # -- snapshot reads --------------------------------------------------------

    def snapshot(self) -> "DatabaseSnapshot":
        """A consistent, immutable snapshot of every relation.

        Built behind the transaction manager's write gate
        (:meth:`TransactionManager.exclusive
        <repro.relational.transactions.TransactionManager.exclusive>`),
        so the snapshot never captures half of a multi-statement
        transaction (e.g. the middle of an ``insert_many`` batch).
        Per-relation snapshots are cached against their version, so an
        unchanged relation costs a token comparison, not a copy.
        """
        from repro.relational.snapshot import DatabaseSnapshot

        with self.transactions.exclusive():
            with self._lock:
                return DatabaseSnapshot(
                    name=self.name,
                    catalog_version=self._catalog_version,
                    relations={
                        name: rel.read_snapshot()
                        for name, rel in self._relations.items()
                    },
                )

    # -- serialization ---------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Serialize all relations (schema + data)."""
        return {
            "name": self.name,
            "relations": {
                name: rel.to_dict() for name, rel in self._relations.items()
            },
        }
