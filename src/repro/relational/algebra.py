"""Relational algebra over :class:`~repro.relational.relation.Relation`.

All operators are pure: they never mutate their inputs and always return
fresh relations.  Bag semantics are used throughout (duplicates are
preserved) except for the explicit set operators, matching SQL behaviour.

The quality-extended algebra in :mod:`repro.tagging.algebra` and the
polygen algebra in :mod:`repro.polygen.algebra` mirror these signatures
so code can be written against either layer.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Callable, Iterable, Optional, Sequence

from repro.errors import QueryError, SchemaError
from repro.relational.relation import Relation, Row
from repro.relational.schema import RelationSchema

Predicate = Callable[[Row], bool]


def select(relation: Relation, predicate: Predicate) -> Relation:
    """σ — keep rows satisfying ``predicate``."""
    return Relation.from_rows(
        relation.schema, (row for row in relation if predicate(row))
    )


def project(
    relation: Relation,
    columns: Sequence[str],
    new_name: Optional[str] = None,
) -> Relation:
    """π — keep only ``columns`` (bag semantics: duplicates retained)."""
    if not columns:
        raise QueryError("projection requires at least one column")
    out_schema = relation.schema.project(columns, new_name)
    positions = relation.schema.positions_of(columns)
    return Relation.from_rows(
        out_schema,
        (
            Row._from_validated(
                out_schema, tuple(row.at(p) for p in positions)
            )
            for row in relation
        ),
    )


def rename(
    relation: Relation,
    column_mapping: Optional[dict[str, str]] = None,
    new_name: Optional[str] = None,
) -> Relation:
    """ρ — rename the relation and/or some of its columns."""
    out_schema = relation.schema
    if column_mapping:
        out_schema = out_schema.rename_columns(column_mapping)
    if new_name:
        out_schema = out_schema.renamed(new_name)
    return Relation.from_rows(
        out_schema,
        (
            Row._from_validated(out_schema, row.values_tuple())
            for row in relation
        ),
    )


def distinct(relation: Relation) -> Relation:
    """δ — remove duplicate rows (bag → set)."""
    result = relation.empty_like()
    seen: set[tuple[Any, ...]] = set()
    for row in relation:
        key = row.values_tuple()
        if key not in seen:
            seen.add(key)
            result._insert_validated(row)
    return result


def _require_union_compatible(left: Relation, right: Relation, op: str) -> None:
    if not left.schema.union_compatible_with(right.schema):
        raise SchemaError(
            f"{op}: schemas are not union-compatible "
            f"({left.schema!r} vs {right.schema!r})"
        )


def union(left: Relation, right: Relation) -> Relation:
    """∪ — bag union (all rows of both sides)."""
    _require_union_compatible(left, right, "union")
    result = left.copy()
    # Union-compatible schemas share column names and domains, so right
    # rows are already valid; re-home them under the left schema.
    for row in right:
        result._insert_validated(
            Row._from_validated(left.schema, row.values_tuple())
        )
    return result


def difference(left: Relation, right: Relation) -> Relation:
    """− — bag difference (each right row cancels one left duplicate)."""
    _require_union_compatible(left, right, "difference")
    remaining = Counter(row.values_tuple() for row in right)
    result = left.empty_like()
    for row in left:
        key = row.values_tuple()
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
        else:
            result._insert_validated(row)
    return result


def intersection(left: Relation, right: Relation) -> Relation:
    """∩ — bag intersection (multiplicity = min of the two sides)."""
    _require_union_compatible(left, right, "intersection")
    available = Counter(row.values_tuple() for row in right)
    result = left.empty_like()
    for row in left:
        key = row.values_tuple()
        if available.get(key, 0) > 0:
            available[key] -= 1
            result._insert_validated(row)
    return result


def cartesian_product(
    left: Relation, right: Relation, new_name: Optional[str] = None
) -> Relation:
    """× — all pairings of left and right rows.

    Overlapping column names are qualified as ``relation.column`` by
    :meth:`RelationSchema.concat`.
    """
    name = new_name or f"{left.schema.name}_x_{right.schema.name}"
    out_schema = left.schema.concat(right.schema, name)
    result = Relation(out_schema)
    for lrow in left:
        lvals = lrow.values_tuple()
        for rrow in right:
            result._insert_validated(
                Row._from_validated(out_schema, lvals + rrow.values_tuple())
            )
    return result


def theta_join(
    left: Relation,
    right: Relation,
    predicate: Callable[[Row, Row], bool],
    new_name: Optional[str] = None,
) -> Relation:
    """⋈θ — join on an arbitrary two-row predicate."""
    name = new_name or f"{left.schema.name}_join_{right.schema.name}"
    out_schema = left.schema.concat(right.schema, name)
    result = Relation(out_schema)
    for lrow in left:
        lvals = lrow.values_tuple()
        for rrow in right:
            if predicate(lrow, rrow):
                result._insert_validated(
                    Row._from_validated(
                        out_schema, lvals + rrow.values_tuple()
                    )
                )
    return result


def equi_join(
    left: Relation,
    right: Relation,
    on: Sequence[tuple[str, str]],
    new_name: Optional[str] = None,
) -> Relation:
    """Equality join on pairs of (left column, right column).

    Uses a hash join: right rows are indexed by their join-key values.
    """
    if not on:
        raise QueryError("equi_join requires at least one column pair")
    for lcol, rcol in on:
        left.schema.column(lcol)
        right.schema.column(rcol)
    name = new_name or f"{left.schema.name}_join_{right.schema.name}"
    out_schema = left.schema.concat(right.schema, name)
    result = Relation(out_schema)
    left_key = left.schema.positions_of([lcol for lcol, _ in on])
    right_key = right.schema.positions_of([rcol for _, rcol in on])

    index: dict[tuple[Any, ...], list[Row]] = {}
    for rrow in right:
        key = tuple(rrow.at(p) for p in right_key)
        index.setdefault(key, []).append(rrow)
    for lrow in left:
        key = tuple(lrow.at(p) for p in left_key)
        matches = index.get(key)
        if not matches:
            continue
        lvals = lrow.values_tuple()
        for rrow in matches:
            result._insert_validated(
                Row._from_validated(out_schema, lvals + rrow.values_tuple())
            )
    return result


def natural_join(
    left: Relation, right: Relation, new_name: Optional[str] = None
) -> Relation:
    """⋈ — join on all shared column names; shared columns appear once."""
    shared = [n for n in left.schema.column_names if n in right.schema]
    if not shared:
        return cartesian_product(left, right, new_name)
    name = new_name or f"{left.schema.name}_join_{right.schema.name}"
    right_only = [n for n in right.schema.column_names if n not in shared]
    out_columns = [left.schema.column(n) for n in left.schema.column_names]
    out_columns += [right.schema.column(n) for n in right_only]
    out_schema = RelationSchema(name, out_columns)
    result = Relation(out_schema)
    left_key = left.schema.positions_of(shared)
    right_key = right.schema.positions_of(shared)
    right_only_pos = right.schema.positions_of(right_only)

    index: dict[tuple[Any, ...], list[Row]] = {}
    for rrow in right:
        key = tuple(rrow.at(p) for p in right_key)
        index.setdefault(key, []).append(rrow)
    for lrow in left:
        key = tuple(lrow.at(p) for p in left_key)
        matches = index.get(key)
        if not matches:
            continue
        lvals = lrow.values_tuple()
        for rrow in matches:
            result._insert_validated(
                Row._from_validated(
                    out_schema,
                    lvals + tuple(rrow.at(p) for p in right_only_pos),
                )
            )
    return result


def sort(
    relation: Relation,
    by: Sequence[str],
    descending: bool = False,
) -> Relation:
    """Order rows by the given columns (None sorts first)."""
    if not by:
        raise QueryError("sort requires at least one column")
    positions = relation.schema.positions_of(by)

    def sort_key(row: Row) -> tuple:
        # None-safe: (is-not-None, value) keeps NULLs first and avoids
        # comparing None to concrete values.
        return tuple((row.at(p) is not None, row.at(p)) for p in positions)

    return Relation.from_rows(
        relation.schema, sorted(relation, key=sort_key, reverse=descending)
    )


def limit(relation: Relation, n: int) -> Relation:
    """Keep only the first ``n`` rows (insertion order)."""
    if n < 0:
        raise QueryError("limit must be non-negative")
    return Relation.from_rows(relation.schema, relation.rows[:n])


# ---------------------------------------------------------------------------
# Aggregation
# ---------------------------------------------------------------------------


def _agg_count(values: list[Any]) -> int:
    return sum(1 for v in values if v is not None)


def _agg_sum(values: list[Any]) -> Any:
    present = [v for v in values if v is not None]
    return sum(present) if present else None


def _agg_avg(values: list[Any]) -> Optional[float]:
    present = [v for v in values if v is not None]
    return sum(present) / len(present) if present else None


def _agg_min(values: list[Any]) -> Any:
    present = [v for v in values if v is not None]
    return min(present) if present else None


def _agg_max(values: list[Any]) -> Any:
    present = [v for v in values if v is not None]
    return max(present) if present else None


#: Built-in aggregate functions usable by name in :func:`aggregate`.
AGGREGATES: dict[str, Callable[[list[Any]], Any]] = {
    "count": _agg_count,
    "sum": _agg_sum,
    "avg": _agg_avg,
    "min": _agg_min,
    "max": _agg_max,
}


def aggregate(
    relation: Relation,
    group_by: Sequence[str],
    aggregations: dict[str, tuple[str, str]],
    new_name: Optional[str] = None,
) -> Relation:
    """γ — group rows and compute aggregates.

    Parameters
    ----------
    group_by:
        Columns to group on (may be empty for a single global group).
    aggregations:
        Maps output column name → (aggregate function name, input column).
        Function names come from :data:`AGGREGATES`.

    The output schema has the ``group_by`` columns followed by one column
    per aggregation.  Aggregate outputs use the STR-free permissive FLOAT
    domain for avg and the input column's domain otherwise, except count
    which is INT.
    """
    from repro.relational.schema import Column
    from repro.relational.types import FLOAT, INT

    for name in group_by:
        relation.schema.column(name)
    out_columns = [relation.schema.column(n) for n in group_by]
    for out_name, (func_name, in_col) in aggregations.items():
        if func_name not in AGGREGATES:
            raise QueryError(
                f"unknown aggregate {func_name!r} "
                f"(available: {sorted(AGGREGATES)})"
            )
        relation.schema.column(in_col)
        if func_name == "count":
            out_columns.append(Column(out_name, INT))
        elif func_name == "avg":
            out_columns.append(Column(out_name, FLOAT))
        else:
            out_columns.append(Column(out_name, relation.schema.column(in_col).domain))
    out_schema = RelationSchema(
        new_name or f"{relation.schema.name}_agg", out_columns
    )

    group_positions = relation.schema.positions_of(group_by)
    groups: dict[tuple[Any, ...], list[Row]] = {}
    order: list[tuple[Any, ...]] = []
    for row in relation:
        key = tuple(row.at(p) for p in group_positions)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(row)

    result = Relation(out_schema)
    if not group_by and not groups:
        # Global aggregate over an empty relation still yields one row.
        groups[()] = []
        order.append(())
    agg_specs = [
        (
            AGGREGATES[func_name],
            relation.schema.position(in_col),
            out_schema.column(out_name).domain,
        )
        for out_name, (func_name, in_col) in aggregations.items()
    ]
    for key in order:
        rows = groups[key]
        # Group-by values come straight from validated rows; only the
        # computed aggregates need validating against their domains.
        values = key + tuple(
            domain.validate(func([r.at(p) for r in rows]))
            for func, p, domain in agg_specs
        )
        result._insert_validated(Row._from_validated(out_schema, values))
    return result


def extend(
    relation: Relation,
    column_name: str,
    domain: Any,
    compute: Callable[[Row], Any],
    new_name: Optional[str] = None,
) -> Relation:
    """Add a derived column computed per-row (the ε operator)."""
    from repro.relational.schema import Column
    from repro.relational.types import Domain, domain_by_name

    if column_name in relation.schema:
        raise SchemaError(
            f"relation {relation.schema.name!r} already has column {column_name!r}"
        )
    dom = domain_by_name(domain) if isinstance(domain, str) else domain
    if not isinstance(dom, Domain):
        raise SchemaError(f"invalid domain {domain!r}")
    out_schema = RelationSchema(
        new_name or relation.schema.name,
        list(relation.schema.columns) + [Column(column_name, dom)],
        key=relation.schema.key,
    )
    result = Relation(out_schema)
    for row in relation:
        result._insert_validated(
            Row._from_validated(
                out_schema,
                row.values_tuple() + (dom.validate(compute(row)),),
            )
        )
    return result
