"""Relational algebra over :class:`~repro.relational.relation.Relation`.

All operators are pure: they never mutate their inputs and always return
fresh relations.  Bag semantics are used throughout (duplicates are
preserved) except for the explicit set operators, matching SQL behaviour.

The quality-extended algebra in :mod:`repro.tagging.algebra` and the
polygen algebra in :mod:`repro.polygen.algebra` mirror these signatures
so code can be written against either layer.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Callable, Iterable, Optional, Sequence

from repro.errors import QueryError, SchemaError
from repro.relational.relation import Relation, Row
from repro.relational.schema import RelationSchema

Predicate = Callable[[Row], bool]


def select(relation: Relation, predicate: Predicate) -> Relation:
    """σ — keep rows satisfying ``predicate``."""
    result = relation.empty_like()
    for row in relation:
        if predicate(row):
            result.insert(row)
    return result


def project(
    relation: Relation,
    columns: Sequence[str],
    new_name: Optional[str] = None,
) -> Relation:
    """π — keep only ``columns`` (bag semantics: duplicates retained)."""
    if not columns:
        raise QueryError("projection requires at least one column")
    out_schema = relation.schema.project(columns, new_name)
    result = Relation(out_schema)
    for row in relation:
        result.insert({c: row[c] for c in columns})
    return result


def rename(
    relation: Relation,
    column_mapping: Optional[dict[str, str]] = None,
    new_name: Optional[str] = None,
) -> Relation:
    """ρ — rename the relation and/or some of its columns."""
    out_schema = relation.schema
    if column_mapping:
        out_schema = out_schema.rename_columns(column_mapping)
    if new_name:
        out_schema = out_schema.renamed(new_name)
    result = Relation(out_schema)
    names = out_schema.column_names
    for row in relation:
        result.insert(dict(zip(names, row.values_tuple())))
    return result


def distinct(relation: Relation) -> Relation:
    """δ — remove duplicate rows (bag → set)."""
    result = relation.empty_like()
    seen: set[tuple[Any, ...]] = set()
    for row in relation:
        key = row.values_tuple()
        if key not in seen:
            seen.add(key)
            result.insert(row)
    return result


def _require_union_compatible(left: Relation, right: Relation, op: str) -> None:
    if not left.schema.union_compatible_with(right.schema):
        raise SchemaError(
            f"{op}: schemas are not union-compatible "
            f"({left.schema!r} vs {right.schema!r})"
        )


def union(left: Relation, right: Relation) -> Relation:
    """∪ — bag union (all rows of both sides)."""
    _require_union_compatible(left, right, "union")
    result = left.copy()
    for row in right:
        result.insert(row.to_dict())
    return result


def difference(left: Relation, right: Relation) -> Relation:
    """− — bag difference (each right row cancels one left duplicate)."""
    _require_union_compatible(left, right, "difference")
    remaining = Counter(row.values_tuple() for row in right)
    result = left.empty_like()
    for row in left:
        key = row.values_tuple()
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
        else:
            result.insert(row)
    return result


def intersection(left: Relation, right: Relation) -> Relation:
    """∩ — bag intersection (multiplicity = min of the two sides)."""
    _require_union_compatible(left, right, "intersection")
    available = Counter(row.values_tuple() for row in right)
    result = left.empty_like()
    for row in left:
        key = row.values_tuple()
        if available.get(key, 0) > 0:
            available[key] -= 1
            result.insert(row)
    return result


def cartesian_product(
    left: Relation, right: Relation, new_name: Optional[str] = None
) -> Relation:
    """× — all pairings of left and right rows.

    Overlapping column names are qualified as ``relation.column`` by
    :meth:`RelationSchema.concat`.
    """
    name = new_name or f"{left.schema.name}_x_{right.schema.name}"
    out_schema = left.schema.concat(right.schema, name)
    result = Relation(out_schema)
    names = out_schema.column_names
    for lrow in left:
        lvals = lrow.values_tuple()
        for rrow in right:
            result.insert(dict(zip(names, lvals + rrow.values_tuple())))
    return result


def theta_join(
    left: Relation,
    right: Relation,
    predicate: Callable[[Row, Row], bool],
    new_name: Optional[str] = None,
) -> Relation:
    """⋈θ — join on an arbitrary two-row predicate."""
    name = new_name or f"{left.schema.name}_join_{right.schema.name}"
    out_schema = left.schema.concat(right.schema, name)
    result = Relation(out_schema)
    names = out_schema.column_names
    for lrow in left:
        lvals = lrow.values_tuple()
        for rrow in right:
            if predicate(lrow, rrow):
                result.insert(dict(zip(names, lvals + rrow.values_tuple())))
    return result


def equi_join(
    left: Relation,
    right: Relation,
    on: Sequence[tuple[str, str]],
    new_name: Optional[str] = None,
) -> Relation:
    """Equality join on pairs of (left column, right column).

    Uses a hash join: right rows are indexed by their join-key values.
    """
    if not on:
        raise QueryError("equi_join requires at least one column pair")
    for lcol, rcol in on:
        left.schema.column(lcol)
        right.schema.column(rcol)
    name = new_name or f"{left.schema.name}_join_{right.schema.name}"
    out_schema = left.schema.concat(right.schema, name)
    result = Relation(out_schema)
    names = out_schema.column_names

    index: dict[tuple[Any, ...], list[Row]] = {}
    for rrow in right:
        key = tuple(rrow[rcol] for _, rcol in on)
        index.setdefault(key, []).append(rrow)
    for lrow in left:
        key = tuple(lrow[lcol] for lcol, _ in on)
        for rrow in index.get(key, ()):
            result.insert(dict(zip(names, lrow.values_tuple() + rrow.values_tuple())))
    return result


def natural_join(
    left: Relation, right: Relation, new_name: Optional[str] = None
) -> Relation:
    """⋈ — join on all shared column names; shared columns appear once."""
    shared = [n for n in left.schema.column_names if n in right.schema]
    if not shared:
        return cartesian_product(left, right, new_name)
    name = new_name or f"{left.schema.name}_join_{right.schema.name}"
    right_only = [n for n in right.schema.column_names if n not in shared]
    out_columns = [left.schema.column(n) for n in left.schema.column_names]
    out_columns += [right.schema.column(n) for n in right_only]
    out_schema = RelationSchema(name, out_columns)
    result = Relation(out_schema)

    index: dict[tuple[Any, ...], list[Row]] = {}
    for rrow in right:
        index.setdefault(tuple(rrow[c] for c in shared), []).append(rrow)
    for lrow in left:
        key = tuple(lrow[c] for c in shared)
        for rrow in index.get(key, ()):
            values = lrow.to_dict()
            values.update({c: rrow[c] for c in right_only})
            result.insert(values)
    return result


def sort(
    relation: Relation,
    by: Sequence[str],
    descending: bool = False,
) -> Relation:
    """Order rows by the given columns (None sorts first)."""
    if not by:
        raise QueryError("sort requires at least one column")
    for name in by:
        relation.schema.column(name)

    def sort_key(row: Row) -> tuple:
        # None-safe: (is-not-None, value) keeps NULLs first and avoids
        # comparing None to concrete values.
        return tuple((row[c] is not None, row[c]) for c in by)

    ordered = sorted(relation, key=sort_key, reverse=descending)
    result = relation.empty_like()
    for row in ordered:
        result.insert(row)
    return result


def limit(relation: Relation, n: int) -> Relation:
    """Keep only the first ``n`` rows (insertion order)."""
    if n < 0:
        raise QueryError("limit must be non-negative")
    result = relation.empty_like()
    for row in relation.rows[:n]:
        result.insert(row)
    return result


# ---------------------------------------------------------------------------
# Aggregation
# ---------------------------------------------------------------------------


def _agg_count(values: list[Any]) -> int:
    return sum(1 for v in values if v is not None)


def _agg_sum(values: list[Any]) -> Any:
    present = [v for v in values if v is not None]
    return sum(present) if present else None


def _agg_avg(values: list[Any]) -> Optional[float]:
    present = [v for v in values if v is not None]
    return sum(present) / len(present) if present else None


def _agg_min(values: list[Any]) -> Any:
    present = [v for v in values if v is not None]
    return min(present) if present else None


def _agg_max(values: list[Any]) -> Any:
    present = [v for v in values if v is not None]
    return max(present) if present else None


#: Built-in aggregate functions usable by name in :func:`aggregate`.
AGGREGATES: dict[str, Callable[[list[Any]], Any]] = {
    "count": _agg_count,
    "sum": _agg_sum,
    "avg": _agg_avg,
    "min": _agg_min,
    "max": _agg_max,
}


def aggregate(
    relation: Relation,
    group_by: Sequence[str],
    aggregations: dict[str, tuple[str, str]],
    new_name: Optional[str] = None,
) -> Relation:
    """γ — group rows and compute aggregates.

    Parameters
    ----------
    group_by:
        Columns to group on (may be empty for a single global group).
    aggregations:
        Maps output column name → (aggregate function name, input column).
        Function names come from :data:`AGGREGATES`.

    The output schema has the ``group_by`` columns followed by one column
    per aggregation.  Aggregate outputs use the STR-free permissive FLOAT
    domain for avg and the input column's domain otherwise, except count
    which is INT.
    """
    from repro.relational.schema import Column
    from repro.relational.types import FLOAT, INT

    for name in group_by:
        relation.schema.column(name)
    out_columns = [relation.schema.column(n) for n in group_by]
    for out_name, (func_name, in_col) in aggregations.items():
        if func_name not in AGGREGATES:
            raise QueryError(
                f"unknown aggregate {func_name!r} "
                f"(available: {sorted(AGGREGATES)})"
            )
        relation.schema.column(in_col)
        if func_name == "count":
            out_columns.append(Column(out_name, INT))
        elif func_name == "avg":
            out_columns.append(Column(out_name, FLOAT))
        else:
            out_columns.append(Column(out_name, relation.schema.column(in_col).domain))
    out_schema = RelationSchema(
        new_name or f"{relation.schema.name}_agg", out_columns
    )

    groups: dict[tuple[Any, ...], list[Row]] = {}
    order: list[tuple[Any, ...]] = []
    for row in relation:
        key = tuple(row[c] for c in group_by)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(row)

    result = Relation(out_schema)
    if not group_by and not groups:
        # Global aggregate over an empty relation still yields one row.
        groups[()] = []
        order.append(())
    for key in order:
        rows = groups[key]
        values: dict[str, Any] = dict(zip(group_by, key))
        for out_name, (func_name, in_col) in aggregations.items():
            values[out_name] = AGGREGATES[func_name]([r[in_col] for r in rows])
        result.insert(values)
    return result


def extend(
    relation: Relation,
    column_name: str,
    domain: Any,
    compute: Callable[[Row], Any],
    new_name: Optional[str] = None,
) -> Relation:
    """Add a derived column computed per-row (the ε operator)."""
    from repro.relational.schema import Column
    from repro.relational.types import Domain, domain_by_name

    if column_name in relation.schema:
        raise SchemaError(
            f"relation {relation.schema.name!r} already has column {column_name!r}"
        )
    dom = domain_by_name(domain) if isinstance(domain, str) else domain
    if not isinstance(dom, Domain):
        raise SchemaError(f"invalid domain {domain!r}")
    out_schema = RelationSchema(
        new_name or relation.schema.name,
        list(relation.schema.columns) + [Column(column_name, dom)],
        key=relation.schema.key,
    )
    result = Relation(out_schema)
    for row in relation:
        values = row.to_dict()
        values[column_name] = compute(row)
        result.insert(values)
    return result
