"""JSON persistence for databases, relations, and tagged relations.

The engine is in-memory; experiments and examples still need durable
snapshots (to ship a designed quality schema plus its data, or to diff
two monitoring runs).  Everything here round-trips exactly: values are
encoded with type markers so DATE/DATETIME survive.
"""

from __future__ import annotations

import datetime as _dt
import json
import os
import tempfile
from pathlib import Path
from typing import Any

from repro.errors import SchemaError
from repro.relational.catalog import Database
from repro.relational.relation import Relation
from repro.relational.schema import RelationSchema
from repro.tagging.cell import QualityCell
from repro.tagging.indicators import IndicatorValue, TagSchema
from repro.tagging.relation import TaggedRelation


def encode_value(value: Any) -> Any:
    """Encode one cell value with a type marker where needed."""
    if isinstance(value, _dt.datetime):
        return {"$type": "datetime", "value": value.isoformat()}
    if isinstance(value, _dt.date):
        return {"$type": "date", "value": value.isoformat()}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise SchemaError(
        f"value {value!r} of type {type(value).__name__} is not serializable"
    )


def decode_value(data: Any) -> Any:
    """Decode a value produced by :func:`encode_value`."""
    if isinstance(data, dict) and "$type" in data:
        if data["$type"] == "date":
            return _dt.date.fromisoformat(data["value"])
        if data["$type"] == "datetime":
            return _dt.datetime.fromisoformat(data["value"])
        raise SchemaError(f"unknown value type marker {data['$type']!r}")
    return data


# ---------------------------------------------------------------------------
# Plain relations
# ---------------------------------------------------------------------------


def relation_to_dict(relation: Relation) -> dict[str, Any]:
    """Serialize a relation with typed values."""
    return {
        "kind": "relation",
        "schema": relation.schema.to_dict(),
        "rows": [
            {name: encode_value(value) for name, value in row.to_dict().items()}
            for row in relation
        ],
    }


def relation_from_dict(data: dict[str, Any]) -> Relation:
    """Deserialize a relation produced by :func:`relation_to_dict`."""
    if data.get("kind") != "relation":
        raise SchemaError(f"not a serialized relation: kind={data.get('kind')!r}")
    schema = RelationSchema.from_dict(data["schema"])
    relation = Relation(schema)
    for row in data["rows"]:
        relation.insert({name: decode_value(value) for name, value in row.items()})
    return relation


# ---------------------------------------------------------------------------
# Tagged relations
# ---------------------------------------------------------------------------


def _encode_tag(tag: IndicatorValue) -> dict[str, Any]:
    encoded: dict[str, Any] = {
        "name": tag.name,
        "value": encode_value(tag.value),
    }
    if tag.meta:
        encoded["meta"] = {
            key: encode_value(value) for key, value in tag.meta
        }
    return encoded


def _decode_tag(data: dict[str, Any]) -> IndicatorValue:
    meta = {
        key: decode_value(value)
        for key, value in data.get("meta", {}).items()
    }
    return IndicatorValue(data["name"], decode_value(data["value"]), meta=meta)


def tagged_relation_to_dict(relation: TaggedRelation) -> dict[str, Any]:
    """Serialize a tagged relation (schema + tag schema + cells)."""
    rows = []
    for row in relation:
        cells = {}
        for name in relation.schema.column_names:
            cell = row[name]
            cells[name] = {
                "value": encode_value(cell.value),
                "tags": [_encode_tag(tag) for tag in cell.tags],
            }
        rows.append(cells)
    return {
        "kind": "tagged_relation",
        "schema": relation.schema.to_dict(),
        "tag_schema": relation.tag_schema.to_dict(),
        "rows": rows,
    }


def tagged_relation_from_dict(data: dict[str, Any]) -> TaggedRelation:
    """Deserialize a tagged relation."""
    if data.get("kind") != "tagged_relation":
        raise SchemaError(
            f"not a serialized tagged relation: kind={data.get('kind')!r}"
        )
    schema = RelationSchema.from_dict(data["schema"])
    tag_schema = TagSchema.from_dict(data["tag_schema"])
    relation = TaggedRelation(schema, tag_schema)
    for row in data["rows"]:
        cells = {}
        for name, cell_data in row.items():
            cells[name] = QualityCell(
                decode_value(cell_data["value"]),
                [_decode_tag(tag) for tag in cell_data.get("tags", [])],
            )
        relation.insert(cells)
    return relation


# ---------------------------------------------------------------------------
# Databases
# ---------------------------------------------------------------------------


def database_to_dict(database: Database) -> dict[str, Any]:
    """Serialize a database's relations (constraints are code, not data)."""
    return {
        "kind": "database",
        "name": database.name,
        "relations": {
            name: relation_to_dict(database.relation(name))
            for name in database.relation_names
        },
    }


def database_from_dict(data: dict[str, Any]) -> Database:
    """Deserialize a database; primary keys are re-enforced from schemas."""
    if data.get("kind") != "database":
        raise SchemaError(f"not a serialized database: kind={data.get('kind')!r}")
    database = Database(data["name"])
    for relation_data in data["relations"].values():
        restored = relation_from_dict(relation_data)
        database.create_relation(restored.schema)
        for row in restored:
            database.insert(restored.schema.name, row.to_dict())
    return database


# ---------------------------------------------------------------------------
# File helpers
# ---------------------------------------------------------------------------

_SERIALIZERS = {
    Relation: relation_to_dict,
    TaggedRelation: tagged_relation_to_dict,
    Database: database_to_dict,
}

_DESERIALIZERS = {
    "relation": relation_from_dict,
    "tagged_relation": tagged_relation_from_dict,
    "database": database_from_dict,
}


def save(obj: Relation | TaggedRelation | Database, path: str | Path) -> Path:
    """Write a relation / tagged relation / database to a JSON file.

    The write is atomic: the payload goes to a temporary file in the
    target directory, is fsynced, and only then renamed over the
    destination (``os.replace``).  A crash or encode error mid-write can
    therefore never leave a truncated snapshot — the previous file, if
    any, survives intact.
    """
    for cls, serializer in _SERIALIZERS.items():
        if isinstance(obj, cls):
            payload = serializer(obj)
            break
    else:
        raise SchemaError(f"cannot serialize object of type {type(obj).__name__}")
    target = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=target.parent or Path("."), prefix=target.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1, sort_keys=True)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return target


def load(path: str | Path) -> Relation | TaggedRelation | Database:
    """Read back an object written by :func:`save`."""
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    kind = data.get("kind")
    deserializer = _DESERIALIZERS.get(kind)
    if deserializer is None:
        raise SchemaError(f"unknown serialized kind {kind!r}")
    return deserializer(data)
