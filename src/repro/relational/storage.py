"""JSON persistence for databases, relations, and tagged relations.

The engine is in-memory; experiments and examples still need durable
snapshots (to ship a designed quality schema plus its data, or to diff
two monitoring runs).  Everything here round-trips exactly: values are
encoded with type markers so DATE/DATETIME survive.
"""

from __future__ import annotations

import datetime as _dt
import json
import os
import shutil
import tempfile
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Any

from repro.errors import SchemaError
from repro.relational.catalog import Database
from repro.relational.partition import PartitionSpec
from repro.relational.relation import Relation
from repro.relational.schema import RelationSchema
from repro.tagging.cell import QualityCell
from repro.tagging.indicators import IndicatorValue, TagSchema
from repro.tagging.relation import TaggedRelation


def encode_value(value: Any) -> Any:
    """Encode one cell value with a type marker where needed."""
    if isinstance(value, _dt.datetime):
        return {"$type": "datetime", "value": value.isoformat()}
    if isinstance(value, _dt.date):
        return {"$type": "date", "value": value.isoformat()}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise SchemaError(
        f"value {value!r} of type {type(value).__name__} is not serializable"
    )


def decode_value(data: Any) -> Any:
    """Decode a value produced by :func:`encode_value`."""
    if isinstance(data, dict) and "$type" in data:
        if data["$type"] == "date":
            return _dt.date.fromisoformat(data["value"])
        if data["$type"] == "datetime":
            return _dt.datetime.fromisoformat(data["value"])
        raise SchemaError(f"unknown value type marker {data['$type']!r}")
    return data


# ---------------------------------------------------------------------------
# Plain relations
# ---------------------------------------------------------------------------


def relation_to_dict(relation: Relation) -> dict[str, Any]:
    """Serialize a relation with typed values."""
    return {
        "kind": "relation",
        "schema": relation.schema.to_dict(),
        "rows": [
            {name: encode_value(value) for name, value in row.to_dict().items()}
            for row in relation
        ],
    }


def relation_from_dict(data: dict[str, Any]) -> Relation:
    """Deserialize a relation produced by :func:`relation_to_dict`."""
    if data.get("kind") != "relation":
        raise SchemaError(f"not a serialized relation: kind={data.get('kind')!r}")
    schema = RelationSchema.from_dict(data["schema"])
    relation = Relation(schema)
    for row in data["rows"]:
        relation.insert({name: decode_value(value) for name, value in row.items()})
    return relation


# ---------------------------------------------------------------------------
# Tagged relations
# ---------------------------------------------------------------------------


def _encode_tag(tag: IndicatorValue) -> dict[str, Any]:
    encoded: dict[str, Any] = {
        "name": tag.name,
        "value": encode_value(tag.value),
    }
    if tag.meta:
        encoded["meta"] = {
            key: encode_value(value) for key, value in tag.meta
        }
    return encoded


def _decode_tag(data: dict[str, Any]) -> IndicatorValue:
    meta = {
        key: decode_value(value)
        for key, value in data.get("meta", {}).items()
    }
    return IndicatorValue(data["name"], decode_value(data["value"]), meta=meta)


def tagged_relation_to_dict(relation: TaggedRelation) -> dict[str, Any]:
    """Serialize a tagged relation (schema + tag schema + cells)."""
    rows = []
    for row in relation:
        cells = {}
        for name in relation.schema.column_names:
            cell = row[name]
            cells[name] = {
                "value": encode_value(cell.value),
                "tags": [_encode_tag(tag) for tag in cell.tags],
            }
        rows.append(cells)
    return {
        "kind": "tagged_relation",
        "schema": relation.schema.to_dict(),
        "tag_schema": relation.tag_schema.to_dict(),
        "rows": rows,
    }


def tagged_relation_from_dict(data: dict[str, Any]) -> TaggedRelation:
    """Deserialize a tagged relation."""
    if data.get("kind") != "tagged_relation":
        raise SchemaError(
            f"not a serialized tagged relation: kind={data.get('kind')!r}"
        )
    schema = RelationSchema.from_dict(data["schema"])
    tag_schema = TagSchema.from_dict(data["tag_schema"])
    relation = TaggedRelation(schema, tag_schema)
    for row in data["rows"]:
        cells = {}
        for name, cell_data in row.items():
            cells[name] = QualityCell(
                decode_value(cell_data["value"]),
                [_decode_tag(tag) for tag in cell_data.get("tags", [])],
            )
        relation.insert(cells)
    return relation


# ---------------------------------------------------------------------------
# Databases
# ---------------------------------------------------------------------------


def database_to_dict(database: Database) -> dict[str, Any]:
    """Serialize a database's relations (constraints are code, not data)."""
    relations: dict[str, Any] = {}
    for name in database.relation_names:
        relation = database.relation(name)
        encoded = relation_to_dict(relation)
        if relation.partition_spec is not None:
            encoded["partition"] = _encode_partition_spec(
                relation.partition_spec
            )
        relations[name] = encoded
    return {
        "kind": "database",
        "name": database.name,
        "relations": relations,
    }


def database_from_dict(data: dict[str, Any]) -> Database:
    """Deserialize a database; primary keys are re-enforced from schemas."""
    if data.get("kind") != "database":
        raise SchemaError(f"not a serialized database: kind={data.get('kind')!r}")
    database = Database(data["name"])
    for relation_data in data["relations"].values():
        restored = relation_from_dict(relation_data)
        database.create_relation(restored.schema)
        if "partition" in relation_data:
            database.repartition(
                restored.schema.name,
                _decode_partition_spec(relation_data["partition"]),
            )
        for row in restored:
            database.insert(restored.schema.name, row.to_dict())
    return database


# ---------------------------------------------------------------------------
# Partitioned snapshots (directory-per-partition layout)
# ---------------------------------------------------------------------------


def _encode_partition_spec(spec: PartitionSpec) -> dict[str, Any]:
    data = spec.to_dict()
    if "bounds" in data:
        data["bounds"] = [encode_value(bound) for bound in data["bounds"]]
    return data


def _decode_partition_spec(data: dict[str, Any]) -> PartitionSpec:
    decoded = dict(data)
    if "bounds" in decoded:
        decoded["bounds"] = [decode_value(bound) for bound in decoded["bounds"]]
    return PartitionSpec.from_dict(decoded)


def _bucket_of_dir(path: Path) -> int:
    """The bucket number of one ``key=<bucket>`` partition directory."""
    try:
        return int(path.name.split("=", 1)[1])
    except (IndexError, ValueError):
        raise SchemaError(
            f"not a partition directory: {path.name!r}"
        ) from None


def _save_partitioned(
    obj: Relation | TaggedRelation, target: Path
) -> Path:
    """Write a partitioned relation as ``<dir>/key=<bucket>/part.json``.

    Each partition file (and ``_meta.json``) is written with the same
    atomic mkstemp+fsync+replace protocol as flat snapshots, so a crash
    mid-save never corrupts a previously-saved partition.  Only dirty
    buckets — plus any bucket missing from the target — are rewritten,
    and the per-partition writes fan out over a thread pool (file I/O
    releases the GIL).
    """
    spec = obj.partition_spec
    assert spec is not None
    count = spec.count
    tagged = isinstance(obj, TaggedRelation)
    serializer = tagged_relation_to_dict if tagged else relation_to_dict
    target.mkdir(parents=True, exist_ok=True)

    meta: dict[str, Any] = {
        "kind": "partitioned",
        "payload_kind": "tagged_relation" if tagged else "relation",
        "schema": obj.schema.to_dict(),
        "partition": _encode_partition_spec(spec),
    }
    if tagged:
        meta["tag_schema"] = obj.tag_schema.to_dict()
    _atomic_write_json(meta, target / "_meta.json")

    present: set[int] = set()
    for child in target.glob("key=*"):
        bucket = _bucket_of_dir(child)
        if bucket >= count:
            # Stale leftovers from a wider previous layout.
            shutil.rmtree(child)
        elif (child / "part.json").exists():
            present.add(bucket)

    dirty = obj.dirty_partitions
    rewrites = sorted(
        bucket
        for bucket in range(count)
        if bucket in dirty or bucket not in present
    )

    def write_bucket(bucket: int) -> None:
        part_dir = target / f"key={bucket}"
        part_dir.mkdir(exist_ok=True)
        _atomic_write_json(
            serializer(obj.partition(bucket)), part_dir / "part.json"
        )

    if len(rewrites) > 1:
        with ThreadPoolExecutor(
            max_workers=min(8, len(rewrites))
        ) as pool:
            # Consume the iterator so worker exceptions propagate.
            list(pool.map(write_bucket, rewrites))
    else:
        for bucket in rewrites:
            write_bucket(bucket)
    obj.mark_partitions_clean()
    return target


def _load_partitioned(path: Path) -> Relation | TaggedRelation:
    """Read back a directory snapshot written by :func:`_save_partitioned`."""
    with open(path / "_meta.json", "r", encoding="utf-8") as handle:
        meta = json.load(handle)
    if meta.get("kind") != "partitioned":
        raise SchemaError(
            f"not a partitioned snapshot: kind={meta.get('kind')!r}"
        )
    spec = _decode_partition_spec(meta["partition"])
    payload_kind = meta["payload_kind"]
    schema = RelationSchema.from_dict(meta["schema"])
    if payload_kind == "tagged_relation":
        assembled: Relation | TaggedRelation = TaggedRelation(
            schema, TagSchema.from_dict(meta["tag_schema"])
        )
    elif payload_kind == "relation":
        assembled = Relation(schema)
    else:
        raise SchemaError(f"unknown partition payload kind {payload_kind!r}")
    assembled.repartition(spec)

    part_files = sorted(
        (part for part in path.glob("key=*/part.json")),
        key=lambda part: _bucket_of_dir(part.parent),
    )
    deserializer = _DESERIALIZERS[payload_kind]

    def read_bucket(part: Path) -> Any:
        with open(part, "r", encoding="utf-8") as handle:
            return deserializer(json.load(handle))

    if len(part_files) > 1:
        with ThreadPoolExecutor(
            max_workers=min(8, len(part_files))
        ) as pool:
            shards = list(pool.map(read_bucket, part_files))
    else:
        shards = [read_bucket(part) for part in part_files]
    for shard in shards:
        # Stable bucketing re-routes each row into the same partition
        # its file came from.
        for row in shard:
            assembled.insert(row)
    assembled.mark_partitions_clean()
    return assembled


# ---------------------------------------------------------------------------
# File helpers
# ---------------------------------------------------------------------------

_SERIALIZERS = {
    Relation: relation_to_dict,
    TaggedRelation: tagged_relation_to_dict,
    Database: database_to_dict,
}

_DESERIALIZERS = {
    "relation": relation_from_dict,
    "tagged_relation": tagged_relation_from_dict,
    "database": database_from_dict,
}


def _atomic_write_json(payload: Any, target: Path) -> Path:
    """Write ``payload`` as JSON via mkstemp + fsync + ``os.replace``."""
    fd, tmp_name = tempfile.mkstemp(
        dir=target.parent or Path("."), prefix=target.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1, sort_keys=True)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return target


def save(obj: Relation | TaggedRelation | Database, path: str | Path) -> Path:
    """Write a relation / tagged relation / database to disk.

    Unpartitioned objects become one JSON file; the write is atomic: the
    payload goes to a temporary file in the target directory, is
    fsynced, and only then renamed over the destination
    (``os.replace``).  A crash or encode error mid-write can therefore
    never leave a truncated snapshot — the previous file, if any,
    survives intact.

    A *partitioned* relation becomes a **directory** snapshot
    (``<path>/key=<bucket>/part.json`` plus ``_meta.json``); each
    partition file gets the same atomic protocol independently, only
    dirty buckets are rewritten over an existing snapshot, and the
    per-partition writes run on a thread pool.
    """
    target = Path(path)
    if (
        isinstance(obj, (Relation, TaggedRelation))
        and obj.partition_spec is not None
    ):
        return _save_partitioned(obj, target)
    for cls, serializer in _SERIALIZERS.items():
        if isinstance(obj, cls):
            payload = serializer(obj)
            break
    else:
        raise SchemaError(f"cannot serialize object of type {type(obj).__name__}")
    return _atomic_write_json(payload, target)


def load(path: str | Path) -> Relation | TaggedRelation | Database:
    """Read back an object written by :func:`save`.

    A directory path loads a partitioned snapshot (the stable hash
    re-routes every row into the bucket its file came from); a file
    path loads a flat one.
    """
    source = Path(path)
    if source.is_dir():
        return _load_partitioned(source)
    with open(source, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    kind = data.get("kind")
    deserializer = _DESERIALIZERS.get(kind)
    if deserializer is None:
        raise SchemaError(f"unknown serialized kind {kind!r}")
    return deserializer(data)
