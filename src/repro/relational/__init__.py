"""In-memory relational engine substrate.

The paper situates data quality modeling on top of an ordinary relational
database (Tables 1 and 2 are relations; the application view of Step 1 is
mapped onto relations).  This package provides that substrate: typed
schemas, relations, a relational algebra, integrity constraints, a small
transaction manager, and a catalog that ties them together.

The engine is deliberately self-contained (no external DBMS) so the
quality-tagging layers (:mod:`repro.tagging`, :mod:`repro.polygen`) can
extend its cell and operator model directly.

Public API
----------
:class:`~repro.relational.types.Domain` and the ``DOMAIN_*`` constants,
:class:`~repro.relational.schema.Column`,
:class:`~repro.relational.schema.RelationSchema`,
:class:`~repro.relational.relation.Relation`,
:class:`~repro.relational.relation.Row`,
the algebra functions in :mod:`repro.relational.algebra`,
constraints in :mod:`repro.relational.constraints`,
:class:`~repro.relational.catalog.Database`, and
:class:`~repro.relational.query.Query`.
"""

from repro.relational.algebra import (
    aggregate,
    cartesian_product,
    difference,
    distinct,
    intersection,
    natural_join,
    project,
    rename,
    select,
    sort,
    theta_join,
    union,
)
from repro.relational.catalog import Database
from repro.relational.constraints import (
    CheckConstraint,
    Constraint,
    ForeignKeyConstraint,
    NotNullConstraint,
    UniqueConstraint,
)
from repro.relational.partition import (
    PartitionSpec,
    hash_partitions,
    range_partitions,
)
from repro.relational.query import Query
from repro.relational.relation import Relation, Row
from repro.relational.snapshot import DatabaseSnapshot
from repro.relational.schema import Column, RelationSchema, schema
from repro.relational.transactions import Transaction, TransactionManager
from repro.relational.types import (
    BOOL,
    DATE,
    DATETIME,
    FLOAT,
    INT,
    STR,
    Domain,
)

__all__ = [
    "BOOL",
    "DATE",
    "DATETIME",
    "FLOAT",
    "INT",
    "STR",
    "CheckConstraint",
    "Column",
    "Constraint",
    "Database",
    "DatabaseSnapshot",
    "Domain",
    "ForeignKeyConstraint",
    "NotNullConstraint",
    "PartitionSpec",
    "Query",
    "Relation",
    "RelationSchema",
    "Row",
    "Transaction",
    "TransactionManager",
    "UniqueConstraint",
    "aggregate",
    "cartesian_product",
    "difference",
    "distinct",
    "hash_partitions",
    "intersection",
    "natural_join",
    "project",
    "range_partitions",
    "rename",
    "schema",
    "select",
    "sort",
    "theta_join",
    "union",
]
