"""Array-codec helpers shared by the columnar side-tables.

Two stores keep aligned array-per-key layouts next to a row store: the
columnar *tag* store (:class:`repro.tagging.columnar.ColumnarTagStore`,
one array per ``(column, indicator)`` pair) and the columnar *value*
store (:class:`repro.relational.columnar.ColumnarRelation`, one array
per column).  Both need the same three maintenance moves — grow every
array by one slot on append, compact every array to a keep-list on
delete, and detect length divergence from the backing row store — so
the moves live here, once, and the two side-tables cannot drift.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, MutableMapping, Optional, Sequence

__all__ = [
    "append_blank",
    "compact_in_place",
    "gather",
    "keep_indices",
    "misaligned",
]


def append_blank(arrays: Iterable[list], value: Any = None) -> None:
    """Grow every array by one slot (a fresh, untagged/unset position)."""
    for array in arrays:
        array.append(value)


def keep_indices(rows: Iterable[Any], predicate) -> list[int]:
    """Positions of ``rows`` that *survive* a delete-``predicate``."""
    return [
        index for index, row in enumerate(rows) if not predicate(row)
    ]


def gather(array: Sequence[Any], keep: Sequence[int]) -> list[Any]:
    """The kept positions of one array, in ``keep`` order."""
    return [array[index] for index in keep]


def compact_in_place(
    arrays: MutableMapping[Any, list], keep: Sequence[int]
) -> None:
    """Rebuild every array of a keyed mapping down to the kept positions.

    The delete-compaction move: after the backing row store drops the
    same positions, every array stays aligned with it.
    """
    for key, array in arrays.items():
        arrays[key] = [array[index] for index in keep]


def misaligned(
    expected: int, arrays: Mapping[Any, Sequence[Any]]
) -> Optional[tuple[Any, int]]:
    """The first ``(key, length)`` whose array diverges from ``expected``.

    ``None`` means every array matches the backing store's row count.
    Divergence is how a store detects that its backing relation was
    mutated behind its back.
    """
    for key, array in arrays.items():
        if len(array) != expected:
            return key, len(array)
    return None
