"""The quality-schema linter: batched Step 3/Step 4 consistency checks.

Where :mod:`repro.analysis.query` checks one statement, this module
checks the *schemas* statements run against:

- :func:`lint_tag_schema` — a tag schema against its relation schema
  (drift, DQ101) and against itself (unused indicators, DQ102);
- :func:`lint_merge` — two tag schemas about to be merged (conflicting
  indicator domains, DQ105), without raising mid-merge;
- :func:`lint_quality_schema` — a methodology-produced
  :class:`~repro.core.views.QualitySchema` against its Step 2 parameter
  view(s): parameters nothing operationalizes (DQ103), indicator
  annotations tracing to parameters that do not exist (DQ104), and
  conflicting indicator definitions (DQ105);
- :func:`lint_database` — every tagged relation of a catalog.

All functions return :class:`~repro.analysis.diagnostics.Diagnostics`
rather than raising, so a single lint run reports every problem.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Union

from repro.analysis.diagnostics import Diagnostics
from repro.core.views import ParameterView, QualitySchema, QualityView
from repro.relational.catalog import Database
from repro.relational.relation import Relation
from repro.relational.schema import RelationSchema
from repro.tagging.indicators import TagSchema
from repro.tagging.relation import TaggedRelation


def lint_tag_schema(
    tag_schema: TagSchema,
    relation_schema: Optional[RelationSchema] = None,
    *,
    context: str = "",
    diagnostics: Optional[Diagnostics] = None,
) -> Diagnostics:
    """Lint one tag schema, optionally against its relation schema."""
    diagnostics = diagnostics if diagnostics is not None else Diagnostics()
    if relation_schema is not None:
        missing = [
            column
            for column in tag_schema.tagged_columns
            if column not in relation_schema
        ]
        for column in missing:
            indicators = sorted(tag_schema.allowed_for(column))
            diagnostics.add(
                "DQ101",
                f"tag schema requires/allows indicators {indicators} on "
                f"column {column!r}, which does not exist in relation "
                f"{relation_schema.name!r} "
                f"(columns: {list(relation_schema.column_names)})",
                context=context,
            )
    used: set[str] = set()
    for column in tag_schema.tagged_columns:
        used |= tag_schema.allowed_for(column)
    for name in tag_schema.indicator_names:
        if name not in used:
            diagnostics.add(
                "DQ102",
                f"indicator {name!r} is defined but neither required nor "
                f"allowed on any column",
                context=context,
            )
    return diagnostics


def lint_merge(
    left: TagSchema,
    right: TagSchema,
    *,
    context: str = "",
    diagnostics: Optional[Diagnostics] = None,
) -> Diagnostics:
    """Report indicator-definition conflicts ``left.merge(right)`` would hit."""
    diagnostics = diagnostics if diagnostics is not None else Diagnostics()
    for name in sorted(
        set(left.indicator_names) & set(right.indicator_names)
    ):
        a = left.definition(name)
        b = right.definition(name)
        if a != b:
            diagnostics.add(
                "DQ105",
                f"indicator {name!r} is defined with conflicting domains: "
                f"{a.domain.name} vs {b.domain.name}; merge would fail",
                context=context,
            )
    return diagnostics


def lint_rename(
    tag_schema: TagSchema,
    mapping: Mapping[str, str],
    *,
    context: str = "",
    diagnostics: Optional[Diagnostics] = None,
) -> Diagnostics:
    """Report tagged-column collisions a rename would produce (DQ106).

    The advisory counterpart of the hard error
    :meth:`~repro.tagging.indicators.TagSchema.rename_columns` raises.
    """
    diagnostics = diagnostics if diagnostics is not None else Diagnostics()
    targets: dict[str, list[str]] = {}
    for column in tag_schema.tagged_columns:
        targets.setdefault(mapping.get(column, column), []).append(column)
    for target, columns in sorted(targets.items()):
        if len(columns) > 1:
            diagnostics.add(
                "DQ106",
                f"rename maps tagged columns {sorted(columns)} onto one "
                f"name {target!r}, merging their indicator requirements",
                context=context,
            )
    return diagnostics


def _parameter_names(
    parameter_views: Iterable[ParameterView],
) -> set[str]:
    names: set[str] = set()
    for view in parameter_views:
        for parameter in view.all_parameters():
            names.add(parameter.name)
    return names


def lint_quality_schema(
    quality_schema: Union[QualitySchema, QualityView],
    parameter_views: Iterable[ParameterView] = (),
    *,
    context: str = "",
    diagnostics: Optional[Diagnostics] = None,
) -> Diagnostics:
    """Lint the Step 2 → Step 3 → Step 4 chain of one quality schema.

    ``parameter_views`` supplies the Step 2 artifacts to check coverage
    against; a :class:`QualityView` that carries its own
    ``parameter_view`` is checked against that automatically.
    """
    diagnostics = diagnostics if diagnostics is not None else Diagnostics()
    context = context or quality_schema.name
    views = list(parameter_views)
    attached = getattr(quality_schema, "parameter_view", None)
    if attached is not None and attached not in views:
        views.append(attached)

    # DQ105: the same indicator name defined twice with different specs.
    definitions: dict[str, object] = {}
    for annotation in quality_schema.annotations:
        definition = annotation.indicator.to_definition()
        existing = definitions.get(definition.name)
        if existing is not None and existing != definition:
            diagnostics.add(
                "DQ105",
                f"indicator {definition.name!r} has conflicting "
                f"definitions across annotations (target "
                f"{'.'.join(annotation.target)})",
                context=context,
            )
        definitions.setdefault(definition.name, definition)

    if not views:
        return diagnostics

    parameter_names = _parameter_names(views)

    # DQ104: derived_from pointing at parameters Step 2 never attached.
    for annotation in quality_schema.annotations:
        for parameter_name in annotation.derived_from:
            if parameter_name not in parameter_names:
                diagnostics.add(
                    "DQ104",
                    f"indicator {annotation.indicator.name!r} at "
                    f"{'.'.join(annotation.target)} claims to "
                    f"operationalize parameter {parameter_name!r}, which "
                    f"no parameter view contains",
                    context=context,
                )

    # DQ103: parameters no indicator operationalizes.
    operationalized: set[str] = set()
    for annotation in quality_schema.annotations:
        operationalized.update(annotation.derived_from)
    for name in sorted(parameter_names - operationalized):
        diagnostics.add(
            "DQ103",
            f"quality parameter {name!r} has no operationalizing "
            f"indicator: the subjective requirement was never made "
            f"measurable",
            context=context,
        )
    return diagnostics


def lint_database(
    source: Union[Database, Mapping[str, Union[Relation, TaggedRelation]]],
    *,
    diagnostics: Optional[Diagnostics] = None,
) -> Diagnostics:
    """Lint every tagged relation of a database/catalog/mapping."""
    diagnostics = diagnostics if diagnostics is not None else Diagnostics()
    if isinstance(source, Mapping):
        items = sorted(source.items())
    else:
        items = [
            (name, source.relation(name)) for name in source.relation_names
        ]
    for name, relation in items:
        if isinstance(relation, TaggedRelation):
            lint_tag_schema(
                relation.tag_schema,
                relation.schema,
                context=name,
                diagnostics=diagnostics,
            )
    return diagnostics
