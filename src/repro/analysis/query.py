"""The QSQL semantic analyzer: plan-time checks before execution.

``analyze_query(sql, source)`` parses and resolves a statement against
a relation/catalog *without executing it*, returning the full
:class:`~repro.analysis.diagnostics.Diagnostics` list:

- name resolution (unknown relations, columns, indicators; QUALITY on
  untagged sources) — the errors that today surface mid-execution as
  ``UnknownColumnError``/``SQLError``;
- plan-time typechecking of comparisons, IN lists, and aggregates
  against column/indicator domains;
- indicator-coverage gaps (paper Step 3): QUALITY refs on columns where
  the indicator is neither required nor allowed, so the tag can never
  be present;
- conjunction satisfiability (``source = 'A' AND source = 'B'``),
  tautologies, dead predicates, and style lints.

A statement is *accepted* when the diagnostics contain no
error-severity finding; accepted statements execute without
``UnknownColumnError``/``SQLError`` on schema-conforming data (the
property the test suite enforces).
"""

from __future__ import annotations

import datetime as _dt
from typing import Any, Mapping, Optional, Union

from repro.analysis.diagnostics import Diagnostics
from repro.errors import UnknownRelationError
from repro.relational.catalog import Database
from repro.relational.relation import Relation
from repro.relational.schema import RelationSchema
from repro.sql.errors import SQLError
from repro.sql.nodes import (
    AggregateCall,
    BoolOp,
    ColumnRef,
    Comparison,
    Expr,
    InList,
    IsNull,
    Literal,
    NotOp,
    QualityRef,
    QualityScoreRef,
    SelectStatement,
)
from repro.sql.parser import parse
from repro.tagging.indicators import TagSchema
from repro.tagging.relation import TaggedRelation

AnyRelation = Union[Relation, TaggedRelation]

#: Domain names that compare freely with one another.
_NUMERIC = frozenset({"INT", "FLOAT"})

_ORDER_OPS = frozenset({"<", "<=", ">", ">="})


def _domain_class(domain_name: str) -> str:
    """Collapse domains into comparability classes."""
    if domain_name in _NUMERIC:
        return "numeric"
    return domain_name


def _literal_class(value: Any) -> str:
    """The comparability class of a Python literal value."""
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "BOOL"
    if isinstance(value, (int, float)):
        return "numeric"
    if isinstance(value, _dt.datetime):
        return "DATETIME"
    if isinstance(value, _dt.date):
        return "DATE"
    return "STR"


def _describe_operand(operand: Any) -> str:
    if isinstance(operand, ColumnRef):
        return operand.column
    if isinstance(operand, QualityRef):
        return f"QUALITY({operand.column}.{operand.indicator})"
    if isinstance(operand, QualityScoreRef):
        return f"QUALITY({operand.parameter})"
    return repr(getattr(operand, "value", operand))


def _conjuncts(expr: Expr) -> list[Expr]:
    if isinstance(expr, BoolOp) and expr.op == "AND":
        return _conjuncts(expr.left) + _conjuncts(expr.right)
    return [expr]


def _disjuncts(expr: Expr) -> list[Expr]:
    if isinstance(expr, BoolOp) and expr.op == "OR":
        return _disjuncts(expr.left) + _disjuncts(expr.right)
    return [expr]


def _walk_exprs(expr: Expr):
    """Yield every node of a WHERE tree, top-down."""
    yield expr
    if isinstance(expr, BoolOp):
        yield from _walk_exprs(expr.left)
        yield from _walk_exprs(expr.right)
    elif isinstance(expr, NotOp):
        yield from _walk_exprs(expr.operand)


class _Analyzer:
    """One analysis run over one parsed statement."""

    def __init__(
        self,
        statement: SelectStatement,
        source: Any,
        sql: Optional[str],
        context: str,
    ) -> None:
        self.statement = statement
        self.source = source
        self.sql = sql
        self.context = context
        self.diagnostics = Diagnostics()
        self.schema: Optional[RelationSchema] = None
        self.tag_schema: Optional[TagSchema] = None
        self.tagged = False

    # -- plumbing ------------------------------------------------------------

    def add(self, code: str, message: str, span=None, **kwargs: Any) -> None:
        self.diagnostics.add(
            code,
            message,
            span=span,
            source=self.sql,
            context=self.context,
            **kwargs,
        )

    # -- resolution ----------------------------------------------------------

    def resolve(self) -> bool:
        """Resolve the FROM relation; False when analysis cannot continue."""
        statement, source = self.statement, self.source
        relation: Optional[AnyRelation] = None
        if source is None:
            return False
        if isinstance(source, (Relation, TaggedRelation)):
            if source.schema.name != statement.relation:
                self.add(
                    "DQ201",
                    f"FROM {statement.relation!r} does not match the "
                    f"supplied relation {source.schema.name!r}",
                    span=statement.relation_span,
                )
                return False
            relation = source
        elif isinstance(source, Database):
            try:
                relation = source.relation(statement.relation)
            except UnknownRelationError:
                self.add(
                    "DQ201",
                    f"database {source.name!r} has no relation "
                    f"{statement.relation!r} "
                    f"(relations: {list(source.relation_names)})",
                    span=statement.relation_span,
                )
                return False
        elif isinstance(source, Mapping):
            if statement.relation not in source:
                self.add(
                    "DQ201",
                    f"unknown relation {statement.relation!r} "
                    f"(available: {sorted(source)})",
                    span=statement.relation_span,
                )
                return False
            relation = source[statement.relation]
        elif hasattr(source, "relation") and hasattr(source, "relation_names"):
            # QualityDatabase and catalog-likes.
            if statement.relation not in getattr(source, "relation_names"):
                self.add(
                    "DQ201",
                    f"unknown relation {statement.relation!r} "
                    f"(available: {list(source.relation_names)})",
                    span=statement.relation_span,
                )
                return False
            relation = source.relation(statement.relation)
        else:
            self.add(
                "DQ201",
                f"cannot execute against source of type "
                f"{type(source).__name__}",
                span=statement.relation_span,
            )
            return False
        self.schema = relation.schema
        self.tagged = isinstance(relation, TaggedRelation)
        self.tag_schema = relation.tag_schema if self.tagged else None
        return True

    # -- reference checks ----------------------------------------------------

    def check_column_ref(self, ref: ColumnRef) -> bool:
        assert self.schema is not None
        if ref.column not in self.schema:
            self.add(
                "DQ202",
                f"relation {self.schema.name!r} has no column "
                f"{ref.column!r} (columns: {list(self.schema.column_names)})",
                span=ref.span,
            )
            return False
        return True

    def check_quality_ref(self, ref: QualityRef) -> bool:
        assert self.schema is not None
        ok = True
        if not self.tagged:
            self.add(
                "DQ205",
                f"QUALITY({ref.column}.{ref.indicator}) requires a tagged "
                f"relation; {self.schema.name!r} is untagged",
                span=ref.span,
            )
            ok = False
        if ref.column not in self.schema:
            self.add(
                "DQ202",
                f"relation {self.schema.name!r} has no column "
                f"{ref.column!r} (columns: {list(self.schema.column_names)})",
                span=ref.span,
            )
            return False
        if self.tag_schema is None:
            return ok
        if ref.indicator not in self.tag_schema.indicator_names:
            self.add(
                "DQ203",
                f"tag schema of {self.schema.name!r} defines no indicator "
                f"{ref.indicator!r} "
                f"(defined: {list(self.tag_schema.indicator_names)})",
                span=ref.span,
            )
            return False
        if ref.indicator not in self.tag_schema.allowed_for(ref.column):
            allowed = sorted(self.tag_schema.allowed_for(ref.column))
            self.add(
                "DQ204",
                f"indicator {ref.indicator!r} is neither required nor "
                f"allowed on column {ref.column!r} (allowed: {allowed}); "
                f"the tag can never be present there",
                span=ref.span,
            )
        return ok

    def check_operand(self, operand: Any) -> None:
        if isinstance(operand, ColumnRef):
            self.check_column_ref(operand)
        elif isinstance(operand, QualityRef):
            self.check_quality_ref(operand)
        elif isinstance(operand, QualityScoreRef):
            self.check_quality_score_ref(operand)

    def check_quality_score_ref(self, ref: QualityScoreRef) -> bool:
        assert self.schema is not None
        if not self.tagged:
            self.add(
                "DQ205",
                f"QUALITY({ref.parameter}) requires a tagged relation; "
                f"{self.schema.name!r} is untagged",
                span=ref.span,
            )
            return False
        from repro.quality.materialize import profile_for

        profile = profile_for(self.schema.name)
        if profile is None:
            self.add(
                "DQ212",
                f"QUALITY({ref.parameter}): no scoring profile is bound "
                f"to relation {self.schema.name!r}; executing would "
                f"raise instead of scoring",
                span=ref.span,
            )
            return False
        if not profile.defines(ref.parameter):
            self.add(
                "DQ212",
                f"QUALITY({ref.parameter}): the bound scoring profile "
                f"{profile.name!r} defines no parameter "
                f"{ref.parameter!r} "
                f"(defined: {list(profile.parameters)})",
                span=ref.span,
            )
            return False
        return True

    def check_references(self) -> None:
        """Resolve every column/indicator reference (DQ202-DQ205).

        This is the single implementation of reference resolution: the
        full analysis run and the executor's fail-fast pre-checks (via
        :func:`reference_diagnostics`) both route through it, so their
        messages cannot drift.  Clause order matches the executor's
        historical checking order: select list, GROUP BY, WHERE, then
        ORDER BY (aggregate ORDER BY names *output* columns and is
        validated separately by :meth:`check_group_order`).
        """
        statement = self.statement
        for item in statement.select_items or ():
            expr = item.expr
            if isinstance(expr, AggregateCall):
                if expr.operand is not None:
                    self.check_operand(expr.operand)
            else:
                self.check_operand(expr)
        for key in statement.group_by:
            self.check_operand(key)
        if statement.where is not None:
            for node in _walk_exprs(statement.where):
                if isinstance(node, Comparison):
                    self.check_operand(node.left)
                    self.check_operand(node.right)
                elif isinstance(node, (InList, IsNull)):
                    self.check_operand(node.operand)
        if not statement.has_aggregates:
            for item in statement.order_by:
                self.check_operand(item.key)

    # -- typechecking --------------------------------------------------------

    def operand_class(self, operand: Any) -> Optional[str]:
        """Comparability class, or None when unresolvable."""
        if isinstance(operand, Literal):
            return _literal_class(operand.value)
        if self.schema is None:
            return None
        if isinstance(operand, ColumnRef):
            if operand.column not in self.schema:
                return None
            return _domain_class(self.schema.column(operand.column).domain.name)
        if isinstance(operand, QualityRef):
            if self.tag_schema is None:
                return None
            if operand.indicator not in self.tag_schema.indicator_names:
                return None
            return _domain_class(
                self.tag_schema.definition(operand.indicator).domain.name
            )
        if isinstance(operand, QualityScoreRef):
            return "numeric"  # parameter scores are floats in [0, 1]
        return None

    def check_comparison_types(self, node: Comparison) -> None:
        left = self.operand_class(node.left)
        right = self.operand_class(node.right)
        if left is None or right is None:
            return
        if "NULL" in (left, right):
            self.add(
                "DQ211",
                f"comparison with NULL is never true; use "
                f"{_describe_operand(node.left)} IS [NOT] NULL",
                span=node.span,
            )
            return
        if left != right:
            hint = ""
            if {left, right} == {"DATE", "STR"} or {left, right} == {
                "DATETIME",
                "STR",
            }:
                hint = " (dates must be written as DATE '...')"
            self.add(
                "DQ210",
                f"cannot compare {_describe_operand(node.left)} "
                f"({left}) with {_describe_operand(node.right)} "
                f"({right}){hint}; the predicate can never be true",
                span=node.span,
            )

    def check_in_types(self, node: InList) -> None:
        operand = self.operand_class(node.operand)
        if operand is None:
            return
        if any(option is None for option in node.options):
            self.add(
                "DQ211",
                f"NULL in the IN list never matches; use "
                f"{_describe_operand(node.operand)} IS NULL",
                span=node.span,
            )
        mismatched = sorted(
            {
                _literal_class(option)
                for option in node.options
                if option is not None and _literal_class(option) != operand
            }
        )
        if mismatched:
            self.add(
                "DQ210",
                f"IN list mixes {_describe_operand(node.operand)} "
                f"({operand}) with {', '.join(mismatched)} options; "
                f"those options can never match",
                span=node.span,
            )

    # -- select list / aggregates -------------------------------------------

    def check_select_items(self) -> None:
        items = self.statement.select_items or ()
        seen_names: dict[str, int] = {}
        for item in items:
            name = item.output_name
            seen_names[name] = seen_names.get(name, 0) + 1
            if seen_names[name] == 2:
                self.add(
                    "DQ208",
                    f"duplicate output column {name!r} in the select list",
                    span=item.span,
                )
            expr = item.expr
            if isinstance(expr, AggregateCall):
                if expr.func in ("SUM", "AVG") and expr.operand is not None:
                    klass = self.operand_class(expr.operand)
                    if klass is not None and klass != "numeric":
                        self.add(
                            "DQ207",
                            f"{expr.func} requires a numeric operand; "
                            f"{_describe_operand(expr.operand)} is {klass}",
                            span=expr.span,
                        )

    def check_group_order(self) -> None:
        statement = self.statement
        if statement.has_aggregates:
            output_names = [
                item.output_name for item in statement.select_items or ()
            ]
            for item in statement.order_by:
                if isinstance(item.key, (QualityRef, QualityScoreRef)):
                    self.add(
                        "DQ206",
                        "ORDER BY QUALITY(...) cannot follow aggregation",
                        span=item.span,
                    )
                elif item.key.column not in output_names:
                    self.add(
                        "DQ206",
                        f"ORDER BY {item.key.column!r} must name an output "
                        f"column of the aggregation "
                        f"(outputs: {output_names})",
                        span=item.span,
                    )
        seen_keys: dict[Any, int] = {}
        for item in statement.order_by:
            seen_keys[item.key] = seen_keys.get(item.key, 0) + 1
            if seen_keys[item.key] == 2:
                self.add(
                    "DQ307",
                    f"duplicate ORDER BY key "
                    f"{_describe_operand(item.key)}; later occurrences "
                    f"never affect the ordering",
                    span=item.span,
                )

    # -- predicate semantics -------------------------------------------------

    def check_where(self) -> None:
        where = self.statement.where
        if where is None:
            return
        for node in _walk_exprs(where):
            if isinstance(node, Comparison):
                self.check_comparison_types(node)
                self.check_degenerate_comparison(node)
            elif isinstance(node, InList):
                self.check_in_types(node)
                self.check_in_duplicates(node)
        self.check_conjunction(where)
        self.check_tautologies(where)
        self.check_duplicate_conjuncts(where)

    def check_degenerate_comparison(self, node: Comparison) -> None:
        if isinstance(node.left, Literal) and isinstance(node.right, Literal):
            truth = _constant_truth(node)
            verdict = "always true" if truth else "never true"
            self.add(
                "DQ305",
                f"both comparison operands are literals; the predicate is "
                f"constant ({verdict})",
                span=node.span,
            )
            return
        if node.left == node.right and not isinstance(node.left, Literal):
            always = node.op in ("=", "<=", ">=")
            verdict = (
                "always true for non-null values"
                if always
                else "never true"
            )
            self.add(
                "DQ304",
                f"{_describe_operand(node.left)} is compared with itself "
                f"({verdict})",
                span=node.span,
            )

    def check_in_duplicates(self, node: InList) -> None:
        seen: list[Any] = []
        duplicates: list[Any] = []
        for option in node.options:
            if option in seen and option not in duplicates:
                duplicates.append(option)
            seen.append(option)
        if duplicates:
            self.add(
                "DQ302",
                f"IN list contains duplicate option(s): "
                f"{', '.join(repr(d) for d in duplicates)}",
                span=node.span,
            )

    def check_duplicate_conjuncts(self, where: Expr) -> None:
        conjuncts = _conjuncts(where)
        seen: list[Expr] = []
        for conjunct in conjuncts:
            if conjunct in seen:
                self.add(
                    "DQ301",
                    "the same conjunct appears more than once in WHERE",
                    span=conjunct.span,
                )
            seen.append(conjunct)

    def check_tautologies(self, where: Expr) -> None:
        for node in _walk_exprs(where):
            if not (isinstance(node, BoolOp) and node.op == "OR"):
                continue
            disjuncts = _disjuncts(node)
            if self._or_is_tautology(disjuncts):
                self.add(
                    "DQ221",
                    "this disjunction is always true; the predicate does "
                    "not filter",
                    span=node.span,
                )
                return  # one report per WHERE is enough

    @staticmethod
    def _or_is_tautology(disjuncts: list[Expr]) -> bool:
        for i, a in enumerate(disjuncts):
            for b in disjuncts[i + 1 :]:
                if isinstance(b, NotOp) and b.operand == a:
                    return True
                if isinstance(a, NotOp) and a.operand == b:
                    return True
                if (
                    isinstance(a, Comparison)
                    and isinstance(b, Comparison)
                    and a.left == b.left
                    and a.right == b.right
                    and {a.op, b.op}
                    in ({"=", "<>"}, {"=", "!="}, {"<", ">="}, {">", "<="})
                ):
                    return True
        return False

    def check_conjunction(self, where: Expr) -> None:
        """Satisfiability of the top-level AND conjunction (DQ220)."""
        facts: dict[Any, _OperandFacts] = {}
        for conjunct in _conjuncts(where):
            key = None
            if isinstance(conjunct, Comparison):
                key, op, value, _ = _normalize_comparison(conjunct)
                if key is None:
                    continue
                fact = facts.setdefault(key, _OperandFacts())
                fact.add_comparison(op, value, conjunct)
            elif isinstance(conjunct, InList):
                key = _operand_key(conjunct.operand)
                if key is None:
                    continue
                fact = facts.setdefault(key, _OperandFacts())
                fact.add_in(conjunct)
            elif isinstance(conjunct, IsNull):
                key = _operand_key(conjunct.operand)
                if key is None:
                    continue
                fact = facts.setdefault(key, _OperandFacts())
                fact.add_is_null(conjunct)
        for key, fact in facts.items():
            conflict = fact.find_conflict()
            if conflict is not None:
                message, node = conflict
                if key[0] == "col":
                    name = key[1]
                elif key[0] == "qs":
                    name = f"QUALITY({key[1]})"
                else:
                    name = f"QUALITY({key[1]}.{key[2]})"
                self.add(
                    "DQ220",
                    f"contradictory constraints on {name}: {message}; "
                    f"the query provably returns no rows",
                    span=node.span,
                )

    # -- statement-level style ----------------------------------------------

    def check_statement_style(self) -> None:
        statement = self.statement
        if statement.limit == 0:
            self.add("DQ303", "LIMIT 0 returns no rows")
        if (
            statement.distinct
            and self.schema is not None
            and self.schema.key
        ):
            if statement.select_items is None:
                projected = set(self.schema.column_names)
            elif all(
                isinstance(item.expr, ColumnRef)
                for item in statement.select_items
            ):
                projected = {
                    item.expr.column for item in statement.select_items
                }
            else:
                projected = set()
            if projected and set(self.schema.key) <= projected:
                self.add(
                    "DQ306",
                    f"DISTINCT is redundant: the projection contains the "
                    f"key {list(self.schema.key)} of "
                    f"{self.schema.name!r}, so rows are already unique",
                )

    # -- driver --------------------------------------------------------------

    def run(self) -> Diagnostics:
        resolved = self.resolve()
        if resolved:
            self.check_references()
            self.check_select_items()
            self.check_group_order()
        if self.statement.where is not None:
            if resolved:
                self.check_where()
            else:
                # No catalog: still run the catalog-independent checks.
                for node in _walk_exprs(self.statement.where):
                    if isinstance(node, Comparison):
                        self.check_degenerate_comparison(node)
                    elif isinstance(node, InList):
                        self.check_in_duplicates(node)
                self.check_conjunction(self.statement.where)
                self.check_tautologies(self.statement.where)
                self.check_duplicate_conjuncts(self.statement.where)
        self.check_statement_style()
        return self.diagnostics


class _OperandFacts:
    """Accumulated constraints on one column/indicator inside an AND."""

    def __init__(self) -> None:
        self.equals: list[tuple[Any, Any]] = []  # (value, node)
        self.not_equals: list[tuple[Any, Any]] = []
        self.lower: Optional[tuple[Any, bool, Any]] = None  # value, strict, node
        self.upper: Optional[tuple[Any, bool, Any]] = None
        self.in_sets: list[tuple[tuple[Any, ...], Any]] = []
        self.not_in: list[tuple[tuple[Any, ...], Any]] = []
        self.is_null: Optional[Any] = None
        self.is_not_null: Optional[Any] = None

    def add_comparison(self, op: str, value: Any, node: Comparison) -> None:
        if value is None:
            return  # NULL comparisons are reported separately (DQ211)
        if op == "=":
            self.equals.append((value, node))
        elif op in ("<>", "!="):
            self.not_equals.append((value, node))
        elif op == "<":
            self._tighten_upper(value, True, node)
        elif op == "<=":
            self._tighten_upper(value, False, node)
        elif op == ">":
            self._tighten_lower(value, True, node)
        elif op == ">=":
            self._tighten_lower(value, False, node)

    def _tighten_lower(self, value: Any, strict: bool, node: Any) -> None:
        current = self.lower
        if current is None:
            self.lower = (value, strict, node)
            return
        try:
            if value > current[0] or (value == current[0] and strict):
                self.lower = (value, strict, node)
        except TypeError:
            pass

    def _tighten_upper(self, value: Any, strict: bool, node: Any) -> None:
        current = self.upper
        if current is None:
            self.upper = (value, strict, node)
            return
        try:
            if value < current[0] or (value == current[0] and strict):
                self.upper = (value, strict, node)
        except TypeError:
            pass

    def add_in(self, node: InList) -> None:
        options = tuple(o for o in node.options if o is not None)
        if node.negated:
            self.not_in.append((options, node))
        else:
            self.in_sets.append((options, node))

    def add_is_null(self, node: IsNull) -> None:
        if node.negated:
            self.is_not_null = node
        else:
            self.is_null = node

    def find_conflict(self) -> Optional[tuple[str, Any]]:
        """The first contradiction found, as (message, anchoring node)."""
        # IS NULL excludes every comparison/IN constraint and IS NOT NULL.
        if self.is_null is not None:
            if self.is_not_null is not None:
                return ("IS NULL conflicts with IS NOT NULL", self.is_null)
            for _, node in self.equals + self.not_equals:
                return (
                    "IS NULL excludes any comparison (comparisons with "
                    "NULL are never true)",
                    node,
                )
            for bound in (self.lower, self.upper):
                if bound is not None:
                    return (
                        "IS NULL excludes any comparison (comparisons "
                        "with NULL are never true)",
                        bound[2],
                    )
            for _, node in self.in_sets:
                return ("IS NULL excludes IN (NULL never matches)", node)
        # Distinct equality constraints.
        for i, (a, _) in enumerate(self.equals):
            for b, node in self.equals[i + 1 :]:
                if _safe_ne(a, b):
                    return (f"= {a!r} conflicts with = {b!r}", node)
        for value, node_eq in self.equals:
            for other, node in self.not_equals:
                if _safe_eq(value, other):
                    return (f"= {value!r} conflicts with <> {other!r}", node)
            if self.lower is not None:
                low, strict, node = self.lower
                if _safe_lt(value, low) or (strict and _safe_eq(value, low)):
                    op = ">" if strict else ">="
                    return (f"= {value!r} conflicts with {op} {low!r}", node)
            if self.upper is not None:
                high, strict, node = self.upper
                if _safe_lt(high, value) or (strict and _safe_eq(value, high)):
                    op = "<" if strict else "<="
                    return (f"= {value!r} conflicts with {op} {high!r}", node)
            for options, node in self.in_sets:
                if all(_safe_ne(value, option) for option in options):
                    return (
                        f"= {value!r} conflicts with IN {options!r}",
                        node,
                    )
            for options, node in self.not_in:
                if any(_safe_eq(value, option) for option in options):
                    return (
                        f"= {value!r} conflicts with NOT IN {options!r}",
                        node,
                    )
        # Bounds excluding each other.
        if self.lower is not None and self.upper is not None:
            low, low_strict, node = self.lower
            high, high_strict, _ = self.upper
            if _safe_lt(high, low) or (
                (low_strict or high_strict) and _safe_eq(low, high)
            ):
                low_op = ">" if low_strict else ">="
                high_op = "<" if high_strict else "<="
                return (
                    f"{low_op} {low!r} conflicts with {high_op} {high!r}",
                    node,
                )
        # Disjoint IN sets.
        for i, (options_a, _) in enumerate(self.in_sets):
            for options_b, node in self.in_sets[i + 1 :]:
                if options_a and options_b and not _intersect(
                    options_a, options_b
                ):
                    return (
                        f"IN {options_a!r} conflicts with IN {options_b!r}",
                        node,
                    )
        return None


def _safe_eq(a: Any, b: Any) -> bool:
    try:
        return bool(a == b)
    except TypeError:  # pragma: no cover - defensive
        return False


def _safe_ne(a: Any, b: Any) -> bool:
    try:
        return bool(a != b)
    except TypeError:  # pragma: no cover - defensive
        return True


def _safe_lt(a: Any, b: Any) -> bool:
    try:
        return bool(a < b)
    except TypeError:
        return False


def _intersect(a: tuple[Any, ...], b: tuple[Any, ...]) -> bool:
    return any(_safe_eq(x, y) for x in a for y in b)


def _operand_key(operand: Any) -> Optional[tuple]:
    if isinstance(operand, ColumnRef):
        return ("col", operand.column)
    if isinstance(operand, QualityRef):
        return ("q", operand.column, operand.indicator)
    if isinstance(operand, QualityScoreRef):
        return ("qs", operand.parameter)
    return None


_FLIPPED = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "<>": "<>", "!=": "!="}


def _normalize_comparison(
    node: Comparison,
) -> tuple[Optional[tuple], str, Any, bool]:
    """Normalize to (key, op, literal value, was_reversed)."""
    if isinstance(node.right, Literal) and not isinstance(node.left, Literal):
        key = _operand_key(node.left)
        return key, node.op, node.right.value, False
    if isinstance(node.left, Literal) and not isinstance(node.right, Literal):
        key = _operand_key(node.right)
        return key, _FLIPPED[node.op], node.left.value, True
    return None, node.op, None, False


def _constant_truth(node: Comparison) -> bool:
    """Evaluate a literal-vs-literal comparison with executor semantics."""
    from repro.sql.executor import _COMPARATORS

    a = node.left.value
    b = node.right.value
    if a is None or b is None:
        return False
    try:
        return bool(_COMPARATORS[node.op](a, b))
    except TypeError:
        return False


def analyze_statement(
    statement: SelectStatement,
    source: Any = None,
    *,
    sql: Optional[str] = None,
    context: str = "",
) -> Diagnostics:
    """Analyze a parsed statement against ``source`` (see module doc)."""
    return _Analyzer(statement, source, sql, context).run()


def reference_diagnostics(
    statement: SelectStatement,
    source: Any,
    *,
    sql: Optional[str] = None,
) -> Diagnostics:
    """Reference-resolution diagnostics only (DQ201-DQ205).

    The executor's fail-fast pre-checks call this instead of
    re-implementing column lookup, so an unknown column produces the
    same message whether it surfaces as an
    :class:`~repro.errors.UnknownColumnError` at execution time or as a
    DQ202 diagnostic from :func:`analyze_query`.
    """
    analyzer = _Analyzer(statement, source, sql, "")
    if analyzer.resolve():
        analyzer.check_references()
    return analyzer.diagnostics


def analyze_query(
    sql: str,
    source: Any = None,
    *,
    context: str = "",
) -> Diagnostics:
    """Parse and analyze one QSQL string; parse failures become DQ200."""
    try:
        statement = parse(sql)
    except SQLError as exc:
        diagnostics = Diagnostics()
        diagnostics.add(
            "DQ200",
            exc.raw_message,
            span=exc.span,
            source=sql,
            context=context,
        )
        return diagnostics
    return analyze_statement(statement, source, sql=sql, context=context)
