"""The diagnostics engine: records, severities, spans, and rendering.

A :class:`Diagnostic` is one finding of the static analyzer or the
schema linter: a stable ``DQ`` code, a severity, a message, and —
when the finding anchors to QSQL source text — a character span
rendered as a caret snippet (the same rendering
:class:`~repro.sql.errors.SQLError` uses).  :class:`Diagnostics` is the
ordered collection the analyzers return and the CLI prints.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Optional

from repro.sql.errors import SQLError, caret_snippet


class Severity(enum.IntEnum):
    """Diagnostic severity, ordered so ``max()`` picks the worst."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @property
    def label(self) -> str:
        return self.name.lower()


INFO = Severity.INFO
WARNING = Severity.WARNING
ERROR = Severity.ERROR


@dataclass(frozen=True)
class Span:
    """A ``(start, end)`` character range into one source text."""

    start: int
    end: int

    @classmethod
    def of(cls, raw: Optional[tuple[int, int]]) -> Optional["Span"]:
        """Wrap a node's raw ``(start, end)`` tuple (None passes through)."""
        if raw is None:
            return None
        return cls(raw[0], raw[1])


@dataclass(frozen=True)
class Diagnostic:
    """One static-analysis finding.

    ``source`` is the QSQL text the span indexes into (None for schema
    diagnostics, which have no query text); ``context`` names where the
    finding came from — a relation, a file, a schema — for the CLI's
    grouped output.
    """

    code: str
    severity: Severity
    message: str
    span: Optional[Span] = None
    source: Optional[str] = None
    context: str = ""

    def __post_init__(self) -> None:
        from repro.analysis.codes import code_info

        code_info(self.code)  # unregistered codes raise here

    @property
    def is_error(self) -> bool:
        return self.severity >= ERROR

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form: span flattened, severity as its label."""
        return {
            "code": self.code,
            "severity": self.severity.label,
            "message": self.message,
            "span": None if self.span is None else [self.span.start, self.span.end],
            "context": self.context,
        }

    def render(self) -> str:
        """``CODE severity: message`` plus a caret snippet when anchored."""
        prefix = f"{self.code} {self.severity.label}"
        location = f" [{self.context}]" if self.context else ""
        text = f"{prefix}{location}: {self.message}"
        if self.span is not None and self.source is not None:
            snippet = caret_snippet(self.source, self.span.start, self.span.end)
            if snippet:
                indented = "\n".join("    " + line for line in snippet.split("\n"))
                text = f"{text}\n{indented}"
        return text

    def __str__(self) -> str:
        return self.render()


class Diagnostics:
    """An ordered collection of diagnostics with severity queries."""

    def __init__(self, items: Iterable[Diagnostic] = ()) -> None:
        self._items: list[Diagnostic] = list(items)

    # -- collection protocol -------------------------------------------------

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __getitem__(self, index: int) -> Diagnostic:
        return self._items[index]

    # -- building ------------------------------------------------------------

    def add(
        self,
        code: str,
        message: str,
        *,
        severity: Optional[Severity] = None,
        span: Optional[tuple[int, int] | Span] = None,
        source: Optional[str] = None,
        context: str = "",
    ) -> Diagnostic:
        """Append one diagnostic; severity defaults from the registry."""
        from repro.analysis.codes import code_info

        if severity is None:
            severity = code_info(code).default_severity
        if span is not None and not isinstance(span, Span):
            span = Span.of(span)
        diagnostic = Diagnostic(code, severity, message, span, source, context)
        self._items.append(diagnostic)
        return diagnostic

    def extend(self, other: Iterable[Diagnostic]) -> "Diagnostics":
        self._items.extend(other)
        return self

    # -- queries -------------------------------------------------------------

    def errors(self) -> list[Diagnostic]:
        return [d for d in self._items if d.severity >= ERROR]

    def warnings(self) -> list[Diagnostic]:
        return [d for d in self._items if d.severity == WARNING]

    @property
    def has_errors(self) -> bool:
        return any(d.severity >= ERROR for d in self._items)

    def max_severity(self) -> Optional[Severity]:
        if not self._items:
            return None
        return max(d.severity for d in self._items)

    def codes(self) -> list[str]:
        """The distinct codes present, sorted."""
        return sorted({d.code for d in self._items})

    # -- rendering -----------------------------------------------------------

    def render(self) -> str:
        if not self._items:
            return "no diagnostics"
        return "\n".join(d.render() for d in self._items)

    def summary(self) -> str:
        """``N error(s), M warning(s), K info`` — the CLI footer line."""
        n_err = len(self.errors())
        n_warn = len(self.warnings())
        n_info = len(self._items) - n_err - n_warn
        return (
            f"{n_err} error(s), {n_warn} warning(s), {n_info} info"
        )

    def __repr__(self) -> str:
        return f"Diagnostics({self.summary()})"


class QueryAnalysisError(SQLError):
    """Raised by ``execute(..., strict=True)`` when the pre-execution
    analysis pass finds error-severity diagnostics.

    Carries the full :class:`Diagnostics` list (not just the first
    finding) so production callers see every problem at once.
    """

    def __init__(self, diagnostics: Diagnostics, sql: Optional[str] = None) -> None:
        self.diagnostics = diagnostics
        errors = diagnostics.errors()
        headline = (
            f"query rejected by static analysis "
            f"({diagnostics.summary()}):\n{diagnostics.render()}"
        )
        first_span: Optional[Span] = next(
            (d.span for d in errors if d.span is not None), None
        )
        # The headline already renders per-diagnostic snippets; bypass
        # SQLError's own "(at position N)" suffix and set span fields
        # directly from the first anchored error.
        super().__init__(headline)
        if first_span is not None:
            self.position = first_span.start
            self.end = first_span.end
        self.source = sql


def severity_from_name(name: str) -> Severity:
    """Parse a severity name (case-insensitive) into :class:`Severity`."""
    try:
        return Severity[name.upper()]
    except KeyError:
        raise ValueError(
            f"unknown severity {name!r} (known: info, warning, error)"
        ) from None
