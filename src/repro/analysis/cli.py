"""``repro-lint``: the static-analysis command line.

Usage::

    repro-lint examples/                  # lint QSQL strings in .py files
    repro-lint --sql "SELECT x FROM t"    # lint one query string
    repro-lint --scenarios                # lint built-in scenario schemas
    repro-lint --workload examples/       # cross-statement workload lint
    repro-lint --format json examples/    # machine-readable findings
    repro-lint --codes                    # print the DQ code registry

Queries resolve against the example catalog (``--catalog examples``,
the default) or against no catalog (``--catalog none`` — only
catalog-independent checks run).  The exit status is 1 when any
diagnostic at or above ``--fail-on`` (default ``error``) was emitted,
0 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.analysis.codes import render_code_table
from repro.analysis.diagnostics import Diagnostics, severity_from_name
from repro.analysis.query import analyze_query


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Static analyzer for QSQL queries and quality schemas "
            "(diagnostic codes DQ1xx schema, DQ2xx query, DQ3xx style)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help=".py files or directories to scan for QSQL strings",
    )
    parser.add_argument(
        "--sql",
        action="append",
        default=[],
        metavar="QUERY",
        help="lint one QSQL string (repeatable)",
    )
    parser.add_argument(
        "--scenarios",
        action="store_true",
        help=(
            "lint the built-in scenario tag schemas and the trading "
            "methodology's quality schema"
        ),
    )
    parser.add_argument(
        "--codes",
        action="store_true",
        help="print the diagnostic-code registry and exit",
    )
    parser.add_argument(
        "--workload",
        action="store_true",
        help=(
            "additionally lint the collected queries as one workload "
            "(cross-statement DQ42x checks)"
        ),
    )
    parser.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--catalog",
        choices=["examples", "none"],
        default="examples",
        help="catalog to resolve FROM clauses against (default: examples)",
    )
    parser.add_argument(
        "--fail-on",
        choices=["error", "warning", "info"],
        default="error",
        help="lowest severity that fails the run (default: error)",
    )
    return parser


def _lint_scenarios(diagnostics: Diagnostics) -> None:
    """Lint the repo's scenario schemas and methodology artifacts."""
    from repro.analysis.schema import (
        lint_database,
        lint_quality_schema,
        lint_tag_schema,
    )
    from repro.experiments.scenarios import (
        ADDRESS_SCHEMA,
        CUSTOMER_SCHEMA,
        customer_tag_schema,
        run_trading_methodology,
        trading_ticks,
    )
    from repro.manufacturing.pipeline import pipeline_tag_schema
    from repro.tagging.catalog import QualityDatabase

    lint_tag_schema(
        customer_tag_schema(),
        CUSTOMER_SCHEMA,
        context="customer",
        diagnostics=diagnostics,
    )
    lint_tag_schema(
        pipeline_tag_schema(["address", "employees"]),
        CUSTOMER_SCHEMA,
        context="customer_database",
        diagnostics=diagnostics,
    )
    lint_tag_schema(
        pipeline_tag_schema(["name", "address", "city"]),
        ADDRESS_SCHEMA,
        context="clearinghouse",
        diagnostics=diagnostics,
    )
    ticks = trading_ticks(n_ticks=0)
    lint_tag_schema(
        ticks.tag_schema,
        ticks.schema,
        context="ticks",
        diagnostics=diagnostics,
    )
    modeling = run_trading_methodology()
    lint_quality_schema(
        modeling.quality_schema,
        modeling.parameter_views,
        context="trading",
        diagnostics=diagnostics,
    )
    database = QualityDatabase.from_quality_schema(modeling.quality_schema)
    lint_database(database.relations(), diagnostics=diagnostics)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.codes:
        print(render_code_table())
        return 0

    if not (args.paths or args.sql or args.scenarios):
        parser.error("nothing to lint: give paths, --sql, or --scenarios")

    catalog = None
    if args.catalog == "examples":
        from repro.analysis.catalog import example_catalog

        catalog = example_catalog()

    diagnostics = Diagnostics()
    corpus: list[tuple[str, str]] = []

    for i, sql in enumerate(args.sql):
        context = "--sql" if len(args.sql) == 1 else f"--sql#{i + 1}"
        diagnostics.extend(analyze_query(sql, catalog, context=context))
        corpus.append((sql, context))

    if args.paths:
        from repro.analysis.extract import (
            extract_queries_from_file,
            iter_python_files,
        )

        for path in iter_python_files(args.paths):
            if not path.exists():
                print(f"repro-lint: no such file: {path}", file=sys.stderr)
                return 2
            for query in extract_queries_from_file(path):
                diagnostics.extend(
                    analyze_query(query.sql, catalog, context=query.context)
                )
                corpus.append((query.sql, query.context))

    if args.scenarios:
        _lint_scenarios(diagnostics)

    if args.workload:
        from repro.analysis.workload import analyze_workload

        diagnostics.extend(analyze_workload(corpus, catalog))

    n_queries = len(corpus)
    threshold = severity_from_name(args.fail_on)
    failed = any(d.severity >= threshold for d in diagnostics)

    if args.format == "json":
        payload = {
            "queries": n_queries,
            "findings": [d.to_dict() for d in diagnostics],
            "summary": {
                "errors": len(diagnostics.errors()),
                "warnings": len(diagnostics.warnings()),
                "info": len(diagnostics)
                - len(diagnostics.errors())
                - len(diagnostics.warnings()),
                "failed": failed,
            },
        }
        print(json.dumps(payload, indent=2))
        return 1 if failed else 0

    if diagnostics:
        print(diagnostics.render())
    scope = f"{n_queries} query(ies)" + (
        " + scenarios" if args.scenarios else ""
    )
    print(f"repro-lint: {scope}: {diagnostics.summary()}")
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
