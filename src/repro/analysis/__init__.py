"""Static analysis for QSQL queries and quality schemas.

The subsystem has three parts (DESIGN.md §8):

- the **diagnostics engine** (:mod:`repro.analysis.diagnostics`,
  :mod:`repro.analysis.codes`) — stable ``DQ`` codes, severities,
  source spans, caret rendering;
- the **query analyzer** (:mod:`repro.analysis.query`) — resolves a
  parsed statement against a catalog and tag schemas *before
  execution*: unknown names, type mismatches, coverage gaps,
  contradictions, style;
- the **schema linter** (:mod:`repro.analysis.schema`) — batched
  checks over tag schemas and methodology artifacts;
- the **plan verifier** (:mod:`repro.analysis.verifier`) — walks an
  optimized plan checking schema derivation, pushdown legality,
  columnar boundaries, fusion parameters, and plan-cache keys
  (``DQ40x``);
- the **workload analyzer** (:mod:`repro.analysis.workload`) —
  cross-statement lint over a corpus (``DQ42x``).

Entry points: the ``repro-lint`` CLI (``python -m repro.analysis``),
``execute(sql, source, strict=True)`` in :mod:`repro.sql`, and the
``REPRO_VERIFY_PLANS=1`` environment flag (verify every plan and
sanitize every columnar batch at runtime).
"""

from repro.analysis.codes import CODES, CodeInfo, code_info
from repro.analysis.diagnostics import (
    ERROR,
    INFO,
    WARNING,
    Diagnostic,
    Diagnostics,
    QueryAnalysisError,
    Severity,
    Span,
)
from repro.analysis.query import analyze_query, analyze_statement
from repro.analysis.schema import (
    lint_database,
    lint_merge,
    lint_quality_schema,
    lint_rename,
    lint_tag_schema,
)
from repro.analysis.verifier import (
    PlanVerificationError,
    assert_plan_verifies,
    verify_cache_entry,
    verify_plan,
    verify_plans_enabled,
)
from repro.analysis.workload import analyze_workload, statement_fingerprint

__all__ = [
    "CODES",
    "CodeInfo",
    "code_info",
    "ERROR",
    "INFO",
    "WARNING",
    "Diagnostic",
    "Diagnostics",
    "QueryAnalysisError",
    "Severity",
    "Span",
    "PlanVerificationError",
    "analyze_query",
    "analyze_statement",
    "analyze_workload",
    "assert_plan_verifies",
    "lint_database",
    "lint_merge",
    "lint_quality_schema",
    "lint_rename",
    "lint_tag_schema",
    "statement_fingerprint",
    "verify_cache_entry",
    "verify_plan",
    "verify_plans_enabled",
]
