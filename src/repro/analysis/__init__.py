"""Static analysis for QSQL queries and quality schemas.

The subsystem has three parts (DESIGN.md §8):

- the **diagnostics engine** (:mod:`repro.analysis.diagnostics`,
  :mod:`repro.analysis.codes`) — stable ``DQ`` codes, severities,
  source spans, caret rendering;
- the **query analyzer** (:mod:`repro.analysis.query`) — resolves a
  parsed statement against a catalog and tag schemas *before
  execution*: unknown names, type mismatches, coverage gaps,
  contradictions, style;
- the **schema linter** (:mod:`repro.analysis.schema`) — batched
  checks over tag schemas and methodology artifacts.

Entry points: the ``repro-lint`` CLI (``python -m repro.analysis``)
and ``execute(sql, source, strict=True)`` in :mod:`repro.sql`.
"""

from repro.analysis.codes import CODES, CodeInfo, code_info
from repro.analysis.diagnostics import (
    ERROR,
    INFO,
    WARNING,
    Diagnostic,
    Diagnostics,
    QueryAnalysisError,
    Severity,
    Span,
)
from repro.analysis.query import analyze_query, analyze_statement
from repro.analysis.schema import (
    lint_database,
    lint_merge,
    lint_quality_schema,
    lint_rename,
    lint_tag_schema,
)

__all__ = [
    "CODES",
    "CodeInfo",
    "code_info",
    "ERROR",
    "INFO",
    "WARNING",
    "Diagnostic",
    "Diagnostics",
    "QueryAnalysisError",
    "Severity",
    "Span",
    "analyze_query",
    "analyze_statement",
    "lint_database",
    "lint_merge",
    "lint_quality_schema",
    "lint_rename",
    "lint_tag_schema",
]
