"""The diagnostic-code registry: every ``DQ`` code, documented.

Codes are stable identifiers (they appear in golden tests, CI output,
and user suppressions), grouped by the paper's artifact they check:

- ``DQ1xx`` — quality-schema lint: the Step 3/Step 4 view-integration
  checks (operationalization gaps, dangling references, schema drift,
  merge conflicts);
- ``DQ2xx`` — query analysis: semantic errors a QSQL statement would
  hit (or silently mis-answer) at execution time;
- ``DQ3xx`` — query style: legal but suspicious constructs;
- ``DQ40x`` — plan verification: structural invariants of optimized
  plan trees and plan-cache entries (the plan-IR static verifier);
- ``DQ42x`` — workload lint: cross-statement findings over a corpus of
  QSQL queries (``repro-lint --workload``).

:data:`CODES` maps each code to its :class:`CodeInfo`; the registry is
closed — constructing a :class:`~repro.analysis.diagnostics.Diagnostic`
with an unregistered code raises, so every emitted diagnostic is
documented here by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.diagnostics import ERROR, INFO, WARNING, Severity


@dataclass(frozen=True)
class CodeInfo:
    """One registered diagnostic code."""

    code: str
    title: str
    default_severity: Severity
    doc: str


_CODES: tuple[CodeInfo, ...] = (
    # -- DQ1xx: quality-schema lint -----------------------------------------
    CodeInfo(
        "DQ101",
        "tag-schema drift",
        ERROR,
        "The tag schema requires or allows indicators on a column that "
        "does not exist in the relation schema (the batched form of "
        "TagSchema.check_against).",
    ),
    CodeInfo(
        "DQ102",
        "unused indicator",
        WARNING,
        "An indicator is defined in the tag schema but neither required "
        "nor allowed on any column — dead weight in the quality schema.",
    ),
    CodeInfo(
        "DQ103",
        "unoperationalized parameter",
        WARNING,
        "A Step 2 quality parameter has no Step 3 indicator "
        "operationalizing it: the user's subjective requirement was "
        "never made measurable (paper Step 3 coverage check).",
    ),
    CodeInfo(
        "DQ104",
        "dangling parameter reference",
        WARNING,
        "An indicator annotation's derived_from names a parameter that "
        "does not appear in the parameter view — broken Step 2 → Step 3 "
        "traceability.",
    ),
    CodeInfo(
        "DQ105",
        "conflicting indicator definitions",
        ERROR,
        "The same indicator name is defined with conflicting domains "
        "across the schemas being merged/integrated (TagSchema.merge "
        "or Step 4 view integration would raise).",
    ),
    CodeInfo(
        "DQ106",
        "tagged-column collision",
        ERROR,
        "A rename/projection maps two tagged columns onto one output "
        "name, silently merging their indicator requirements.",
    ),
    # -- DQ2xx: query analysis ----------------------------------------------
    CodeInfo(
        "DQ200",
        "syntax error",
        ERROR,
        "The query failed to lex or parse.",
    ),
    CodeInfo(
        "DQ201",
        "unknown relation",
        ERROR,
        "The FROM clause names a relation the catalog does not contain.",
    ),
    CodeInfo(
        "DQ202",
        "unknown column",
        ERROR,
        "A referenced column does not exist in the relation schema.",
    ),
    CodeInfo(
        "DQ203",
        "unknown indicator",
        ERROR,
        "A QUALITY(...) reference names an indicator the relation's tag "
        "schema does not define.",
    ),
    CodeInfo(
        "DQ204",
        "indicator coverage gap",
        WARNING,
        "The indicator exists but is neither required nor allowed on the "
        "referenced column, so its tag can never be present there — the "
        "predicate filters on data the quality schema says is untagged.",
    ),
    CodeInfo(
        "DQ205",
        "QUALITY on untagged source",
        ERROR,
        "The statement uses QUALITY(...) but the source relation carries "
        "no quality tags.",
    ),
    CodeInfo(
        "DQ206",
        "invalid post-aggregation ORDER BY",
        ERROR,
        "In an aggregate query, ORDER BY must name an output column of "
        "the aggregation (and cannot use QUALITY(...) — aggregated "
        "values have no single manufacturing history).",
    ),
    CodeInfo(
        "DQ207",
        "aggregate type mismatch",
        ERROR,
        "SUM/AVG over a non-numeric column or indicator.",
    ),
    CodeInfo(
        "DQ208",
        "duplicate output column",
        ERROR,
        "Two select-list items produce the same output name.",
    ),
    CodeInfo(
        "DQ209",
        "EXPLAIN requires the planner",
        ERROR,
        "EXPLAIN / EXPLAIN ANALYZE report the optimized plan, which "
        "execute(..., planner=False) never builds; the keyword and the "
        "planner-free escape hatch are mutually exclusive.",
    ),
    CodeInfo(
        "DQ210",
        "operand type mismatch",
        ERROR,
        "A comparison or IN list mixes incomparable domains (e.g. a STR "
        "column against a number, or a DATE against a bare string — use "
        "DATE '...'); the predicate can never be true.",
    ),
    CodeInfo(
        "DQ211",
        "comparison with NULL literal",
        WARNING,
        "Comparing against the literal NULL is never true under "
        "SQL-style semantics; use IS [NOT] NULL.",
    ),
    CodeInfo(
        "DQ212",
        "unresolvable quality parameter",
        ERROR,
        "A QUALITY(parameter) score reference names a parameter that no "
        "scoring profile bound to the statement's relation defines (or "
        "the relation has no bound profile at all); executing would "
        "raise instead of scoring.",
    ),
    CodeInfo(
        "DQ220",
        "unsatisfiable conjunction",
        ERROR,
        "The WHERE conjunction is contradictory (e.g. source = 'A' AND "
        "source = 'B', or bounds that exclude each other): the query "
        "provably returns no rows.",
    ),
    CodeInfo(
        "DQ221",
        "tautological disjunction",
        WARNING,
        "A disjunction is always true (e.g. p OR NOT p, or x = v OR "
        "x <> v): the predicate does not filter.",
    ),
    # -- DQ3xx: query style --------------------------------------------------
    CodeInfo(
        "DQ301",
        "duplicate predicate",
        WARNING,
        "The same conjunct appears more than once in the WHERE clause.",
    ),
    CodeInfo(
        "DQ302",
        "duplicate IN option",
        INFO,
        "An IN list contains the same literal more than once.",
    ),
    CodeInfo(
        "DQ303",
        "LIMIT 0",
        WARNING,
        "LIMIT 0 returns no rows.",
    ),
    CodeInfo(
        "DQ304",
        "self-comparison",
        WARNING,
        "An operand is compared with itself: always true for non-null "
        "values (=, <=, >=) or always false (<, >, <>).",
    ),
    CodeInfo(
        "DQ305",
        "constant predicate",
        WARNING,
        "Both comparison operands are literals, so the predicate is a "
        "constant.",
    ),
    CodeInfo(
        "DQ306",
        "redundant DISTINCT",
        INFO,
        "DISTINCT over a projection that contains the relation's key "
        "cannot remove any rows.",
    ),
    CodeInfo(
        "DQ307",
        "duplicate ORDER BY key",
        INFO,
        "The same key appears more than once in ORDER BY; later "
        "occurrences never affect the ordering.",
    ),
    # -- DQ40x: plan verification ---------------------------------------------
    CodeInfo(
        "DQ401",
        "unresolved plan column",
        ERROR,
        "An operator references a column its input subtree does not "
        "provide (broken per-operator schema derivation): the plan "
        "would raise or silently mis-resolve at compile time.",
    ),
    CodeInfo(
        "DQ402",
        "plan schema mismatch",
        ERROR,
        "An operator's derived output schema is inconsistent: duplicate "
        "output names, hash-join inputs whose columns overlap, stale "
        "left/right column annotations, or a Scan whose tagged flag "
        "disagrees with the catalog relation.",
    ),
    CodeInfo(
        "DQ403",
        "illegal quality pushdown",
        ERROR,
        "A QualityFilter does not sit directly above a tagged Scan, or "
        "routes a constraint the columnar tag store cannot answer with "
        "row semantics (unknown column/indicator, disallowed indicator, "
        "NULL operand, unknown operator).",
    ),
    CodeInfo(
        "DQ404",
        "misplaced QUALITY reference",
        ERROR,
        "A plan operator evaluates QUALITY(...) over an untagged "
        "subtree (plain scan, join output, or post-aggregation), where "
        "no per-cell tags exist.",
    ),
    CodeInfo(
        "DQ405",
        "columnar boundary violation",
        ERROR,
        "A columnar Scan's fragment does not reach a Materialize "
        "boundary before row-only operators, a non-whitelisted operator "
        "appears inside the fragment, or a Materialize sits over a "
        "non-columnar subtree.",
    ),
    CodeInfo(
        "DQ406",
        "columnar-ineligible operator",
        ERROR,
        "A whitelisted operator inside a columnar fragment carries work "
        "the vectorized path cannot run: a predicate with QUALITY "
        "references, a computed projection item, or a non-column "
        "TopK key.",
    ),
    CodeInfo(
        "DQ407",
        "illegal fusion parameters",
        ERROR,
        "A TopK/Limit with a negative count or a Sort/TopK with no "
        "order keys — shapes no legal rewrite sequence produces.",
    ),
    CodeInfo(
        "DQ408",
        "missed TopK fusion",
        WARNING,
        "An optimized plan still contains LIMIT directly over ORDER BY "
        "(a full sort where a bounded heap suffices); fuse_topk should "
        "have rewritten it.",
    ),
    CodeInfo(
        "DQ409",
        "incomplete plan-cache key",
        ERROR,
        "A plan-cache entry omits (or pins a stale value of) an input "
        "that affects plan shape — schema identity, tag schema, "
        "catalog version, columnar mode, the columnar cost band, the "
        "partition layout version, or the scoring-registry version — "
        "so a hit could serve a plan built for different inputs.",
    ),
    CodeInfo(
        "DQ410",
        "illegal partition pruning",
        ERROR,
        "An optimized plan's pruned Scan (static surviving-bucket set) "
        "is not justified: no governing Filter predicate, a predicate "
        "that does not restrict the partition key, stale layout "
        "metadata, or a surviving set that drops buckets the predicate "
        "can still reach. Executing it would silently drop rows.",
    ),
    CodeInfo(
        "DQ411",
        "illegal score pushdown",
        ERROR,
        "An optimized plan's ScoreFilter is not legal: it does not sit "
        "directly above a tagged Scan (or the QualityFilter over one), "
        "routes an operator the materialized score arrays do not "
        "implement, compares against NULL, or names a parameter the "
        "scanned relation's bound scoring profile does not define.",
    ),
    # -- DQ42x: workload lint --------------------------------------------------
    CodeInfo(
        "DQ420",
        "duplicate statement modulo literals",
        WARNING,
        "Two or more workload statements differ only in literal values. "
        "The plan cache keys on statement text, so each variant misses "
        "the cache and plans from scratch; parameterize the statement.",
    ),
    CodeInfo(
        "DQ421",
        "contradictory quality requirements",
        WARNING,
        "Two workload statements impose mutually exclusive constraints "
        "on the same QUALITY(column.indicator) — the application views "
        "disagree about acceptable quality (paper Step 4 view "
        "integration conflict).",
    ),
    CodeInfo(
        "DQ422",
        "subsumed quality filter",
        INFO,
        "One statement's quality filter accepts a strict subset of the "
        "values another statement accepts on the same indicator; the "
        "stricter view could be served from the looser one.",
    ),
    CodeInfo(
        "DQ423",
        "indicator never queried",
        INFO,
        "A tag schema defines an indicator on a workload relation that "
        "no statement in the corpus ever references — quality metadata "
        "is collected but never consulted.",
    ),
    CodeInfo(
        "DQ424",
        "partition-key candidate",
        INFO,
        "A workload column is repeatedly constrained by equality (or "
        "IN) predicates across distinct statements but its relation is "
        "not hash-partitioned on it; declaring it the partition key "
        "would let the planner prune those scans statically.",
    ),
    CodeInfo(
        "DQ425",
        "unregistered quality parameter",
        INFO,
        "A workload statement references QUALITY(parameter) for a "
        "parameter no registered scoring profile defines; until a "
        "profile is registered and bound, the statement cannot execute "
        "and nothing materializes the score.",
    ),
)

#: The closed registry: code → CodeInfo.
CODES: dict[str, CodeInfo] = {info.code: info for info in _CODES}


def code_info(code: str) -> CodeInfo:
    """Look up a registered code; raises KeyError for unknown codes."""
    try:
        return CODES[code]
    except KeyError:
        raise KeyError(
            f"unregistered diagnostic code {code!r} "
            f"(registered: {sorted(CODES)})"
        ) from None


def render_code_table() -> str:
    """The documentation table printed by ``repro-lint --codes``."""
    lines = ["code   severity  title", "-----  --------  -----"]
    for info in _CODES:
        lines.append(
            f"{info.code}  {info.default_severity.label:<8}  {info.title}"
        )
        lines.append(f"       {info.doc}")
    return "\n".join(lines)
