"""Cross-statement workload lint: a corpus of QSQL queries as one unit.

Single-statement analysis (:mod:`repro.analysis.query`) cannot see the
paper's Step 4 problem — *different application views imposing
different quality requirements on the same data*.  This module lints a
whole workload (``repro-lint --workload``), reporting the DQ42x family:

- **DQ420** — statements identical modulo literal values: each variant
  is a separate plan-cache entry, so the workload plans the same shape
  from scratch over and over; parameterize instead.
- **DQ421** — two statements whose combined quality constraints on the
  same ``QUALITY(column.indicator)`` are contradictory, although each
  is satisfiable alone: the views disagree about acceptable quality
  (the paper's view-integration conflict, caught at lint time).
- **DQ422** — one statement's quality filter accepts a strict subset
  of the values another accepts on the same indicator (the stricter
  view could be served from the looser one's result).
- **DQ423** — indicators the tag schemas define on workload relations
  that no statement ever references: quality metadata collected but
  never consulted.
- **DQ424** — partition-key candidates: a plain column repeatedly
  pinned by equality/IN predicates across distinct statements whose
  relation is not already partitioned on it.  Declaring it the
  partition key (``Database.repartition``) would let the planner's
  ``prune_partitions`` rewrite serve those statements from a static
  subset of the buckets.
- **DQ425** — ``QUALITY(parameter)`` score references for parameters no
  registered scoring profile defines: the statement cannot execute, and
  nothing materializes the score, until a profile is registered and
  bound (:mod:`repro.quality.materialize`).

Statements that fail to parse are skipped here — per-statement linting
already reports them as DQ200.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional, Union

from repro.analysis.diagnostics import Diagnostics
from repro.analysis.query import (
    _conjuncts,
    _normalize_comparison,
    _operand_key,
    _OperandFacts,
)
from repro.sql.errors import SQLError
from repro.sql.nodes import (
    AggregateCall,
    BoolOp,
    ColumnRef,
    Comparison,
    InList,
    IsNull,
    Literal,
    NotOp,
    QualityRef,
    QualityScoreRef,
    SelectStatement,
)
from repro.sql.parser import parse
from repro.tagging.relation import TaggedRelation

__all__ = ["WorkloadStatement", "analyze_workload", "statement_fingerprint"]

#: One workload member: ``(sql, context)`` or anything with
#: ``.sql``/``.context`` attributes (e.g.
#: :class:`~repro.analysis.extract.ExtractedQuery`).
WorkloadQuery = Union[tuple[str, str], Any]


class WorkloadStatement:
    """One parsed member of the workload."""

    __slots__ = ("sql", "context", "statement")

    def __init__(self, sql: str, context: str, statement: SelectStatement) -> None:
        self.sql = sql
        self.context = context
        self.statement = statement


# -- fingerprinting (DQ420) --------------------------------------------------


def _mask_operand(operand: Any) -> str:
    if isinstance(operand, Literal):
        return "?"
    if isinstance(operand, ColumnRef):
        return operand.column
    if isinstance(operand, QualityRef):
        return f"QUALITY({operand.column}.{operand.indicator})"
    if isinstance(operand, QualityScoreRef):
        return f"QUALITY({operand.parameter})"
    if isinstance(operand, AggregateCall):
        inner = "*" if operand.operand is None else _mask_operand(operand.operand)
        return f"{operand.func}({inner})"
    return "?"  # pragma: no cover - exhaustive above


def _mask_expr(expr: Any) -> str:
    if isinstance(expr, Comparison):
        return f"{_mask_operand(expr.left)} {expr.op} {_mask_operand(expr.right)}"
    if isinstance(expr, InList):
        keyword = "NOT IN" if expr.negated else "IN"
        return f"{_mask_operand(expr.operand)} {keyword} (?)"
    if isinstance(expr, IsNull):
        keyword = "IS NOT NULL" if expr.negated else "IS NULL"
        return f"{_mask_operand(expr.operand)} {keyword}"
    if isinstance(expr, BoolOp):
        return f"({_mask_expr(expr.left)} {expr.op} {_mask_expr(expr.right)})"
    if isinstance(expr, NotOp):
        return f"NOT ({_mask_expr(expr.operand)})"
    if isinstance(expr, Literal):
        return "?"
    return "?"  # pragma: no cover - exhaustive above


def statement_fingerprint(statement: SelectStatement) -> str:
    """A canonical rendering with every literal masked to ``?``.

    Two statements share a fingerprint exactly when they differ only in
    literal values (comparison/IN/LIMIT constants) — i.e. when one
    parameterized statement would serve both.
    """
    parts: list[str] = []
    if statement.explain:
        parts.append("EXPLAIN ANALYZE" if statement.analyze else "EXPLAIN")
    parts.append("SELECT")
    if statement.distinct:
        parts.append("DISTINCT")
    if statement.select_items is None:
        parts.append("*")
    else:
        rendered = []
        for item in statement.select_items:
            text = _mask_operand(item.expr)
            if item.alias:
                text = f"{text} AS {item.alias}"
            rendered.append(text)
        parts.append(", ".join(rendered))
    parts.append(f"FROM {statement.relation}")
    if statement.where is not None:
        parts.append(f"WHERE {_mask_expr(statement.where)}")
    if statement.group_by:
        keys = ", ".join(_mask_operand(key) for key in statement.group_by)
        parts.append(f"GROUP BY {keys}")
    if statement.order_by:
        keys = ", ".join(
            f"{_mask_operand(item.key)} {'DESC' if item.descending else 'ASC'}"
            for item in statement.order_by
        )
        parts.append(f"ORDER BY {keys}")
    if statement.limit is not None:
        parts.append("LIMIT ?")
    return " ".join(parts)


# -- quality-constraint extraction (DQ421/DQ422) -----------------------------


def _quality_conjuncts(statement: SelectStatement) -> dict[tuple, list[Any]]:
    """Top-level AND conjuncts constraining QUALITY refs, keyed like
    the analyzer's conjunction facts: ``("q", column, indicator)``."""
    grouped: dict[tuple, list[Any]] = {}
    if statement.where is None:
        return grouped
    for conjunct in _conjuncts(statement.where):
        if isinstance(conjunct, Comparison):
            key, _, _, _ = _normalize_comparison(conjunct)
        elif isinstance(conjunct, (InList, IsNull)):
            key = _operand_key(conjunct.operand)
        else:
            key = None
        if key is not None and key[0] == "q":
            grouped.setdefault(key, []).append(conjunct)
    return grouped


def _facts_from(conjunct_lists: Iterable[list[Any]]) -> _OperandFacts:
    """One :class:`_OperandFacts` accumulating several conjunct lists —
    exactly what the single-statement analyzer builds, but spanning
    statements."""
    facts = _OperandFacts()
    for conjuncts in conjunct_lists:
        for conjunct in conjuncts:
            if isinstance(conjunct, Comparison):
                _, op, value, _ = _normalize_comparison(conjunct)
                facts.add_comparison(op, value, conjunct)
            elif isinstance(conjunct, InList):
                facts.add_in(conjunct)
            elif isinstance(conjunct, IsNull):
                facts.add_is_null(conjunct)
    return facts


def _accepted_values(conjuncts: list[Any]) -> Optional[frozenset]:
    """The finite value set a conjunct list accepts, when derivable.

    Only equality and IN constraints pin a finite set; any bound,
    negation, or NULL test makes the set open-ended (returns None).
    """
    sets: list[frozenset] = []
    for conjunct in conjuncts:
        if isinstance(conjunct, Comparison):
            _, op, value, _ = _normalize_comparison(conjunct)
            if op != "=" or value is None:
                return None
            sets.append(frozenset([value]))
        elif isinstance(conjunct, InList):
            if conjunct.negated:
                return None
            sets.append(
                frozenset(o for o in conjunct.options if o is not None)
            )
        else:
            return None
    if not sets:
        return None
    accepted = sets[0]
    for other in sets[1:]:
        accepted = accepted & other
    return accepted


def _quality_references(statement: SelectStatement) -> set[tuple[str, str, str]]:
    """Every (relation, column, indicator) a statement reads."""
    refs: set[tuple[str, str, str]] = set()

    def visit(node: Any) -> None:
        if isinstance(node, QualityRef):
            refs.add((statement.relation, node.column, node.indicator))
        elif isinstance(node, Comparison):
            visit(node.left)
            visit(node.right)
        elif isinstance(node, (InList, IsNull)):
            visit(node.operand)
        elif isinstance(node, BoolOp):
            visit(node.left)
            visit(node.right)
        elif isinstance(node, NotOp):
            visit(node.operand)
        elif isinstance(node, AggregateCall) and node.operand is not None:
            visit(node.operand)

    for item in statement.select_items or ():
        visit(item.expr)
    for key in statement.group_by:
        visit(key)
    if statement.where is not None:
        visit(statement.where)
    for item in statement.order_by:
        visit(item.key)
    return refs


def _score_parameter_references(
    statement: SelectStatement,
) -> set[tuple[str, str]]:
    """Every (relation, parameter) score reference a statement reads."""
    refs: set[tuple[str, str]] = set()

    def visit(node: Any) -> None:
        if isinstance(node, QualityScoreRef):
            refs.add((statement.relation, node.parameter))
        elif isinstance(node, Comparison):
            visit(node.left)
            visit(node.right)
        elif isinstance(node, (InList, IsNull)):
            visit(node.operand)
        elif isinstance(node, BoolOp):
            visit(node.left)
            visit(node.right)
        elif isinstance(node, NotOp):
            visit(node.operand)
        elif isinstance(node, AggregateCall) and node.operand is not None:
            visit(node.operand)

    for item in statement.select_items or ():
        visit(item.expr)
    for key in statement.group_by:
        visit(key)
    if statement.where is not None:
        visit(statement.where)
    for item in statement.order_by:
        visit(item.key)
    return refs


def _key_label(key: tuple) -> str:
    return f"QUALITY({key[1]}.{key[2]})"


# -- the workload pass -------------------------------------------------------


def analyze_workload(
    queries: Iterable[WorkloadQuery],
    catalog: Optional[Any] = None,
) -> Diagnostics:
    """Lint a corpus of statements cross-statement (DQ420-DQ423).

    ``queries`` yields ``(sql, context)`` pairs or objects with
    ``.sql``/``.context``.  ``catalog`` (a name → relation mapping)
    enables DQ423 — without it there are no tag schemas to check for
    never-queried indicators.
    """
    diagnostics = Diagnostics()
    statements: list[WorkloadStatement] = []
    for query in queries:
        if isinstance(query, tuple):
            sql, context = query
        else:
            sql, context = query.sql, query.context
        try:
            statements.append(WorkloadStatement(sql, context, parse(sql)))
        except SQLError:
            continue  # per-statement lint already reports DQ200

    _check_duplicate_shapes(statements, diagnostics)
    _check_quality_views(statements, diagnostics)
    _check_partition_candidates(statements, catalog, diagnostics)
    _check_unregistered_parameters(statements, diagnostics)
    if catalog is not None:
        _check_unqueried_indicators(statements, catalog, diagnostics)
    return diagnostics


def _contexts(members: Iterable[WorkloadStatement], limit: int = 4) -> str:
    labels: list[str] = []
    for member in members:
        label = member.context or "<sql>"
        if label not in labels:
            labels.append(label)
    if len(labels) > limit:
        labels = labels[:limit] + [f"… {len(labels) - limit} more"]
    return ", ".join(labels)


def _check_duplicate_shapes(
    statements: list[WorkloadStatement], diagnostics: Diagnostics
) -> None:
    groups: dict[str, list[WorkloadStatement]] = {}
    for member in statements:
        fingerprint = statement_fingerprint(member.statement)
        groups.setdefault(fingerprint, []).append(member)
    for fingerprint, members in groups.items():
        distinct_texts = {member.sql for member in members}
        if len(distinct_texts) < 2:
            continue  # textually identical statements share a cache entry
        diagnostics.add(
            "DQ420",
            f"{len(distinct_texts)} statements differ only in literals "
            f"(shape: {fingerprint}); each misses the plan cache — "
            f"parameterize the statement",
            context=_contexts(members),
        )


def _check_quality_views(
    statements: list[WorkloadStatement], diagnostics: Diagnostics
) -> None:
    # (relation, quality key) → [(member, conjuncts constraining the key)]
    by_key: dict[tuple, list[tuple[WorkloadStatement, list[Any]]]] = {}
    for member in statements:
        for key, conjuncts in _quality_conjuncts(member.statement).items():
            full_key = (member.statement.relation, key)
            by_key.setdefault(full_key, []).append((member, conjuncts))

    for (relation, key), holders in by_key.items():
        if len(holders) < 2:
            continue
        label = f"{_key_label(key)} on {relation!r}"
        reported_conflict = False
        for i, (member_a, conjuncts_a) in enumerate(holders):
            for member_b, conjuncts_b in holders[i + 1 :]:
                if member_a.sql == member_b.sql:
                    continue
                # Contradiction across views: each side satisfiable
                # alone, the combination provably empty.
                if not reported_conflict and (
                    _facts_from([conjuncts_a]).find_conflict() is None
                    and _facts_from([conjuncts_b]).find_conflict() is None
                    and _facts_from([conjuncts_a, conjuncts_b]).find_conflict()
                    is not None
                ):
                    conflict = _facts_from(
                        [conjuncts_a, conjuncts_b]
                    ).find_conflict()
                    diagnostics.add(
                        "DQ421",
                        f"workload views impose contradictory constraints "
                        f"on {label}: {conflict[0]} "
                        f"({_contexts([member_a, member_b])})",
                        context=_contexts([member_a, member_b]),
                    )
                    reported_conflict = True
                values_a = _accepted_values(conjuncts_a)
                values_b = _accepted_values(conjuncts_b)
                if values_a is None or values_b is None:
                    continue
                for narrow, wide, narrow_member, wide_member in (
                    (values_a, values_b, member_a, member_b),
                    (values_b, values_a, member_b, member_a),
                ):
                    if narrow and narrow < wide:
                        diagnostics.add(
                            "DQ422",
                            f"{narrow_member.context or '<sql>'} accepts a "
                            f"strict subset {sorted(narrow)!r} of the "
                            f"values {wide_member.context or '<sql>'} "
                            f"accepts ({sorted(wide)!r}) on {label}; the "
                            f"stricter view could filter the looser "
                            f"one's result",
                            context=_contexts([narrow_member, wide_member]),
                        )
                        break


def _check_partition_candidates(
    statements: list[WorkloadStatement],
    catalog: Optional[Any],
    diagnostics: Diagnostics,
) -> None:
    """DQ424: suggest partition keys from equality-predicate frequency.

    A plain column constrained by top-level ``=``/``IN`` conjuncts in
    two or more *distinct* statements on the same relation is a
    candidate — those statements would all prune statically if the
    relation were hash-partitioned on it.  Only the most-constrained
    column per relation is reported, and relations already partitioned
    on that column are skipped.
    """
    # (relation, column) → set of distinct statement texts pinning it
    pins: dict[tuple[str, str], set[str]] = {}
    for member in statements:
        statement = member.statement
        if statement.where is None:
            continue
        for conjunct in _conjuncts(statement.where):
            if isinstance(conjunct, Comparison):
                key, op, value, _ = _normalize_comparison(conjunct)
                if key is None or key[0] != "col" or op != "=" or value is None:
                    continue
                column = key[1]
            elif isinstance(conjunct, InList) and not conjunct.negated:
                key = _operand_key(conjunct.operand)
                if key is None or key[0] != "col":
                    continue
                column = key[1]
            else:
                continue
            pins.setdefault((statement.relation, column), set()).add(
                member.sql
            )

    best: dict[str, tuple[int, str]] = {}
    for (relation, column), texts in pins.items():
        if len(texts) < 2:
            continue
        count = len(texts)
        incumbent = best.get(relation)
        # Deterministic tie-break: higher count, then column name.
        if incumbent is None or (count, column) > incumbent:
            best[relation] = (count, column)

    for relation in sorted(best):
        count, column = best[relation]
        if catalog is not None:
            try:
                live = catalog[relation]
            except (KeyError, TypeError):
                live = None
            spec = getattr(live, "partition_spec", None)
            if spec is not None and spec.column == column:
                continue  # already partitioned on the candidate
        diagnostics.add(
            "DQ424",
            f"{count} distinct workload statements pin "
            f"{relation}.{column} with equality/IN predicates; "
            f"hash-partitioning {relation!r} on {column!r} would let "
            f"the planner prune those scans statically",
            context=relation,
        )


def _check_unqueried_indicators(
    statements: list[WorkloadStatement],
    catalog: Any,
    diagnostics: Diagnostics,
) -> None:
    referenced: set[tuple[str, str]] = set()
    relations_used: set[str] = set()
    for member in statements:
        relations_used.add(member.statement.relation)
        for relation, _, indicator in _quality_references(member.statement):
            referenced.add((relation, indicator))
    for name in sorted(relations_used):
        try:
            relation = catalog[name]
        except (KeyError, TypeError):
            continue
        if not isinstance(relation, TaggedRelation):
            continue
        unused = sorted(
            indicator
            for indicator in relation.tag_schema.indicator_names
            if (name, indicator) not in referenced
        )
        if unused:
            diagnostics.add(
                "DQ423",
                f"tag schema of {name!r} defines "
                f"{', '.join(repr(i) for i in unused)} but no workload "
                f"statement ever queries "
                f"{'them' if len(unused) > 1 else 'it'} — quality "
                f"metadata collected but never consulted",
                context=name,
            )


def _check_unregistered_parameters(
    statements: list[WorkloadStatement], diagnostics: Diagnostics
) -> None:
    """DQ425: QUALITY(parameter) references no registered profile defines."""
    from repro.quality.materialize import parameter_defined

    seen: set[tuple[str, str]] = set()
    for member in statements:
        for relation, parameter in sorted(
            _score_parameter_references(member.statement)
        ):
            if (relation, parameter) in seen:
                continue
            seen.add((relation, parameter))
            if parameter_defined(parameter):
                continue
            diagnostics.add(
                "DQ425",
                f"statement references QUALITY({parameter}) on "
                f"{relation!r} but no registered scoring profile "
                f"defines {parameter!r}; register and bind a profile "
                f"before the statement can execute",
                context=member.context,
            )
