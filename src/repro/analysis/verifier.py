"""The plan-IR static verifier: structural soundness of optimized plans.

The optimizer's rewrites (:mod:`repro.sql.optimizer`) and the plan
cache (:mod:`repro.sql.plancache`) are trusted with the correctness of
every planner-path answer: a wrong pushdown or a stale cache entry
silently returns wrong rows.  This module makes those invariants
checkable — the paper's "quality requirements verified before data is
consumed" applied to the engine's own plans.

:func:`verify_plan` walks an optimized logical plan bottom-up, deriving
each operator's output shape via the plan IR's own
:func:`~repro.sql.plan.derive_plan_columns` methods, and reports
violations through the diagnostics engine as the DQ40x family:

- **column resolution** (DQ401) — every column an operator reads is
  provided by its input subtree;
- **schema consistency** (DQ402) — no duplicate output names, join
  inputs disjoint, join column annotations fresh, scan flags matching
  the catalog;
- **pushdown legality** (DQ403/DQ404) — QualityFilters sit directly
  above tagged scans and route only store-answerable constraints;
  QUALITY references only appear over tag-carrying subtrees;
- **score-pushdown legality** (DQ411) — a ``ScoreFilter`` sits directly
  above a tagged Scan (or the QualityFilter over one), routes only
  operators the materialized score arrays answer, never compares
  against NULL, and every routed parameter is defined by the scanned
  relation's bound :class:`~repro.quality.materialize.ScoringProfile`;
- **columnar discipline** (DQ405/DQ406) — a ``Scan(columnar=True)``
  reaches its :class:`~repro.sql.plan.Materialize` boundary through
  whitelisted, vector-executable operators only;
- **fusion legality** (DQ407/DQ408) — TopK/Limit/Sort parameters are
  legal and LIMIT-over-ORDER-BY was fused;
- **partition-pruning legality** (DQ410) — a pruned ``Scan`` (one
  carrying a static surviving-bucket set) is governed by a Filter
  predicate that actually restricts the partition key, its layout
  metadata matches the live :class:`~repro.relational.partition.PartitionSpec`,
  and the surviving set is a superset of the buckets the predicate can
  reach (re-derived via the optimizer's own
  :func:`~repro.sql.optimizer.derive_partition_buckets`, so verifier
  and rewrite cannot drift).  Pruning justified by a predicate that
  does not constrain the partition key is a hard error.

:func:`verify_cache_entry` checks plan-cache key completeness (DQ409):
every plan-shape-affecting input — schema identity, tag schema,
catalog version, columnar mode, columnar cost band, partition layout
version, scoring-registry version (for plans carrying a ScoreFilter) —
is pinned by the entry and still matches the live relation.

Unknown base relations (a context that cannot resolve a scan) degrade
gracefully: shape-dependent checks are skipped rather than reported,
so the verifier can run over partially-bound plans in tests.

Wiring: ``optimize(..., verify=True)``, the ``REPRO_VERIFY_PLANS=1``
environment flag (which also arms the columnar batch sanitizer in
:mod:`repro.sql.physical`), and the plan cache's install/hit paths.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Optional

from repro.analysis.diagnostics import Diagnostics, QueryAnalysisError
from repro.obs import metrics as _obs_metrics
from repro.relational.catalog import Database
from repro.relational.relation import Relation
from repro.sql.nodes import (
    AggregateCall,
    BoolOp,
    ColumnRef,
    Comparison,
    InList,
    IsNull,
    Literal,
    NotOp,
    QualityRef,
    QualityScoreRef,
)
from repro.sql.plan import (
    Aggregate,
    Columns,
    Distinct,
    Filter,
    HashJoin,
    Limit,
    Materialize,
    PlanNode,
    Project,
    QualityFilter,
    Scan,
    ScoreFilter,
    Sort,
    TopK,
    render_expr,
)
from repro.tagging.query import OPERATORS as _STORE_OPERATORS
from repro.tagging.relation import TaggedRelation

__all__ = [
    "PlanVerificationError",
    "assert_plan_verifies",
    "verify_cache_entry",
    "verify_plan",
    "verify_plans_enabled",
]

#: The environment flag that turns on plan verification (optimizer +
#: plan cache) and the columnar batch sanitizer.  Any value other than
#: empty/"0" arms both.
ENV_FLAG = "REPRO_VERIFY_PLANS"

#: Operator types allowed between a columnar Scan and its Materialize.
_FRAGMENT_WHITELIST = (Scan, Filter, Project, TopK, Limit)


def verify_plans_enabled() -> bool:
    """Whether the ``REPRO_VERIFY_PLANS`` environment flag is set."""
    return os.environ.get(ENV_FLAG, "") not in ("", "0")


class PlanVerificationError(QueryAnalysisError):
    """An optimized plan (or cache entry) failed static verification.

    Carries the full :class:`Diagnostics` list like its parent; raised
    by ``optimize(..., verify=True)`` and the plan cache's verified
    install/hit paths.
    """


@dataclass
class _Shape:
    """Derived facts about one plan subtree's output."""

    columns: Columns  # output column names, None when underivable
    tagged: bool  # rows carry per-cell quality tags
    tag_schema: Any  # TagSchema when known, else None
    known: bool  # the base relation(s) below resolved in the context


def _expr_refs(expr: Any) -> tuple[set[str], set[tuple[str, str]], set[str]]:
    """(column names, QUALITY (column, indicator) pairs, QUALITY score
    parameters) a WHERE subtree reads."""
    columns: set[str] = set()
    quality: set[tuple[str, str]] = set()
    scores: set[str] = set()

    def walk(node: Any) -> None:
        if isinstance(node, Literal):
            return
        if isinstance(node, ColumnRef):
            columns.add(node.column)
        elif isinstance(node, QualityRef):
            columns.add(node.column)
            quality.add((node.column, node.indicator))
        elif isinstance(node, QualityScoreRef):
            scores.add(node.parameter)
        elif isinstance(node, Comparison):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, (InList, IsNull)):
            walk(node.operand)
        elif isinstance(node, BoolOp):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, NotOp):
            walk(node.operand)

    walk(expr)
    return columns, quality, scores


class _PlanVerifier:
    """One verification run over one optimized plan tree."""

    def __init__(
        self,
        context: Any,
        sql: Optional[str],
        context_label: str,
        diagnostics: Diagnostics,
    ) -> None:
        self.context = context
        self.sql = sql
        self.context_label = context_label
        self.diagnostics = diagnostics

    def add(self, code: str, message: str, span: Any = None) -> None:
        self.diagnostics.add(
            code,
            message,
            span=span,
            source=self.sql,
            context=self.context_label,
        )

    # -- per-node checks -----------------------------------------------------

    def visit(self, node: PlanNode, in_fragment: bool) -> _Shape:
        if in_fragment and not isinstance(node, _FRAGMENT_WHITELIST):
            self.add(
                "DQ405",
                f"operator {type(node).__name__} is not allowed inside a "
                f"columnar fragment (whitelist: Scan, Filter, Project, "
                f"TopK, Limit)",
            )
        if isinstance(node, Scan):
            return self.visit_scan(node, in_fragment)
        if isinstance(node, QualityFilter):
            return self.visit_quality_filter(node, in_fragment)
        if isinstance(node, ScoreFilter):
            return self.visit_score_filter(node, in_fragment)
        if isinstance(node, Filter):
            return self.visit_filter(node, in_fragment)
        if isinstance(node, Project):
            return self.visit_project(node, in_fragment)
        if isinstance(node, HashJoin):
            return self.visit_hash_join(node, in_fragment)
        if isinstance(node, Aggregate):
            return self.visit_aggregate(node, in_fragment)
        if isinstance(node, (Sort, TopK)):
            return self.visit_order(node, in_fragment)
        if isinstance(node, Distinct):
            return self.visit(node.child, in_fragment)
        if isinstance(node, Limit):
            return self.visit_limit(node, in_fragment)
        if isinstance(node, Materialize):
            return self.visit_materialize(node, in_fragment)
        self.add("DQ402", f"unknown plan node {node!r}")  # pragma: no cover
        return _Shape(None, False, None, False)  # pragma: no cover

    def visit_scan(self, node: Scan, in_fragment: bool) -> _Shape:
        if node.columnar and not in_fragment:
            self.add(
                "DQ405",
                f"columnar Scan of {node.relation!r} never reaches a "
                f"Materialize boundary; row operators above it would see "
                f"column arrays",
            )
        relation = self.context.relation(node.relation) if self.context else None
        if relation is None:
            return _Shape(None, node.tagged, None, False)
        tagged = isinstance(relation, TaggedRelation)
        if tagged != node.tagged:
            self.add(
                "DQ402",
                f"Scan of {node.relation!r} is marked "
                f"{'tagged' if node.tagged else 'plain'} but the catalog "
                f"relation is {'tagged' if tagged else 'plain'}",
            )
        if node.columnar and tagged:
            self.add(
                "DQ405",
                f"columnar Scan of {node.relation!r} over a tagged "
                f"relation; the columnar path supports plain relations "
                f"only",
            )
        return _Shape(
            tuple(relation.schema.column_names),
            tagged,
            relation.tag_schema if tagged else None,
            True,
        )

    def visit_quality_filter(
        self, node: QualityFilter, in_fragment: bool
    ) -> _Shape:
        child_shape = self.visit(node.child, in_fragment)
        child = node.child
        if not (isinstance(child, Scan) and child.tagged):
            self.add(
                "DQ403",
                f"QualityFilter must sit directly above a tagged Scan, "
                f"not {type(child).__name__}; the columnar tag store is "
                f"only addressable at the base relation",
            )
            return child_shape
        for column, indicator, op, operand in node.constraints:
            label = f"QUALITY({column}.{indicator}) {op} {operand!r}"
            if op not in _STORE_OPERATORS:
                self.add(
                    "DQ403",
                    f"pushed constraint {label} uses operator {op!r}, "
                    f"which the tag store does not implement "
                    f"(known: {sorted(_STORE_OPERATORS)})",
                )
            if operand is None:
                self.add(
                    "DQ403",
                    f"pushed constraint {label} compares against NULL; "
                    f"row semantics never match NULL, the store would "
                    f"match differently",
                )
            if not child_shape.known:
                continue
            if child_shape.columns is not None and column not in child_shape.columns:
                self.add(
                    "DQ401",
                    f"pushed constraint {label} references column "
                    f"{column!r}, which the scanned relation does not "
                    f"provide (columns: {list(child_shape.columns)})",
                )
                continue
            tag_schema = child_shape.tag_schema
            if tag_schema is not None:
                try:
                    allowed = tag_schema.allowed_for(column)
                except Exception:
                    allowed = ()
                if indicator not in allowed:
                    self.add(
                        "DQ403",
                        f"pushed constraint {label}: indicator "
                        f"{indicator!r} is not allowed on column "
                        f"{column!r} — per-cell it reads as NULL (never "
                        f"matches) but the store scan would raise",
                    )
        return child_shape

    def visit_score_filter(
        self, node: ScoreFilter, in_fragment: bool
    ) -> _Shape:
        child_shape = self.visit(node.child, in_fragment)
        child = node.child
        if isinstance(child, QualityFilter):
            scan = child.child
        else:
            scan = child
        if not (isinstance(scan, Scan) and scan.tagged):
            self.add(
                "DQ411",
                f"ScoreFilter must sit directly above a tagged Scan (or "
                f"the QualityFilter over one), not "
                f"{type(child).__name__}; materialized score arrays are "
                f"only addressable at the base relation",
            )
            return child_shape
        profile = None
        if child_shape.known:
            from repro.quality.materialize import profile_for

            relation = (
                self.context.relation(scan.relation) if self.context else None
            )
            profile = profile_for(relation) if relation is not None else None
            if profile is None:
                self.add(
                    "DQ411",
                    f"ScoreFilter over {scan.relation!r} but no scoring "
                    f"profile is bound to that relation; executing it "
                    f"would raise instead of filtering",
                )
        for parameter, op, operand in node.constraints:
            label = f"QUALITY({parameter}) {op} {operand!r}"
            if op not in _STORE_OPERATORS:
                self.add(
                    "DQ411",
                    f"pushed score constraint {label} uses operator "
                    f"{op!r}, which the score arrays do not implement "
                    f"(known: {sorted(_STORE_OPERATORS)})",
                )
            if operand is None:
                self.add(
                    "DQ411",
                    f"pushed score constraint {label} compares against "
                    f"NULL; row semantics never match NULL",
                )
            if profile is not None and not profile.defines(parameter):
                self.add(
                    "DQ411",
                    f"pushed score constraint {label}: parameter "
                    f"{parameter!r} is not defined by the bound scoring "
                    f"profile {profile.name!r} "
                    f"(defined: {list(profile.parameters)})",
                )
        return child_shape

    def visit_filter(self, node: Filter, in_fragment: bool) -> _Shape:
        shape = self.visit(node.child, in_fragment)
        predicate = node.predicate
        if isinstance(predicate, Literal):
            return shape
        columns, quality, scores = _expr_refs(predicate)
        span = getattr(predicate, "span", None)
        if in_fragment and (quality or scores):
            self.add(
                "DQ406",
                f"columnar Filter predicate {render_expr(predicate)} "
                f"reads QUALITY(...) tags; the vectorized path has no "
                f"per-cell tags",
                span=span,
            )
        if shape.known and shape.columns is not None:
            for column in sorted(columns - set(shape.columns)):
                self.add(
                    "DQ401",
                    f"Filter predicate references column {column!r}, "
                    f"which its input does not provide "
                    f"(columns: {list(shape.columns)})",
                    span=span,
                )
        if (quality or scores) and shape.known and not shape.tagged:
            pairs = ", ".join(
                [f"QUALITY({c}.{i})" for c, i in sorted(quality)]
                + [f"QUALITY({p})" for p in sorted(scores)]
            )
            self.add(
                "DQ404",
                f"Filter evaluates {pairs} over an untagged subtree; "
                f"no per-cell tags exist there",
                span=span,
            )
        return shape

    def visit_project(self, node: Project, in_fragment: bool) -> _Shape:
        shape = self.visit(node.child, in_fragment)
        seen: dict[str, int] = {}
        materializes_quality = False
        for item in node.items:
            name = item.output_name
            seen[name] = seen.get(name, 0) + 1
            if seen[name] == 2:
                self.add(
                    "DQ402",
                    f"Project emits duplicate output column {name!r}",
                    span=item.span,
                )
            expr = item.expr
            if isinstance(expr, AggregateCall):
                self.add(
                    "DQ402",
                    f"Project contains aggregate call "
                    f"{expr.func}(...); aggregates belong in an "
                    f"Aggregate operator",
                    span=item.span,
                )
                continue
            if in_fragment and not isinstance(expr, ColumnRef):
                self.add(
                    "DQ406",
                    f"columnar Project item {name!r} is not a bare "
                    f"column reference; the vectorized path only "
                    f"reorders array references",
                    span=item.span,
                )
            if isinstance(expr, QualityScoreRef):
                materializes_quality = True
                if shape.known and not shape.tagged:
                    self.add(
                        "DQ404",
                        f"Project materializes QUALITY({expr.parameter}) "
                        f"over an untagged subtree",
                        span=item.span,
                    )
                continue  # score refs read tags, not an input column
            if isinstance(expr, QualityRef):
                materializes_quality = True
                if shape.known and not shape.tagged:
                    self.add(
                        "DQ404",
                        f"Project materializes QUALITY({expr.column}."
                        f"{expr.indicator}) over an untagged subtree",
                        span=item.span,
                    )
            if (
                shape.known
                and shape.columns is not None
                and expr.column not in shape.columns
            ):
                self.add(
                    "DQ401",
                    f"Project references column {expr.column!r}, which "
                    f"its input does not provide "
                    f"(columns: {list(shape.columns)})",
                    span=item.span,
                )
        return _Shape(
            tuple(item.output_name for item in node.items),
            shape.tagged and not materializes_quality,
            shape.tag_schema if shape.tagged and not materializes_quality else None,
            shape.known,
        )

    def visit_hash_join(self, node: HashJoin, in_fragment: bool) -> _Shape:
        left = self.visit(node.left, in_fragment)
        right = self.visit(node.right, in_fragment)
        if left.columns is not None and right.columns is not None:
            overlap = set(left.columns) & set(right.columns)
            if overlap:
                self.add(
                    "DQ402",
                    f"HashJoin inputs share column names "
                    f"{sorted(overlap)}; the concatenated output schema "
                    f"would be ambiguous",
                )
        for annotation, derived, side in (
            (node.left_columns, left.columns, "left"),
            (node.right_columns, right.columns, "right"),
        ):
            if annotation and derived is not None and tuple(annotation) != derived:
                self.add(
                    "DQ402",
                    f"HashJoin {side}_columns annotation "
                    f"{list(annotation)} is stale; the {side} subtree "
                    f"derives {list(derived)}",
                )
        for lcol, rcol in node.on:
            if left.known and left.columns is not None and lcol not in left.columns:
                self.add(
                    "DQ401",
                    f"HashJoin key {lcol!r} is not provided by the left "
                    f"input (columns: {list(left.columns)})",
                )
            if right.known and right.columns is not None and rcol not in right.columns:
                self.add(
                    "DQ401",
                    f"HashJoin key {rcol!r} is not provided by the "
                    f"right input (columns: {list(right.columns)})",
                )
        columns = (
            left.columns + right.columns
            if left.columns is not None and right.columns is not None
            else None
        )
        return _Shape(columns, False, None, left.known and right.known)

    def _check_operand(
        self, operand: Any, shape: _Shape, where: str, span: Any
    ) -> None:
        """Resolve one ColumnRef/QualityRef against the input shape."""
        if isinstance(operand, QualityScoreRef):
            if shape.known and not shape.tagged:
                self.add(
                    "DQ404",
                    f"{where} evaluates QUALITY({operand.parameter}) "
                    f"over an untagged subtree",
                    span=span,
                )
            return  # score refs read tags, not an input column
        if isinstance(operand, QualityRef):
            if shape.known and not shape.tagged:
                self.add(
                    "DQ404",
                    f"{where} evaluates QUALITY({operand.column}."
                    f"{operand.indicator}) over an untagged subtree",
                    span=span,
                )
        if (
            shape.known
            and shape.columns is not None
            and operand.column not in shape.columns
        ):
            self.add(
                "DQ401",
                f"{where} references column {operand.column!r}, which "
                f"its input does not provide "
                f"(columns: {list(shape.columns)})",
                span=span,
            )

    def visit_aggregate(self, node: Aggregate, in_fragment: bool) -> _Shape:
        shape = self.visit(node.child, in_fragment)
        for key in node.group_by:
            self._check_operand(key, shape, "Aggregate GROUP BY", key.span)
        seen: dict[str, int] = {}
        for item in node.items:
            name = item.output_name
            seen[name] = seen.get(name, 0) + 1
            if seen[name] == 2:
                self.add(
                    "DQ402",
                    f"Aggregate emits duplicate output column {name!r}",
                    span=item.span,
                )
            expr = item.expr
            if isinstance(expr, AggregateCall):
                if expr.operand is not None:
                    self._check_operand(
                        expr.operand, shape, f"Aggregate {expr.func}",
                        expr.span,
                    )
            else:
                self._check_operand(expr, shape, "Aggregate key", item.span)
        return _Shape(
            tuple(item.output_name for item in node.items),
            False,
            None,
            shape.known,
        )

    def visit_order(self, node: "Sort | TopK", in_fragment: bool) -> _Shape:
        shape = self.visit(node.child, in_fragment)
        kind = type(node).__name__
        if not node.order_by:
            self.add(
                "DQ407",
                f"{kind} with no order keys; no rewrite sequence "
                f"produces an unkeyed {kind}",
            )
        if isinstance(node, TopK) and node.count < 0:
            self.add(
                "DQ407",
                f"TopK with negative count {node.count}; limits are "
                f"validated non-negative at parse time",
            )
        for item in node.order_by:
            if in_fragment and not isinstance(item.key, ColumnRef):
                self.add(
                    "DQ406",
                    f"columnar {kind} key "
                    f"{getattr(item.key, 'column', item.key)!r} is not a "
                    f"bare column reference",
                    span=item.span,
                )
                continue
            self._check_operand(item.key, shape, f"{kind} key", item.span)
        return shape

    def visit_limit(self, node: Limit, in_fragment: bool) -> _Shape:
        shape = self.visit(node.child, in_fragment)
        if node.count < 0:
            self.add(
                "DQ407",
                f"Limit with negative count {node.count}; limits are "
                f"validated non-negative at parse time",
            )
        child = node.child
        if isinstance(child, Sort) or (
            isinstance(child, Project) and isinstance(child.child, Sort)
        ):
            self.add(
                "DQ408",
                "Limit directly above Sort survived optimization; "
                "fuse_topk should have rewritten this into a "
                "bounded-heap TopK",
            )
        return shape

    # -- partition-pruning legality (DQ410) -----------------------------------

    def check_partition_pruning(self, plan: PlanNode) -> None:
        """Pre-pass: every pruned Scan's bucket set is justified.

        Walks the tree tracking the *governing* Filter predicate — the
        nearest enclosing Filter whose child chain reaches the scan
        through Quality/ScoreFilters only (the exact shapes the
        optimizer's ``prune_partitions`` and ``push_score_predicates``
        rewrites produce).  Any other interposed
        operator resets the governing predicate: a pruned scan it
        reaches has no justification and is a hard error.
        """

        def walk(node: PlanNode, governing: Any) -> None:
            if isinstance(node, Scan):
                if node.partitions is not None:
                    self._check_pruned_scan(node, governing)
                return
            if isinstance(node, Filter):
                walk(node.child, node.predicate)
                return
            if isinstance(node, (QualityFilter, ScoreFilter)):
                walk(node.child, governing)
                return
            for child in node.children():
                walk(child, None)

        walk(plan, None)

    def _check_pruned_scan(self, node: Scan, predicate: Any) -> None:
        from repro.sql.optimizer import derive_partition_buckets

        label = (
            f"pruned Scan of {node.relation!r} "
            f"({len(node.partitions)}/{node.partition_total})"
        )
        out_of_range = sorted(
            bucket
            for bucket in node.partitions
            if not 0 <= bucket < node.partition_total
        )
        if out_of_range:
            self.add(
                "DQ410",
                f"{label} lists bucket(s) {out_of_range} outside "
                f"[0, {node.partition_total})",
            )
        if predicate is None:
            self.add(
                "DQ410",
                f"{label} has no governing Filter predicate; nothing "
                f"justifies eliminating the dropped partitions",
            )
            return
        relation = (
            self.context.relation(node.relation) if self.context else None
        )
        if relation is None:
            return  # unknown base relation: degrade gracefully
        spec = getattr(relation, "partition_spec", None)
        if spec is None:
            self.add(
                "DQ410",
                f"{label} but the catalog relation is not partitioned; "
                f"executing it would silently drop rows",
            )
            return
        if (
            spec.count != node.partition_total
            or spec.column != node.partition_key
        ):
            self.add(
                "DQ410",
                f"{label} pins layout key={node.partition_key!r} "
                f"total={node.partition_total} but the live layout is "
                f"{spec.describe()}; stale pruning may drop live buckets",
            )
            return
        derived = derive_partition_buckets(spec, predicate)
        if derived is None:
            self.add(
                "DQ410",
                f"{label}: governing predicate "
                f"{render_expr(predicate)} does not restrict partition "
                f"key {spec.column!r}; pruning over a non-partition-key "
                f"predicate is unsound",
                span=getattr(predicate, "span", None),
            )
            return
        missing = sorted(derived - set(node.partitions))
        if missing:
            self.add(
                "DQ410",
                f"{label} drops bucket(s) {missing} that predicate "
                f"{render_expr(predicate)} can still reach",
                span=getattr(predicate, "span", None),
            )

    def visit_materialize(self, node: Materialize, in_fragment: bool) -> _Shape:
        if in_fragment:
            self.add(
                "DQ405",
                "nested Materialize inside a columnar fragment",
            )
        shape = self.visit(node.child, True)
        scan = node.child
        while not isinstance(scan, Scan) and scan.children():
            scan = scan.children()[0]
        if not (isinstance(scan, Scan) and scan.columnar):
            self.add(
                "DQ405",
                f"Materialize over a non-columnar subtree (bottoms out "
                f"at {scan.label() if isinstance(scan, Scan) else type(scan).__name__}); "
                f"the boundary only converts columnar batches to rows",
            )
        return _Shape(shape.columns, False, None, shape.known)


def verify_plan(
    plan: PlanNode,
    context: Any = None,
    *,
    sql: Optional[str] = None,
    context_label: str = "",
    diagnostics: Optional[Diagnostics] = None,
) -> Diagnostics:
    """Statically verify one optimized plan tree.

    ``context`` is the :class:`~repro.sql.optimizer.PlanContext` (or
    anything with ``.relation(name)``) the plan was optimized against;
    ``sql`` anchors diagnostics back to the source statement via the
    AST spans the plan nodes carry.  Returns the diagnostics collected
    (never raises — see :func:`assert_plan_verifies`).
    """
    if diagnostics is None:
        diagnostics = Diagnostics()
    before = len(diagnostics)
    verifier = _PlanVerifier(context, sql, context_label, diagnostics)
    verifier.visit(plan, False)
    verifier.check_partition_pruning(plan)
    if _obs_metrics.enabled():
        registry = _obs_metrics.global_registry()
        registry.counter(
            "qsql.verifier.plans", "optimized plans statically verified"
        ).inc()
        found = len(diagnostics) - before
        if found:
            registry.counter(
                "qsql.verifier.violations",
                "plan-verifier diagnostics emitted",
            ).inc(found)
    return diagnostics


def assert_plan_verifies(
    plan: PlanNode,
    context: Any = None,
    *,
    sql: Optional[str] = None,
    context_label: str = "",
) -> None:
    """Run :func:`verify_plan`; raise on error-severity findings."""
    diagnostics = verify_plan(
        plan, context, sql=sql, context_label=context_label
    )
    if diagnostics.has_errors:
        raise PlanVerificationError(diagnostics, sql)


# -- plan-cache key completeness ---------------------------------------------


def _plan_has_columnar_scan(plan: PlanNode) -> bool:
    if isinstance(plan, Scan):
        return plan.columnar
    return any(_plan_has_columnar_scan(child) for child in plan.children())


def _plan_has_score_filter(plan: PlanNode) -> bool:
    if isinstance(plan, ScoreFilter):
        return True
    return any(_plan_has_score_filter(child) for child in plan.children())


def verify_cache_entry(
    entry: Any,
    relation: Any,
    source: Any = None,
    *,
    diagnostics: Optional[Diagnostics] = None,
) -> Diagnostics:
    """Check one plan-cache entry's key completeness (DQ409).

    ``entry`` is a :class:`~repro.sql.plancache.PreparedStatement`;
    ``relation`` is the live relation the lookup resolved; ``source``
    the execute() source (checked for catalog-version pinning when it
    is a :class:`~repro.relational.catalog.Database`).  Every input
    that affects plan shape must be pinned by the entry and must still
    match — a mismatch means the cache could serve a plan built for
    different inputs.
    """
    from repro.sql import optimizer as _optimizer

    if diagnostics is None:
        diagnostics = Diagnostics()

    def add(message: str) -> None:
        diagnostics.add(
            "DQ409", message, source=entry.sql, context=entry.relation_name
        )

    tagged = isinstance(relation, TaggedRelation)
    if entry.tagged != tagged:
        add(
            f"entry pins tagged={entry.tagged} but the live relation is "
            f"{'tagged' if tagged else 'plain'}"
        )
    if relation.schema is not entry.schema:
        add(
            "entry pins a stale relation schema (identity mismatch); "
            "the plan's column positions may be wrong"
        )
    if tagged and entry.tagged and relation.tag_schema is not entry.tag_schema:
        add(
            "entry pins a stale tag schema (identity mismatch); pushed "
            "quality constraints may be illegal now"
        )
    if isinstance(source, Database):
        if entry.catalog_version is None:
            add(
                "entry was planned without a catalog version but is "
                "served from a Database source; create/drop would not "
                "invalidate it"
            )
        elif entry.catalog_version != source.catalog_version:
            add(
                f"entry pins catalog version {entry.catalog_version} "
                f"but the database is at {source.catalog_version}"
            )
    has_columnar = _plan_has_columnar_scan(entry.plan)
    if has_columnar and not entry.columnar_mode:
        add(
            "entry's plan contains a columnar Scan but the entry is "
            "keyed columnar_mode=False; a row-mode lookup would reuse "
            "a columnar plan"
        )
    if entry.columnar_mode and isinstance(relation, Relation):
        expected_band = (
            len(relation) >= _optimizer.COLUMNAR_MIN_ROWS
        )
        if entry.columnar_band is None:
            add(
                "entry omits the columnar cost band from its cache key; "
                "growing the relation across COLUMNAR_MIN_ROWS would "
                "not replan"
            )
        elif entry.columnar_band != expected_band:
            add(
                f"entry pins columnar cost band {entry.columnar_band} "
                f"but the relation is now on the "
                f"{'columnar' if expected_band else 'row'} side of "
                f"COLUMNAR_MIN_ROWS"
            )
    pinned_layout = getattr(entry, "partition_layout", None)
    live_layout = getattr(relation, "partition_layout_version", 0)
    if pinned_layout is None:
        add(
            "entry omits the partition layout version from its cache "
            "key; repartition() would not invalidate baked partition "
            "pruning"
        )
    elif pinned_layout != live_layout:
        add(
            f"entry pins partition layout version {pinned_layout} but "
            f"the relation is at {live_layout}; the plan's baked "
            f"surviving-bucket set may be stale"
        )
    pinned_scoring = getattr(entry, "scoring_version", None)
    if _plan_has_score_filter(entry.plan):
        from repro.quality.materialize import registry_version

        if pinned_scoring is None:
            add(
                "entry's plan contains a ScoreFilter but omits the "
                "scoring-registry version from its cache key; "
                "re-registering a profile would not replan it"
            )
        elif pinned_scoring != registry_version():
            add(
                f"entry pins scoring-registry version {pinned_scoring} "
                f"but the registry is at {registry_version()}; the "
                f"pushed score constraints may target a superseded "
                f"profile"
            )
    return diagnostics
