"""The example catalog ``repro-lint`` resolves queries against.

The CLI lints QSQL strings found in source files *statically*, so it
needs schemas — not data — for the relations those queries name.  The
catalog mirrors the repo's example/scenario relations (empty: static
analysis never reads rows):

- ``customer`` — the §1.2 customer relation with the Table 2 tag schema;
- ``address_book`` — the §4 clearinghouse with the manufacturing
  pipeline's tag schema;
- ``ticks`` — the E6 price ticks with required ``age`` tags;
- ``quotes`` — the Polygen-bridged federation output with attribution
  tags.
"""

from __future__ import annotations

from repro.tagging.relation import TaggedRelation


def example_catalog() -> dict[str, TaggedRelation]:
    """Empty relations carrying the example schemas and tag schemas."""
    from repro.experiments.scenarios import (
        ADDRESS_SCHEMA,
        CUSTOMER_SCHEMA,
        customer_tag_schema,
        trading_ticks,
    )
    from repro.manufacturing.pipeline import pipeline_tag_schema
    from repro.polygen.bridge import bridge_tag_schema
    from repro.relational.schema import schema

    quotes_schema = schema(
        "quotes",
        [("ticker", "STR"), ("price", "FLOAT")],
        key=["ticker"],
        doc="Federated share quotes (multi_source_federation example)",
    )
    ticks = trading_ticks(n_ticks=0)
    return {
        "customer": TaggedRelation(CUSTOMER_SCHEMA, customer_tag_schema()),
        "address_book": TaggedRelation(
            ADDRESS_SCHEMA, pipeline_tag_schema(["name", "address", "city"])
        ),
        "ticks": TaggedRelation(ticks.schema, ticks.tag_schema),
        "quotes": TaggedRelation(
            quotes_schema, bridge_tag_schema(["ticker", "price"])
        ),
    }
