"""Extracting QSQL strings from Python sources for offline linting.

``repro-lint examples/`` needs the queries *inside* the example
scripts without running them.  This module parses each ``.py`` file
with :mod:`ast` and collects every string literal that looks like a
QSQL SELECT — including implicitly-concatenated literals and
f-strings, whose ``{...}`` placeholders are substituted with
representative values (``'1991-01-01'`` inside a quoted literal, ``0``
outside) so the result still lexes.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Union

_SELECT_RE = re.compile(r"\s*SELECT\b", re.IGNORECASE)

#: Placeholder spliced into an f-string hole inside a quoted literal.
_STRING_HOLE = "1991-01-01"
#: Placeholder spliced into an f-string hole outside any literal.
_BARE_HOLE = "0"


@dataclass(frozen=True)
class ExtractedQuery:
    """One QSQL string found in a Python file."""

    sql: str
    path: str
    lineno: int
    #: False when f-string placeholders were substituted, i.e. ``sql``
    #: is an approximation of what the program would execute.
    exact: bool = True

    @property
    def context(self) -> str:
        return f"{self.path}:{self.lineno}"


def _inside_string_literal(prefix: str) -> bool:
    """Whether ``prefix`` ends inside an unterminated ``'...'`` literal.

    Doubled quotes (the QSQL escape, ``'acct''g'``) toggle twice and
    cancel out, so a simple parity count is correct.
    """
    return prefix.count("'") % 2 == 1


def _render_joined(node: ast.JoinedStr) -> tuple[str, bool]:
    """Approximate an f-string; returns (text, exact)."""
    parts: list[str] = []
    exact = True
    for value in node.values:
        if isinstance(value, ast.Constant) and isinstance(value.value, str):
            parts.append(value.value)
        elif isinstance(value, ast.FormattedValue):
            exact = False
            prefix = "".join(parts)
            parts.append(
                _STRING_HOLE if _inside_string_literal(prefix) else _BARE_HOLE
            )
        else:  # pragma: no cover - JoinedStr has no other child kinds
            exact = False
    return "".join(parts), exact


def extract_queries_from_source(
    source: str, path: str = "<string>"
) -> list[ExtractedQuery]:
    """All QSQL-looking string literals in one Python source text."""
    tree = ast.parse(source, filename=path)
    queries: list[ExtractedQuery] = []
    skip: set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.JoinedStr):
            for child in ast.walk(node):
                skip.add(id(child))
            text, exact = _render_joined(node)
            if _SELECT_RE.match(text):
                queries.append(
                    ExtractedQuery(text, path, node.lineno, exact=exact)
                )
        elif (
            isinstance(node, ast.Constant)
            and isinstance(node.value, str)
            and id(node) not in skip
            and _SELECT_RE.match(node.value)
        ):
            queries.append(ExtractedQuery(node.value, path, node.lineno))
    return queries


def extract_queries_from_file(path: Union[str, Path]) -> list[ExtractedQuery]:
    """All QSQL-looking string literals in one ``.py`` file."""
    path = Path(path)
    return extract_queries_from_source(
        path.read_text(encoding="utf-8"), str(path)
    )


def iter_python_files(paths: Iterator[Union[str, Path]]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            found.update(path.rglob("*.py"))
        else:
            found.add(path)
    return sorted(found)
