"""Serialization of methodology artifacts for cross-organization exchange.

§4: "Converging on standardized data quality attributes may be
necessary for data quality management in cases where data is
transported across organizations and application domains."  Transport
needs a wire format: this module serializes the methodology's artifacts
(parameter views, quality views, integrated quality schemas — including
their full annotation provenance) to JSON-compatible dictionaries and
back, so a quality schema designed in one organization can govern
tagged data in another.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.core.terminology import QualityIndicatorSpec, QualityParameter
from repro.core.views import (
    ApplicationView,
    IndicatorAnnotation,
    ParameterAnnotation,
    ParameterView,
    QualitySchema,
    QualityView,
)
from repro.er.model import ERSchema
from repro.errors import MethodologyError


# -- annotations --------------------------------------------------------------


def _parameter_annotation_to_dict(annotation: ParameterAnnotation) -> dict[str, Any]:
    return {
        "target": list(annotation.target),
        "parameter": {
            "name": annotation.parameter.name,
            "doc": annotation.parameter.doc,
        },
        "rationale": annotation.rationale,
    }


def _parameter_annotation_from_dict(data: dict[str, Any]) -> ParameterAnnotation:
    return ParameterAnnotation(
        tuple(data["target"]),
        QualityParameter(
            data["parameter"]["name"], data["parameter"].get("doc", "")
        ),
        data.get("rationale", ""),
    )


def _indicator_annotation_to_dict(annotation: IndicatorAnnotation) -> dict[str, Any]:
    return {
        "target": list(annotation.target),
        "indicator": {
            "name": annotation.indicator.name,
            "domain": annotation.indicator.domain.name,
            "measure": annotation.indicator.measure,
            "doc": annotation.indicator.doc,
        },
        "derived_from": list(annotation.derived_from),
        "rationale": annotation.rationale,
        "mandatory": annotation.mandatory,
    }


def _indicator_annotation_from_dict(data: dict[str, Any]) -> IndicatorAnnotation:
    spec = data["indicator"]
    return IndicatorAnnotation(
        tuple(data["target"]),
        QualityIndicatorSpec(
            spec["name"],
            spec["domain"],
            measure=spec.get("measure", ""),
            doc=spec.get("doc", ""),
        ),
        derived_from=tuple(data.get("derived_from", ())),
        rationale=data.get("rationale", ""),
        mandatory=data.get("mandatory", True),
    )


# -- views ----------------------------------------------------------------------


def parameter_view_to_dict(view: ParameterView) -> dict[str, Any]:
    """Serialize a Step-2 parameter view."""
    return {
        "kind": "parameter_view",
        "er_schema": view.er_schema.to_dict(),
        "requirements_doc": view.application_view.requirements_doc,
        "annotations": [
            _parameter_annotation_to_dict(a) for a in view.annotations
        ],
    }


def parameter_view_from_dict(data: dict[str, Any]) -> ParameterView:
    """Deserialize a Step-2 parameter view."""
    if data.get("kind") != "parameter_view":
        raise MethodologyError(
            f"not a serialized parameter view: kind={data.get('kind')!r}"
        )
    application_view = ApplicationView(
        ERSchema.from_dict(data["er_schema"]),
        data.get("requirements_doc", ""),
    )
    return ParameterView(
        application_view,
        [_parameter_annotation_from_dict(a) for a in data["annotations"]],
    )


def quality_view_to_dict(view: QualityView) -> dict[str, Any]:
    """Serialize a Step-3 quality view."""
    return {
        "kind": "quality_view",
        "er_schema": view.er_schema.to_dict(),
        "requirements_doc": view.application_view.requirements_doc,
        "annotations": [
            _indicator_annotation_to_dict(a) for a in view.annotations
        ],
    }


def quality_view_from_dict(data: dict[str, Any]) -> QualityView:
    """Deserialize a Step-3 quality view."""
    if data.get("kind") != "quality_view":
        raise MethodologyError(
            f"not a serialized quality view: kind={data.get('kind')!r}"
        )
    application_view = ApplicationView(
        ERSchema.from_dict(data["er_schema"]),
        data.get("requirements_doc", ""),
    )
    return QualityView(
        application_view,
        [_indicator_annotation_from_dict(a) for a in data["annotations"]],
    )


def quality_schema_to_dict(schema: QualitySchema) -> dict[str, Any]:
    """Serialize a Step-4 integrated quality schema.

    Component views are not shipped — the integrated schema is the
    authoritative cross-organization artifact; integration notes travel
    with it as documentation.
    """
    return {
        "kind": "quality_schema",
        "er_schema": schema.er_schema.to_dict(),
        "requirements_doc": schema.application_view.requirements_doc,
        "annotations": [
            _indicator_annotation_to_dict(a) for a in schema.annotations
        ],
        "integration_notes": list(schema.integration_notes),
    }


def quality_schema_from_dict(data: dict[str, Any]) -> QualitySchema:
    """Deserialize a Step-4 integrated quality schema."""
    if data.get("kind") != "quality_schema":
        raise MethodologyError(
            f"not a serialized quality schema: kind={data.get('kind')!r}"
        )
    application_view = ApplicationView(
        ERSchema.from_dict(data["er_schema"]),
        data.get("requirements_doc", ""),
    )
    return QualitySchema(
        application_view,
        [_indicator_annotation_from_dict(a) for a in data["annotations"]],
        integration_notes=data.get("integration_notes", ()),
    )


# -- file helpers ------------------------------------------------------------------


def save_quality_schema(schema: QualitySchema, path: str | Path) -> Path:
    """Write an integrated quality schema to a JSON file."""
    target = Path(path)
    with open(target, "w", encoding="utf-8") as handle:
        json.dump(quality_schema_to_dict(schema), handle, indent=1, sort_keys=True)
    return target


def load_quality_schema(path: str | Path) -> QualitySchema:
    """Read back a schema written by :func:`save_quality_schema`."""
    with open(path, "r", encoding="utf-8") as handle:
        return quality_schema_from_dict(json.load(handle))
