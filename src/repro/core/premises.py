"""The paper's premises (§2) as executable analyses.

The premises are design observations; here each becomes a function or
report the design team (or an administrator) can actually run:

- Premise 1.1 — application vs. quality-indicator classification:
  :func:`classify_attribute_role`;
- Premise 1.2 — quality attribute non-orthogonality:
  :func:`non_orthogonality_report`;
- Premise 1.3 — heterogeneity/hierarchy of supplied data quality:
  :func:`heterogeneity_profile`;
- Premises 2.1/2.2 — user-specific attributes and standards:
  :func:`user_standards_report` (built on
  :func:`repro.core.mapping.compare_standards`);
- Premise 3 — non-uniform standards for a single user across data:
  :func:`single_user_variation_report`.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Optional, Sequence

from repro.core.catalog import CandidateCatalog, default_catalog
from repro.core.mapping import UserQualityStandard, compare_standards
from repro.tagging.relation import TaggedRelation

# ---------------------------------------------------------------------------
# Premise 1.1 — relatedness of application and quality attributes
# ---------------------------------------------------------------------------

#: Vocabulary signalling "information about the data manufacturing
#: process ... when, where, and by whom the data was manufactured" (§2.1).
_MANUFACTURING_SIGNALS = (
    "source",
    "created",
    "creation",
    "recorded",
    "entered",
    "entry",
    "collected",
    "collection",
    "method",
    "timestamp",
    "time_of",
    "updated",
    "update",
    "verified",
    "inspected",
    "inspection",
    "certified",
    "operator",
    "teller",
    "clerk",
    "analyst",
    "author",
    "device",
    "scanner",
    "media",
    "format",
    "version",
)


def classify_attribute_role(name: str, doc: str = "") -> str:
    """Heuristic Premise-1.1 classification of an attribute.

    Returns ``"quality_indicator"`` when the attribute's name or
    description signals manufacturing-process information (when / where
    / by whom / how the data was made), else ``"application"``.

    The premise's point is that the boundary is a *modeling decision*;
    this heuristic supplies the default suggestion that a design session
    can override (see :class:`repro.core.integration.Refinement`).

    >>> classify_attribute_role("teller_name", "bank teller who performed it")
    'quality_indicator'
    >>> classify_attribute_role("share_price")
    'application'
    """
    haystack = f"{name} {doc}".lower()
    if any(signal in haystack for signal in _MANUFACTURING_SIGNALS):
        return "quality_indicator"
    return "application"


# ---------------------------------------------------------------------------
# Premise 1.2 — quality attribute non-orthogonality
# ---------------------------------------------------------------------------


def non_orthogonality_report(
    parameter_names: Sequence[str],
    catalog: Optional[CandidateCatalog] = None,
) -> list[tuple[str, str]]:
    """Related pairs among the given parameters (Premise 1.2).

    Uses the catalog's relatedness links (e.g. timeliness ~ volatility).
    Returns sorted, deduplicated pairs with each pair ordered
    alphabetically.
    """
    catalog = catalog or default_catalog()
    known = [n for n in parameter_names if n in catalog]
    pairs: set[tuple[str, str]] = set()
    for name in known:
        for related in catalog.related_to(name):
            if related.name in known:
                pairs.add(tuple(sorted((name, related.name))))  # type: ignore[arg-type]
    return sorted(pairs)


# ---------------------------------------------------------------------------
# Premise 1.3 — heterogeneity and hierarchy in supplied data quality
# ---------------------------------------------------------------------------

#: A per-cell quality score: None means "not assessable for this cell".
CellMetric = Callable[[Any], Optional[float]]


def _mean(values: list[float]) -> Optional[float]:
    return sum(values) / len(values) if values else None


def heterogeneity_profile(
    relations: Mapping[str, TaggedRelation],
    metric: CellMetric,
    metric_name: str = "quality",
) -> dict[str, Any]:
    """Hierarchical quality profile: database → relation → column → rows.

    ``metric`` scores one :class:`~repro.tagging.cell.QualityCell`
    (e.g. 1.0 if its source tag is a trusted department).  The profile
    demonstrates Premise 1.3: quality differs across databases,
    entities, attributes, and instances.

    Returns a nested report::

        {"metric": ..., "overall": float|None,
         "relations": {name: {"overall": ..., "columns": {col: ...},
                              "rows": [...per-row means...]}}}
    """
    report: dict[str, Any] = {"metric": metric_name, "relations": {}}
    all_scores: list[float] = []
    for name, relation in relations.items():
        column_scores: dict[str, list[float]] = {
            c: [] for c in relation.schema.column_names
        }
        row_means: list[Optional[float]] = []
        for row in relation:
            row_values: list[float] = []
            for column in relation.schema.column_names:
                score = metric(row[column])
                if score is not None:
                    column_scores[column].append(score)
                    row_values.append(score)
            row_means.append(_mean(row_values))
        flat = [s for scores in column_scores.values() for s in scores]
        all_scores.extend(flat)
        report["relations"][name] = {
            "overall": _mean(flat),
            "columns": {c: _mean(s) for c, s in column_scores.items()},
            "rows": row_means,
        }
    report["overall"] = _mean(all_scores)
    return report


def heterogeneity_spread(profile: dict[str, Any]) -> dict[str, float]:
    """Quantify the heterogeneity in a profile (max − min at each level).

    Returns spreads at relation, column, and row level; larger spreads
    mean less uniform quality.
    """

    def spread(values: list[Optional[float]]) -> float:
        present = [v for v in values if v is not None]
        if len(present) < 2:
            return 0.0
        return max(present) - min(present)

    relation_means = [
        entry["overall"] for entry in profile["relations"].values()
    ]
    column_means = [
        mean
        for entry in profile["relations"].values()
        for mean in entry["columns"].values()
    ]
    row_means = [
        mean for entry in profile["relations"].values() for mean in entry["rows"]
    ]
    return {
        "relation_spread": spread(relation_means),
        "column_spread": spread(column_means),
        "row_spread": spread(row_means),
    }


# ---------------------------------------------------------------------------
# Premises 2.1 / 2.2 — user specificity of attributes and standards
# ---------------------------------------------------------------------------


def user_standards_report(
    standards: Sequence[UserQualityStandard],
    relation: TaggedRelation,
    column: str,
    context: Optional[Mapping[str, Any]] = None,
) -> list[dict[str, Any]]:
    """Per-user view of the same data (Premises 2.1/2.2).

    For each user: which parameters they evaluate (2.1) and what
    fraction of the data meets their standard (2.2).
    """
    rates = compare_standards(standards, relation, column, context)
    return [
        {
            "user": standard.user,
            "parameters": list(standard.parameters),
            "acceptance_rate": rates[standard.user],
        }
        for standard in standards
    ]


# ---------------------------------------------------------------------------
# Premise 3 — single user, non-uniform standards across data
# ---------------------------------------------------------------------------


def single_user_variation_report(
    standard_by_column: Mapping[str, UserQualityStandard],
    relation: TaggedRelation,
    context: Optional[Mapping[str, Any]] = None,
) -> dict[str, float]:
    """One user's different standards across attributes (Premise 3).

    ``standard_by_column`` maps column → the (same user's) standard that
    applies to that column — e.g. stricter for ``address`` than for
    ``employees``.  Returns per-column acceptance rates.
    """
    return {
        column: standard.acceptance_rate(relation, column, context)
        for column, standard in standard_by_column.items()
    }
