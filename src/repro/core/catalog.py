"""The Appendix-A candidate quality attribute catalog.

Step 2 consults "a list of candidate quality attributes ... resulting
from survey responses from several hundred data users" (Wang &
Guarrascio, CISL-91-06 [26]).  The list "is not orthogonal, and ... not
provably exhaustive; the aim is to stimulate thinking by the design
team".  This module reproduces that catalog as structured data:

- each :class:`CandidateAttribute` carries a *category* (the survey's
  facet grouping), a *boundary* classification — whether the item
  applies to the data itself, the information system, the information
  service, or the information user (the §4 discussion names "resolution
  of graphics" as a system item, "clear data responsibility" as a
  service item, and "past experience" as a user item);
- a default *kind* (subjective parameter vs. objective indicator);
- *related* attribute names (Premise 1.2: attributes need not be
  orthogonal — timeliness relates to volatility and currency);
- *operationalizations*: the indicators commonly used to make the
  parameter measurable (the paper's worked pairs: timeliness → age /
  creation time; credibility → source / analyst name; cost → price /
  age-of-data; plus collection method, media, and inspection from the
  Figure 5 discussion).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence

from repro.core.terminology import (
    AttributeKind,
    QualityIndicatorSpec,
    QualityParameter,
)
from repro.errors import CatalogError

#: Boundary classifications discussed in §4.
BOUNDARY_DATA = "data"
BOUNDARY_SYSTEM = "system"
BOUNDARY_SERVICE = "service"
BOUNDARY_USER = "user"

_BOUNDARIES = (BOUNDARY_DATA, BOUNDARY_SYSTEM, BOUNDARY_SERVICE, BOUNDARY_USER)


class CandidateAttribute:
    """One candidate quality attribute from the survey catalog."""

    __slots__ = (
        "name",
        "kind",
        "category",
        "boundary",
        "doc",
        "related",
        "operationalizations",
    )

    def __init__(
        self,
        name: str,
        kind: AttributeKind,
        category: str,
        boundary: str = BOUNDARY_DATA,
        doc: str = "",
        related: Sequence[str] = (),
        operationalizations: Sequence[tuple[str, str]] = (),
    ) -> None:
        if boundary not in _BOUNDARIES:
            raise CatalogError(
                f"unknown boundary {boundary!r} (known: {_BOUNDARIES})"
            )
        self.name = name
        self.kind = kind
        self.category = category
        self.boundary = boundary
        self.doc = doc
        self.related = tuple(related)
        #: (indicator name, value domain name) pairs suggested by Step 3.
        self.operationalizations = tuple(operationalizations)

    def as_parameter(self) -> QualityParameter:
        """This candidate as a quality parameter object."""
        return QualityParameter(self.name, self.doc)

    def as_indicator(self, domain: str = "STR") -> QualityIndicatorSpec:
        """This candidate as a quality indicator spec."""
        return QualityIndicatorSpec(self.name, domain, doc=self.doc)

    def __repr__(self) -> str:
        return (
            f"CandidateAttribute({self.name!r}, {self.kind.value}, "
            f"category={self.category!r})"
        )


class CandidateCatalog:
    """A queryable collection of candidate quality attributes."""

    def __init__(self, attributes: Iterable[CandidateAttribute]) -> None:
        self._by_name: dict[str, CandidateAttribute] = {}
        for attribute in attributes:
            if attribute.name in self._by_name:
                raise CatalogError(f"duplicate catalog entry {attribute.name!r}")
            self._by_name[attribute.name] = attribute

    def __len__(self) -> int:
        return len(self._by_name)

    def __iter__(self) -> Iterator[CandidateAttribute]:
        return iter(self._by_name.values())

    def __contains__(self, name: object) -> bool:
        return name in self._by_name

    def get(self, name: str) -> CandidateAttribute:
        """Look up one candidate by name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise CatalogError(
                f"catalog has no candidate attribute {name!r}"
            ) from None

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(sorted(self._by_name))

    def parameters(self) -> list[CandidateAttribute]:
        """Candidates whose default kind is subjective parameter."""
        return [a for a in self if a.kind is AttributeKind.PARAMETER]

    def indicators(self) -> list[CandidateAttribute]:
        """Candidates whose default kind is objective indicator."""
        return [a for a in self if a.kind is AttributeKind.INDICATOR]

    def by_category(self, category: str) -> list[CandidateAttribute]:
        """All candidates of one survey category."""
        return [a for a in self if a.category == category]

    def by_boundary(self, boundary: str) -> list[CandidateAttribute]:
        """All candidates of one boundary classification (§4)."""
        if boundary not in _BOUNDARIES:
            raise CatalogError(f"unknown boundary {boundary!r}")
        return [a for a in self if a.boundary == boundary]

    @property
    def categories(self) -> tuple[str, ...]:
        return tuple(sorted({a.category for a in self}))

    def related_to(self, name: str) -> list[CandidateAttribute]:
        """Candidates related to ``name`` (non-orthogonality, Premise 1.2).

        Relatedness is symmetric: a link recorded on either endpoint
        counts.
        """
        self.get(name)
        return [
            a
            for a in self
            if a.name != name and (name in a.related or a.name in self.get(name).related)
        ]

    def operationalizations_for(self, parameter_name: str) -> list[QualityIndicatorSpec]:
        """Suggested indicators for operationalizing one parameter (Step 3)."""
        candidate = self.get(parameter_name)
        return [
            QualityIndicatorSpec(
                ind_name,
                domain,
                measure=f"standard operationalization of {parameter_name}",
                doc=f"operationalizes the quality parameter {parameter_name!r}",
            )
            for ind_name, domain in candidate.operationalizations
        ]

    def suggest_for_keywords(self, *keywords: str) -> list[CandidateAttribute]:
        """Keyword search over names, categories, and docs (elicitation aid)."""
        lowered = [k.lower() for k in keywords]
        hits = []
        for attribute in self:
            haystack = " ".join(
                (attribute.name, attribute.category, attribute.doc)
            ).lower()
            if any(k in haystack for k in lowered):
                hits.append(attribute)
        return hits


_P = AttributeKind.PARAMETER
_I = AttributeKind.INDICATOR

#: The catalog entries.  Categories follow the survey's facet groups;
#: entries marked system/service/user reflect the §4 boundary discussion.
_DEFAULT_ENTRIES: tuple[CandidateAttribute, ...] = (
    # --- intrinsic data quality -------------------------------------------------
    CandidateAttribute(
        "accuracy", _P, "intrinsic", BOUNDARY_DATA,
        "The data reflects real-world conditions",
        related=("precision", "reliability", "freedom_from_error"),
        operationalizations=(("collection_method", "STR"), ("inspection", "STR"),
                             ("source", "STR")),
    ),
    CandidateAttribute(
        "precision", _P, "intrinsic", BOUNDARY_DATA,
        "Granularity/exactness of recorded values",
        related=("accuracy",),
        operationalizations=(("measurement_unit", "STR"), ("significant_digits", "INT")),
    ),
    CandidateAttribute(
        "reliability", _P, "intrinsic", BOUNDARY_DATA,
        "The data can be depended upon across uses",
        related=("accuracy", "consistency", "credibility"),
        operationalizations=(("inspection", "STR"), ("source", "STR")),
    ),
    CandidateAttribute(
        "freedom_from_error", _P, "intrinsic", BOUNDARY_DATA,
        "Absence of recording and processing errors",
        related=("accuracy",),
        operationalizations=(("inspection", "STR"), ("entry_method", "STR")),
    ),
    CandidateAttribute(
        "consistency", _P, "intrinsic", BOUNDARY_DATA,
        "Agreement of the data with itself and with related data",
        related=("reliability", "integrity"),
        operationalizations=(("validation_rule", "STR"),),
    ),
    CandidateAttribute(
        "integrity", _P, "intrinsic", BOUNDARY_DATA,
        "The data respects declared structural rules",
        related=("consistency",),
        operationalizations=(("validation_rule", "STR"),),
    ),
    # --- credibility / source ------------------------------------------------------
    CandidateAttribute(
        "credibility", _P, "believability", BOUNDARY_DATA,
        "The data (and its source) can be believed",
        related=("reputation", "objectivity", "source_credibility"),
        operationalizations=(("source", "STR"), ("analyst_name", "STR"),
                             ("collection_method", "STR")),
    ),
    CandidateAttribute(
        "source_credibility", _P, "believability", BOUNDARY_DATA,
        "Trustworthiness of the originating source",
        related=("credibility", "reputation"),
        operationalizations=(("source", "STR"),),
    ),
    CandidateAttribute(
        "reputation", _P, "believability", BOUNDARY_DATA,
        "Standing of the source among its users",
        related=("credibility",),
        operationalizations=(("source", "STR"),),
    ),
    CandidateAttribute(
        "objectivity", _P, "believability", BOUNDARY_DATA,
        "The data is unbiased and impartial",
        related=("credibility",),
        operationalizations=(("source", "STR"), ("collection_method", "STR")),
    ),
    CandidateAttribute(
        "believability", _P, "believability", BOUNDARY_DATA,
        "The data is regarded as true and credible",
        related=("credibility", "accuracy"),
        operationalizations=(("source", "STR"),),
    ),
    # --- time-related -------------------------------------------------------------------
    CandidateAttribute(
        "timeliness", _P, "time", BOUNDARY_DATA,
        "The data is sufficiently current for the use at hand",
        related=("currency", "volatility", "age"),
        operationalizations=(("age", "FLOAT"), ("creation_time", "DATE"),
                             ("update_frequency", "STR")),
    ),
    CandidateAttribute(
        "currency", _P, "time", BOUNDARY_DATA,
        "How recently the data was created or refreshed",
        related=("timeliness", "age"),
        operationalizations=(("creation_time", "DATE"), ("age", "FLOAT")),
    ),
    CandidateAttribute(
        "volatility", _P, "time", BOUNDARY_DATA,
        "How quickly the real-world value changes",
        related=("timeliness",),
        operationalizations=(("update_frequency", "STR"),),
    ),
    CandidateAttribute(
        "age", _I, "time", BOUNDARY_DATA,
        "Elapsed time since the datum was created (objective)",
        related=("timeliness", "currency"),
        operationalizations=(("age", "FLOAT"),),
    ),
    CandidateAttribute(
        "creation_time", _I, "time", BOUNDARY_DATA,
        "When the datum was created (objective)",
        related=("age",),
        operationalizations=(("creation_time", "DATE"),),
    ),
    # --- completeness / scope -------------------------------------------------------------
    CandidateAttribute(
        "completeness", _P, "scope", BOUNDARY_DATA,
        "All real-world states of interest are represented",
        related=("coverage",),
        operationalizations=(("population_method", "STR"), ("coverage_ratio", "FLOAT")),
    ),
    CandidateAttribute(
        "coverage", _P, "scope", BOUNDARY_DATA,
        "Breadth of the population the data spans",
        related=("completeness",),
        operationalizations=(("population_method", "STR"),),
    ),
    CandidateAttribute(
        "relevance", _P, "scope", BOUNDARY_DATA,
        "The data applies to the task at hand",
        related=("completeness", "value_added"),
        operationalizations=(("collection_purpose", "STR"),),
    ),
    CandidateAttribute(
        "level_of_detail", _P, "scope", BOUNDARY_DATA,
        "Appropriate granularity of representation",
        related=("precision",),
        operationalizations=(("aggregation_level", "STR"),),
    ),
    # --- interpretability / representation ---------------------------------------------------
    CandidateAttribute(
        "interpretability", _P, "representation", BOUNDARY_DATA,
        "Users can understand what the data means",
        related=("understandability", "clarity"),
        operationalizations=(("media", "STR"), ("language", "STR"),
                             ("measurement_unit", "STR")),
    ),
    CandidateAttribute(
        "understandability", _P, "representation", BOUNDARY_DATA,
        "The data is easily comprehended",
        related=("interpretability",),
        operationalizations=(("media", "STR"),),
    ),
    CandidateAttribute(
        "clarity", _P, "representation", BOUNDARY_DATA,
        "Unambiguous representation of values",
        related=("interpretability",),
        operationalizations=(("measurement_unit", "STR"),),
    ),
    CandidateAttribute(
        "conciseness", _P, "representation", BOUNDARY_DATA,
        "Compact representation without excess",
        related=("level_of_detail",),
    ),
    CandidateAttribute(
        "consistency_of_representation", _P, "representation", BOUNDARY_DATA,
        "The same things are represented the same way",
        related=("interpretability", "consistency"),
        operationalizations=(("format_standard", "STR"),),
    ),
    CandidateAttribute(
        "media", _I, "representation", BOUNDARY_DATA,
        "Stored format of documents (bitmap, ASCII, postscript)",
        operationalizations=(("media", "STR"),),
    ),
    # --- cost / value ------------------------------------------------------------------------------
    CandidateAttribute(
        "cost", _P, "value", BOUNDARY_DATA,
        "What acquiring or using the data costs the user",
        related=("value_added",),
        operationalizations=(("price", "FLOAT"), ("age", "FLOAT")),
    ),
    CandidateAttribute(
        "value_added", _P, "value", BOUNDARY_DATA,
        "The data provides competitive or operational advantage",
        related=("cost", "relevance"),
        operationalizations=(("collection_purpose", "STR"),),
    ),
    # --- accessibility / system (boundary: information system, §4) -------------------------------------
    CandidateAttribute(
        "accessibility", _P, "accessibility", BOUNDARY_SYSTEM,
        "The data can be obtained when needed",
        related=("availability", "retrieval_time"),
        operationalizations=(("access_path", "STR"),),
    ),
    CandidateAttribute(
        "availability", _P, "accessibility", BOUNDARY_SYSTEM,
        "The system holding the data is up and reachable",
        related=("accessibility",),
    ),
    CandidateAttribute(
        "retrieval_time", _P, "accessibility", BOUNDARY_SYSTEM,
        "How long a query takes to answer",
        related=("accessibility",),
    ),
    CandidateAttribute(
        "resolution_of_graphics", _P, "accessibility", BOUNDARY_SYSTEM,
        "Display fidelity of graphical data (a system property, §4)",
        related=("interpretability",),
    ),
    CandidateAttribute(
        "security", _P, "accessibility", BOUNDARY_SYSTEM,
        "The data is protected from unauthorized access",
        related=("privacy",),
    ),
    CandidateAttribute(
        "privacy", _P, "accessibility", BOUNDARY_SYSTEM,
        "Personal information is appropriately shielded",
        related=("security",),
    ),
    # --- service (boundary: information service, §4) -----------------------------------------------------
    CandidateAttribute(
        "clear_data_responsibility", _P, "service", BOUNDARY_SERVICE,
        "It is clear who is accountable for the data (a service property, §4)",
        related=("credibility",),
        operationalizations=(("steward", "STR"),),
    ),
    CandidateAttribute(
        "support", _P, "service", BOUNDARY_SERVICE,
        "Help is available for using and interpreting the data",
    ),
    CandidateAttribute(
        "flexibility", _P, "service", BOUNDARY_SERVICE,
        "The data can be adapted to new needs",
    ),
    # --- user (boundary: information user, §4) --------------------------------------------------------------
    CandidateAttribute(
        "past_experience", _P, "user", BOUNDARY_USER,
        "The user's prior experience with this data (a user property, §4)",
        related=("credibility",),
    ),
    CandidateAttribute(
        "familiarity", _P, "user", BOUNDARY_USER,
        "How well the user knows the data's conventions",
        related=("past_experience", "interpretability"),
    ),
    # --- objective manufacturing-process indicators -----------------------------------------------------------
    CandidateAttribute(
        "source", _I, "manufacturing", BOUNDARY_DATA,
        "Who/what supplied the datum",
        operationalizations=(("source", "STR"),),
    ),
    CandidateAttribute(
        "collection_method", _I, "manufacturing", BOUNDARY_DATA,
        "How the datum was captured (phone, scanner, service, ...)",
        operationalizations=(("collection_method", "STR"),),
    ),
    CandidateAttribute(
        "entry_method", _I, "manufacturing", BOUNDARY_DATA,
        "How the datum was keyed/recorded into the database",
        operationalizations=(("entry_method", "STR"),),
    ),
    CandidateAttribute(
        "analyst_name", _I, "manufacturing", BOUNDARY_DATA,
        "Analyst credited for a report (credibility evidence)",
        operationalizations=(("analyst_name", "STR"),),
    ),
    CandidateAttribute(
        "inspection", _P, "manufacturing", BOUNDARY_DATA,
        "Verification/certification the data must undergo (the paper's "
        "special '√ inspection' requirement)",
        related=("accuracy", "reliability"),
        operationalizations=(("inspection", "STR"),),
    ),
)


def default_catalog() -> CandidateCatalog:
    """The built-in Appendix-A candidate attribute catalog."""
    return CandidateCatalog(_DEFAULT_ENTRIES)
