"""Terms and definitions of data quality management (paper §1.3).

The paper defines a small vocabulary that everything else builds on:

- a **quality parameter** is a qualitative/subjective dimension by which
  a user evaluates data quality (source credibility, timeliness);
- a **quality indicator** is an objective data dimension providing
  information about the data's manufacturing process (source, creation
  time, collection method);
- a **quality attribute** is the collective term for both (Figure 1);
- a **quality indicator value** is a measured characteristic of stored
  data (source = "Wall Street Journal") — implemented by
  :class:`repro.tagging.indicators.IndicatorValue`;
- a **quality parameter value** is determined from underlying indicator
  values by user-defined functions — implemented by
  :class:`repro.core.mapping.ParameterMapping`;
- **data quality requirements** specify the indicators to be tagged so
  users can retrieve data of specific quality at query time.
"""

from __future__ import annotations

import enum
from typing import Any, Optional, Sequence

from repro.errors import MethodologyError
from repro.relational.types import Domain, domain_by_name
from repro.tagging.indicators import IndicatorDefinition


class AttributeKind(enum.Enum):
    """The two kinds of quality attribute (Figure 1)."""

    PARAMETER = "parameter"  # subjective
    INDICATOR = "indicator"  # objective

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class QualityParameter:
    """A subjective dimension by which a user evaluates data quality.

    >>> timeliness = QualityParameter(
    ...     "timeliness", doc="How current the data is for the task at hand")
    >>> timeliness.kind
    <AttributeKind.PARAMETER: 'parameter'>
    """

    __slots__ = ("name", "doc")

    kind = AttributeKind.PARAMETER

    def __init__(self, name: str, doc: str = "") -> None:
        if not name:
            raise MethodologyError("quality parameter must have a name")
        self.name = name
        self.doc = doc

    def __repr__(self) -> str:
        return f"QualityParameter({self.name!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, QualityParameter) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("QualityParameter", self.name))


class QualityIndicatorSpec:
    """An objective, taggable dimension of the data manufacturing process.

    A specification (name + value domain + measurement note) rather than
    a measured value; at the tagging layer it materializes as an
    :class:`~repro.tagging.indicators.IndicatorDefinition` via
    :meth:`to_definition`.

    Parameters
    ----------
    name:
        Indicator name (e.g. ``"creation_time"``).
    domain:
        Domain of measured values (default STR).
    measure:
        How the indicator value is generated — the paper requires "a
        well-defined and accepted measure" (§1.3 footnote 1).
    doc:
        What the indicator records.
    """

    __slots__ = ("name", "domain", "measure", "doc")

    kind = AttributeKind.INDICATOR

    def __init__(
        self,
        name: str,
        domain: Domain | str = "STR",
        measure: str = "",
        doc: str = "",
    ) -> None:
        if not name:
            raise MethodologyError("quality indicator must have a name")
        self.name = name
        self.domain = domain_by_name(domain) if isinstance(domain, str) else domain
        self.measure = measure
        self.doc = doc

    def to_definition(self) -> IndicatorDefinition:
        """The tagging-layer definition of this indicator."""
        return IndicatorDefinition(self.name, self.domain, self.doc)

    def __repr__(self) -> str:
        return f"QualityIndicatorSpec({self.name!r}: {self.domain.name})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, QualityIndicatorSpec)
            and other.name == self.name
            and other.domain == self.domain
        )

    def __hash__(self) -> int:
        return hash(("QualityIndicatorSpec", self.name, self.domain))


#: The collective term (Figure 1): either kind of quality attribute.
QualityAttribute = QualityParameter | QualityIndicatorSpec


class QualityRequirement:
    """One entry of the data quality requirements (§1.3).

    Specifies that an indicator must be tagged (or otherwise documented)
    on a target so that, at query time, users can retrieve data within
    an acceptable range of indicator values.  Acceptability cut-offs are
    deliberately *not* part of the requirement — the methodology defers
    them to query time (§3, "the methodology does not require the design
    team to define cut-off points").

    Parameters
    ----------
    target:
        Annotation-target path in the ER schema (see
        :meth:`repro.er.model.ERSchema.annotation_targets`).
    indicator:
        The indicator to be tagged at that target.
    rationale:
        Which quality parameter(s) the indicator operationalizes, and
        why — carried into the specification document.
    mandatory:
        If True, every cell of the target must carry the tag (maps to
        the tag schema's *required* set); if False, tagging is allowed
        but optional.
    """

    __slots__ = ("target", "indicator", "rationale", "mandatory")

    def __init__(
        self,
        target: Sequence[str],
        indicator: QualityIndicatorSpec,
        rationale: str = "",
        mandatory: bool = True,
    ) -> None:
        self.target = tuple(target)
        self.indicator = indicator
        self.rationale = rationale
        self.mandatory = mandatory

    def describe(self) -> str:
        """One-line human-readable form."""
        strength = "must" if self.mandatory else "may"
        where = ".".join(self.target)
        return (
            f"{where} {strength} be tagged with {self.indicator.name} "
            f"({self.indicator.domain.name})"
            + (f" — {self.rationale}" if self.rationale else "")
        )

    def __repr__(self) -> str:
        return f"QualityRequirement({self.describe()})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, QualityRequirement)
            and other.target == self.target
            and other.indicator == self.indicator
            and other.mandatory == self.mandatory
        )

    def __hash__(self) -> int:
        return hash(
            ("QualityRequirement", self.target, self.indicator, self.mandatory)
        )
