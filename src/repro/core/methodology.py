"""Pipeline orchestration for the four-step methodology (Figure 2).

:class:`DataQualityModeling` wires the steps together and keeps every
intermediate artifact, because the paper requires each view to be "part
of the quality requirements specification documentation".
:class:`DesignSession` records the design team's decisions with
timestamps-free sequence numbers (deterministic runs), giving the audit
trail of the *design process* itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.core.catalog import CandidateCatalog, default_catalog
from repro.core.integration import Refinement
from repro.core.steps import (
    Step1ApplicationView,
    Step2QualityParameters,
    Step3QualityIndicators,
    Step4ViewIntegration,
)
from repro.core.terminology import QualityIndicatorSpec
from repro.core.views import (
    ApplicationView,
    ParameterView,
    QualitySchema,
    QualityView,
)
from repro.er.model import ERSchema
from repro.errors import StepOrderError


@dataclass(frozen=True)
class Decision:
    """One recorded design decision."""

    sequence: int
    step: str
    action: str
    detail: str


class DesignSession:
    """A decision log for one design team's pass through the methodology."""

    def __init__(self, team: str = "design team") -> None:
        self.team = team
        self._decisions: list[Decision] = []

    def record(self, step: str, action: str, detail: str = "") -> Decision:
        """Append one decision to the log."""
        decision = Decision(len(self._decisions) + 1, step, action, detail)
        self._decisions.append(decision)
        return decision

    @property
    def decisions(self) -> tuple[Decision, ...]:
        return tuple(self._decisions)

    def render(self) -> str:
        """The decision log as numbered text lines."""
        lines = [f"Design session: {self.team}"]
        for d in self._decisions:
            detail = f" — {d.detail}" if d.detail else ""
            lines.append(f"  {d.sequence:>3}. [{d.step}] {d.action}{detail}")
        return "\n".join(lines)


class DataQualityModeling:
    """The end-to-end methodology pipeline.

    Typical use::

        modeling = DataQualityModeling()
        app_view = modeling.step1(er_schema, "requirements narrative")
        param_view = modeling.step2(app_view, [
            (("company_stock", "share_price"), "timeliness", "prices go stale"),
        ])
        quality_view = modeling.step3(param_view)
        schema = modeling.step4([quality_view])
        print(modeling.specification())
    """

    def __init__(
        self,
        catalog: Optional[CandidateCatalog] = None,
        session: Optional[DesignSession] = None,
    ) -> None:
        self.catalog = catalog or default_catalog()
        self.session = session or DesignSession()
        self._step1 = Step1ApplicationView()
        self._step2 = Step2QualityParameters(self.catalog)
        self._step3 = Step3QualityIndicators(self.catalog)
        self._step4 = Step4ViewIntegration()
        self.application_view: Optional[ApplicationView] = None
        self.parameter_views: list[ParameterView] = []
        self.quality_views: list[QualityView] = []
        self.quality_schema: Optional[QualitySchema] = None

    # -- steps ----------------------------------------------------------------

    def step1(
        self,
        er_schema: ERSchema,
        requirements_doc: str = "",
        require_keys: bool = True,
    ) -> ApplicationView:
        """Step 1: establish the application view."""
        self.application_view = self._step1.run(
            er_schema, requirements_doc, require_keys=require_keys
        )
        self.session.record(
            "step1",
            "established application view",
            f"ER schema {er_schema.name!r}: "
            f"{len(er_schema.entities)} entities, "
            f"{len(er_schema.relationships)} relationships",
        )
        return self.application_view

    def step2(
        self,
        application_view: Optional[ApplicationView] = None,
        requests: Iterable[tuple[Sequence[str], str, str]] = (),
    ) -> ParameterView:
        """Step 2: determine subjective quality parameters."""
        view = application_view or self.application_view
        if view is None:
            raise StepOrderError("Step 2 requires an application view (run Step 1)")
        parameter_view = self._step2.run(view, requests)
        self.parameter_views.append(parameter_view)
        for annotation in parameter_view.annotations:
            self.session.record(
                "step2", "attached quality parameter", annotation.describe()
            )
        return parameter_view

    def step3(
        self,
        parameter_view: ParameterView,
        decisions: Optional[
            dict[tuple[tuple[str, ...], str], list[QualityIndicatorSpec]]
        ] = None,
        auto: bool = True,
    ) -> QualityView:
        """Step 3: operationalize parameters into quality indicators."""
        quality_view = self._step3.run(parameter_view, decisions, auto=auto)
        self.quality_views.append(quality_view)
        for annotation in quality_view.annotations:
            self.session.record(
                "step3", "operationalized into indicator", annotation.describe()
            )
        return quality_view

    def step4(
        self,
        quality_views: Optional[Sequence[QualityView]] = None,
        refinements: Sequence[Refinement] = (),
    ) -> QualitySchema:
        """Step 4: integrate quality views into the quality schema."""
        views = list(quality_views) if quality_views is not None else self.quality_views
        if not views:
            raise StepOrderError("Step 4 requires at least one quality view")
        self.quality_schema = self._step4.run(views, refinements=refinements)
        for note in self.quality_schema.integration_notes:
            self.session.record("step4", "integration decision", note)
        return self.quality_schema

    def run_all(
        self,
        er_schema: ERSchema,
        requirements_doc: str,
        parameter_requests: Iterable[tuple[Sequence[str], str, str]],
        indicator_decisions: Optional[
            dict[tuple[tuple[str, ...], str], list[QualityIndicatorSpec]]
        ] = None,
        refinements: Sequence[Refinement] = (),
    ) -> QualitySchema:
        """Run Steps 1-4 in one call (single design-team scenario)."""
        application_view = self.step1(er_schema, requirements_doc)
        parameter_view = self.step2(application_view, parameter_requests)
        quality_view = self.step3(parameter_view, indicator_decisions)
        return self.step4([quality_view], refinements=refinements)

    # -- documentation ---------------------------------------------------------------

    def specification(self) -> str:
        """The quality-requirements specification document (all artifacts)."""
        from repro.core.specification import build_specification

        if self.quality_schema is None:
            raise StepOrderError(
                "specification requires the integrated quality schema (run Step 4)"
            )
        return build_specification(
            self.quality_schema,
            parameter_views=self.parameter_views,
            session=self.session,
        )
