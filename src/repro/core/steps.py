"""The four steps of the data quality modeling methodology (Figure 2).

Each step is a small class with ``input`` / ``output`` documented in the
paper's terms and a ``run`` method performing the transformation.  Steps
validate their inputs and record human decisions so that the resulting
artifacts are auditable (the "quality requirements specification
documentation" the paper asks for at each step).
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence

from repro.core.catalog import CandidateCatalog, default_catalog
from repro.core.terminology import (
    AttributeKind,
    QualityIndicatorSpec,
    QualityParameter,
)
from repro.core.views import (
    ApplicationView,
    INSPECTION_PARAMETER,
    IndicatorAnnotation,
    ParameterAnnotation,
    ParameterView,
    QualityView,
)
from repro.er.model import ERSchema
from repro.er.validation import require_valid
from repro.errors import MethodologyError, StepOrderError


class Step1ApplicationView:
    """Step 1: establish the application view.

    Input: application requirements (an ER schema built by traditional
    data modeling, plus the requirements narrative).
    Output: the :class:`ApplicationView`.

    The paper treats this step as classical data modeling ([17][23]) and
    does not elaborate it; we validate well-formedness and wrap the
    artifact.
    """

    def run(
        self,
        er_schema: ERSchema,
        requirements_doc: str = "",
        require_keys: bool = True,
    ) -> ApplicationView:
        """Validate the ER schema and produce the application view."""
        require_valid(er_schema, require_keys=require_keys)
        return ApplicationView(er_schema, requirements_doc)


class Step2QualityParameters:
    """Step 2: determine (subjective) quality parameters.

    Input: application view + application quality requirements +
    candidate quality attributes (Appendix A catalog).
    Output: the :class:`ParameterView`.

    The design team walks the application view and, for each component,
    decides which quality parameters matter.  Requests name either a
    catalog candidate or a team-defined parameter ("the design team may
    choose to consider additional parameters not listed").
    """

    def __init__(self, catalog: Optional[CandidateCatalog] = None) -> None:
        self.catalog = catalog or default_catalog()

    def suggest(self, *keywords: str) -> list[str]:
        """Catalog names matching elicitation keywords (thinking aid)."""
        return [a.name for a in self.catalog.suggest_for_keywords(*keywords)]

    def resolve_parameter(self, name: str, doc: str = "") -> QualityParameter:
        """A parameter object for ``name``: catalog-backed if known."""
        if name == INSPECTION_PARAMETER.name:
            return INSPECTION_PARAMETER
        if name in self.catalog:
            return self.catalog.get(name).as_parameter()
        if not doc:
            # Team-defined parameter without documentation: allowed but
            # flagged in the view's rationale by the caller if desired.
            return QualityParameter(name)
        return QualityParameter(name, doc)

    def run(
        self,
        application_view: ApplicationView,
        requests: Iterable[tuple[Sequence[str], str, str]],
    ) -> ParameterView:
        """Attach requested parameters to the application view.

        ``requests`` is an iterable of ``(target, parameter_name,
        rationale)`` triples.  The special parameter name
        ``"inspection"`` produces the paper's "√ inspection" annotation.
        """
        view = ParameterView(application_view)
        for target, parameter_name, rationale in requests:
            parameter = self.resolve_parameter(parameter_name)
            view.add(ParameterAnnotation(target, parameter, rationale))
        return view


class Step3QualityIndicators:
    """Step 3: determine (objective) quality indicators.

    Input: the parameter view.
    Output: the :class:`QualityView` (indicators replace parameters).

    Each subjective parameter is *operationalized* into measurable
    quality indicators.  Operationalization decisions come from three
    places, in priority order:

    1. explicit ``decisions`` supplied by the design team
       (``(target, parameter_name) → [indicator specs]``);
    2. a parameter that is already "sufficiently objective" — its
       catalog entry's kind is INDICATOR — remains, converted in place
       (the paper's *age* example);
    3. with ``auto=True``, the catalog's standard operationalizations
       for the parameter.

    A parameter with no decision and no catalog suggestion raises, so
    unexamined quality requirements cannot silently vanish.
    """

    def __init__(self, catalog: Optional[CandidateCatalog] = None) -> None:
        self.catalog = catalog or default_catalog()

    def _operationalize(
        self,
        annotation: ParameterAnnotation,
        decisions: dict[tuple[tuple[str, ...], str], list[QualityIndicatorSpec]],
        auto: bool,
    ) -> list[QualityIndicatorSpec]:
        key = (annotation.target, annotation.parameter.name)
        if key in decisions:
            chosen = decisions[key]
            if not chosen:
                raise MethodologyError(
                    f"empty operationalization decision for "
                    f"{annotation.describe()}"
                )
            return list(chosen)
        name = annotation.parameter.name
        if name in self.catalog:
            candidate = self.catalog.get(name)
            if candidate.kind is AttributeKind.INDICATOR:
                # Already objective: remains as an indicator (paper: "if
                # age had been defined as a quality parameter, and is
                # deemed objective, it can remain").
                domain = (
                    candidate.operationalizations[0][1]
                    if candidate.operationalizations
                    else "STR"
                )
                return [candidate.as_indicator(domain)]
            if auto and candidate.operationalizations:
                return self.catalog.operationalizations_for(name)
        raise MethodologyError(
            f"no operationalization for parameter {name!r} at target "
            f"{'.'.join(annotation.target)!r}: supply a decision or enable "
            f"auto mode with a catalog-known parameter"
        )

    def run(
        self,
        parameter_view: ParameterView,
        decisions: Optional[
            dict[tuple[tuple[str, ...], str], list[QualityIndicatorSpec]]
        ] = None,
        auto: bool = True,
    ) -> QualityView:
        """Operationalize every parameter annotation into indicators."""
        if not parameter_view.annotations:
            raise StepOrderError(
                "Step 3 requires a parameter view with at least one "
                "parameter annotation (run Step 2 first)"
            )
        decisions = decisions or {}
        view = QualityView(
            parameter_view.application_view, parameter_view=parameter_view
        )
        for annotation in parameter_view.annotations:
            for indicator in self._operationalize(annotation, decisions, auto):
                candidate = IndicatorAnnotation(
                    annotation.target,
                    indicator,
                    derived_from=(annotation.parameter.name,),
                    rationale=annotation.rationale,
                )
                existing = next(
                    (a for a in view.annotations if a == candidate), None
                )
                if existing is None:
                    view.add(candidate)
                else:
                    # Same indicator requested by several parameters at
                    # the same target: merge the provenance.
                    merged = IndicatorAnnotation(
                        existing.target,
                        existing.indicator,
                        derived_from=tuple(
                            dict.fromkeys(
                                existing.derived_from + candidate.derived_from
                            )
                        ),
                        rationale=existing.rationale,
                        mandatory=existing.mandatory,
                    )
                    view.annotations[view.annotations.index(existing)] = merged
        return view


class Step4ViewIntegration:
    """Step 4: perform quality view integration.

    Input: one or more quality views.
    Output: the integrated :class:`~repro.core.views.QualitySchema`.

    Thin wrapper around :func:`repro.core.integration.integrate_views`,
    kept as a step class so the pipeline reads as the paper's Figure 2.
    """

    def run(
        self,
        quality_views: Sequence[QualityView],
        refinements: Sequence["Refinement"] = (),
    ):
        """Integrate the views (see :mod:`repro.core.integration`)."""
        from repro.core.integration import integrate_views

        return integrate_views(quality_views, refinements=refinements)


# Re-exported for typing convenience; defined in integration.py.
from repro.core.integration import Refinement  # noqa: E402  (cycle-free tail import)
