"""The methodology's view artifacts (Figures 3, 4, 5 and the schema).

Each step of the methodology transforms one artifact into the next:

- :class:`ApplicationView` (Step 1 output; Figure 3) — an ER schema plus
  the documented application requirements;
- :class:`ParameterView` (Step 2 output; Figure 4) — the application
  view with subjective :class:`ParameterAnnotation` "clouds" attached;
- :class:`QualityView` (Step 3 output; Figure 5) — the application view
  with objective :class:`IndicatorAnnotation` "dotted rectangles"
  replacing the parameters;
- :class:`QualitySchema` (Step 4 output) — the integrated quality view
  plus the machine-usable products: quality requirements and per-entity
  tag schemas.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional, Sequence

from repro.core.terminology import (
    QualityIndicatorSpec,
    QualityParameter,
    QualityRequirement,
)
from repro.er.diagram import (
    Annotation,
    STYLE_CLOUD,
    STYLE_DOTTED,
    STYLE_INSPECTION,
    render_er_diagram,
)
from repro.er.model import ERSchema
from repro.errors import MethodologyError
from repro.tagging.indicators import TagSchema

#: Sentinel parameter used for the paper's "√ inspection" requirement.
INSPECTION_PARAMETER = QualityParameter(
    "inspection",
    doc="Data verification requirement (the paper's special '√ inspection' symbol)",
)


class ParameterAnnotation:
    """One subjective quality parameter attached to an ER target."""

    __slots__ = ("target", "parameter", "rationale")

    def __init__(
        self,
        target: Sequence[str],
        parameter: QualityParameter,
        rationale: str = "",
    ) -> None:
        self.target = tuple(target)
        self.parameter = parameter
        self.rationale = rationale

    @property
    def is_inspection(self) -> bool:
        """True if this is an inspection ("√") requirement."""
        return self.parameter == INSPECTION_PARAMETER

    def describe(self) -> str:
        where = ".".join(self.target)
        text = f"{where}: ({self.parameter.name})"
        if self.rationale:
            text += f" — {self.rationale}"
        return text

    def __repr__(self) -> str:
        return f"ParameterAnnotation({self.describe()})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ParameterAnnotation)
            and other.target == self.target
            and other.parameter == self.parameter
        )

    def __hash__(self) -> int:
        return hash(("ParameterAnnotation", self.target, self.parameter))


class IndicatorAnnotation:
    """One objective quality indicator attached to an ER target.

    ``derived_from`` names the parameter(s) the indicator
    operationalizes, preserving the Step 2 → Step 3 traceability the
    specification document reports.
    """

    __slots__ = ("target", "indicator", "derived_from", "rationale", "mandatory")

    def __init__(
        self,
        target: Sequence[str],
        indicator: QualityIndicatorSpec,
        derived_from: Sequence[str] = (),
        rationale: str = "",
        mandatory: bool = True,
    ) -> None:
        self.target = tuple(target)
        self.indicator = indicator
        self.derived_from = tuple(derived_from)
        self.rationale = rationale
        self.mandatory = mandatory

    def to_requirement(self) -> QualityRequirement:
        """The data quality requirement this annotation induces."""
        parts = []
        if self.derived_from:
            parts.append(f"operationalizes {', '.join(self.derived_from)}")
        if self.rationale:
            parts.append(self.rationale)
        return QualityRequirement(
            self.target, self.indicator, "; ".join(parts), self.mandatory
        )

    def describe(self) -> str:
        where = ".".join(self.target)
        text = f"{where}: [.{self.indicator.name}.]"
        if self.derived_from:
            text += f" ← {{{', '.join(self.derived_from)}}}"
        if self.rationale:
            text += f" — {self.rationale}"
        return text

    def __repr__(self) -> str:
        return f"IndicatorAnnotation({self.describe()})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, IndicatorAnnotation)
            and other.target == self.target
            and other.indicator == self.indicator
        )

    def __hash__(self) -> int:
        return hash(("IndicatorAnnotation", self.target, self.indicator))


class ApplicationView:
    """Step 1 output: the traditional data-modeling artifact (Figure 3)."""

    def __init__(
        self,
        er_schema: ERSchema,
        requirements_doc: str = "",
    ) -> None:
        self.er_schema = er_schema
        self.requirements_doc = requirements_doc

    @property
    def name(self) -> str:
        return self.er_schema.name

    def render(self, title: Optional[str] = None) -> str:
        """ASCII diagram in the style of Figure 3."""
        return render_er_diagram(
            self.er_schema,
            title=title or f"Application view: {self.name}",
        )

    def __repr__(self) -> str:
        return f"ApplicationView({self.name!r})"


class ParameterView:
    """Step 2 output: application view + quality parameters (Figure 4)."""

    def __init__(
        self,
        application_view: ApplicationView,
        annotations: Iterable[ParameterAnnotation] = (),
    ) -> None:
        self.application_view = application_view
        self.annotations: list[ParameterAnnotation] = []
        for annotation in annotations:
            self.add(annotation)

    @property
    def er_schema(self) -> ERSchema:
        return self.application_view.er_schema

    @property
    def name(self) -> str:
        return self.application_view.name

    def add(self, annotation: ParameterAnnotation) -> ParameterAnnotation:
        """Attach a parameter annotation (target must exist in the schema)."""
        self.er_schema.resolve_target(annotation.target)
        if annotation in self.annotations:
            raise MethodologyError(
                f"duplicate parameter annotation: {annotation.describe()}"
            )
        self.annotations.append(annotation)
        return annotation

    def parameters_at(self, target: Sequence[str]) -> list[QualityParameter]:
        """All parameters attached to one target."""
        path = tuple(target)
        return [a.parameter for a in self.annotations if a.target == path]

    def all_parameters(self) -> list[QualityParameter]:
        """Distinct parameters used anywhere in the view."""
        seen: dict[str, QualityParameter] = {}
        for annotation in self.annotations:
            seen.setdefault(annotation.parameter.name, annotation.parameter)
        return list(seen.values())

    def render(self, title: Optional[str] = None) -> str:
        """ASCII diagram in the style of Figure 4 (parameters in clouds)."""
        markers = [
            Annotation(
                a.target,
                a.parameter.name if not a.is_inspection else "inspection",
                STYLE_INSPECTION if a.is_inspection else STYLE_CLOUD,
            )
            for a in self.annotations
        ]
        return render_er_diagram(
            self.er_schema,
            markers,
            title=title or f"Parameter view: {self.name}",
            legend=True,
        )

    def __repr__(self) -> str:
        return f"ParameterView({self.name!r}, {len(self.annotations)} annotations)"


class QualityView:
    """Step 3 output: application view + quality indicators (Figure 5)."""

    def __init__(
        self,
        application_view: ApplicationView,
        annotations: Iterable[IndicatorAnnotation] = (),
        parameter_view: Optional[ParameterView] = None,
    ) -> None:
        self.application_view = application_view
        self.parameter_view = parameter_view
        self.annotations: list[IndicatorAnnotation] = []
        for annotation in annotations:
            self.add(annotation)

    @property
    def er_schema(self) -> ERSchema:
        return self.application_view.er_schema

    @property
    def name(self) -> str:
        return self.application_view.name

    def add(self, annotation: IndicatorAnnotation) -> IndicatorAnnotation:
        """Attach an indicator annotation (target must exist)."""
        self.er_schema.resolve_target(annotation.target)
        if annotation in self.annotations:
            raise MethodologyError(
                f"duplicate indicator annotation: {annotation.describe()}"
            )
        self.annotations.append(annotation)
        return annotation

    def indicators_at(self, target: Sequence[str]) -> list[QualityIndicatorSpec]:
        """All indicators attached to one target."""
        path = tuple(target)
        return [a.indicator for a in self.annotations if a.target == path]

    def all_indicators(self) -> list[QualityIndicatorSpec]:
        """Distinct indicator specs used anywhere in the view."""
        seen: dict[str, QualityIndicatorSpec] = {}
        for annotation in self.annotations:
            seen.setdefault(annotation.indicator.name, annotation.indicator)
        return list(seen.values())

    def requirements(self) -> list[QualityRequirement]:
        """The quality requirements induced by the annotations."""
        return [a.to_requirement() for a in self.annotations]

    def render(self, title: Optional[str] = None) -> str:
        """ASCII diagram in the style of Figure 5 (dotted indicators)."""
        markers = [
            Annotation(a.target, a.indicator.name, STYLE_DOTTED)
            for a in self.annotations
        ]
        return render_er_diagram(
            self.er_schema,
            markers,
            title=title or f"Quality view: {self.name}",
            legend=True,
        )

    def __repr__(self) -> str:
        return f"QualityView({self.name!r}, {len(self.annotations)} annotations)"


class QualitySchema:
    """Step 4 output: the integrated quality schema.

    Carries the refined application view, the consolidated indicator
    annotations, and the integration decisions (for the specification
    document).  Its machine-usable products are
    :meth:`requirements` and :meth:`tag_schema_for`.
    """

    def __init__(
        self,
        application_view: ApplicationView,
        annotations: Iterable[IndicatorAnnotation] = (),
        component_views: Sequence[QualityView] = (),
        integration_notes: Sequence[str] = (),
    ) -> None:
        self.application_view = application_view
        self.annotations: list[IndicatorAnnotation] = []
        for annotation in annotations:
            self.application_view.er_schema.resolve_target(annotation.target)
            self.annotations.append(annotation)
        self.component_views = tuple(component_views)
        self.integration_notes = list(integration_notes)

    @property
    def er_schema(self) -> ERSchema:
        return self.application_view.er_schema

    @property
    def name(self) -> str:
        return self.application_view.name

    def requirements(self) -> list[QualityRequirement]:
        """The consolidated data quality requirements."""
        return [a.to_requirement() for a in self.annotations]

    def all_indicators(self) -> list[QualityIndicatorSpec]:
        """Distinct indicator specs in the integrated schema."""
        seen: dict[str, QualityIndicatorSpec] = {}
        for annotation in self.annotations:
            seen.setdefault(annotation.indicator.name, annotation.indicator)
        return list(seen.values())

    def annotations_for_owner(self, owner: str) -> list[IndicatorAnnotation]:
        """Annotations whose target lives under one entity/relationship."""
        return [a for a in self.annotations if a.target and a.target[0] == owner]

    def tag_schema_for(self, owner: str) -> TagSchema:
        """Derive the tag schema for one entity/relationship's relation.

        Attribute-level annotations become per-column indicator
        requirements; owner-level annotations apply to every attribute
        of the owner (the whole entity's data carries the tag).
        """
        kind, _ = self.er_schema.resolve_target((owner,))
        if kind == "entity":
            columns = list(self.er_schema.entity(owner).attribute_names)
        else:
            columns = list(self.er_schema.relationship(owner).attribute_names)

        required: dict[str, set[str]] = {}
        allowed: dict[str, set[str]] = {}
        definitions: dict[str, Any] = {}
        for annotation in self.annotations_for_owner(owner):
            definition = annotation.indicator.to_definition()
            existing = definitions.get(definition.name)
            if existing is not None and existing != definition:
                raise MethodologyError(
                    f"indicator {definition.name!r} has conflicting "
                    f"definitions in the quality schema"
                )
            definitions[definition.name] = definition
            if len(annotation.target) == 2:
                columns_hit = [annotation.target[1]]
            else:
                columns_hit = columns
            bucket = required if annotation.mandatory else allowed
            for column in columns_hit:
                bucket.setdefault(column, set()).add(definition.name)
        return TagSchema(
            indicators=list(definitions.values()),
            required={c: sorted(n) for c, n in required.items()},
            allowed={c: sorted(n) for c, n in allowed.items()},
        )

    def render(self, title: Optional[str] = None) -> str:
        """ASCII diagram of the integrated schema."""
        markers = [
            Annotation(a.target, a.indicator.name, STYLE_DOTTED)
            for a in self.annotations
        ]
        return render_er_diagram(
            self.er_schema,
            markers,
            title=title or f"Quality schema: {self.name}",
            legend=True,
        )

    def __repr__(self) -> str:
        return (
            f"QualitySchema({self.name!r}, {len(self.annotations)} annotations, "
            f"{len(self.component_views)} component views)"
        )
