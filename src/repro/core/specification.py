"""The quality-requirements specification document generator.

The paper requires each methodology step's output to be "included as
part of the quality requirements specification documentation".
:func:`build_specification` assembles all artifacts into one
deterministic text document: application view, parameter view(s),
quality view(s), the integrated quality schema, the induced quality
requirements, derived tag schemas, and the design-session decision log.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.views import ParameterView, QualitySchema


def _section(title: str, body: str) -> str:
    bar = "-" * len(title)
    return f"{title}\n{bar}\n{body}"


def build_specification(
    quality_schema: QualitySchema,
    parameter_views: Sequence[ParameterView] = (),
    session: Optional["DesignSession"] = None,  # noqa: F821 - doc type
) -> str:
    """Assemble the full specification document as text."""
    parts: list[str] = []
    name = quality_schema.name
    header = f"DATA QUALITY REQUIREMENTS SPECIFICATION: {name}"
    parts.append(f"{header}\n{'=' * len(header)}")

    if quality_schema.application_view.requirements_doc:
        parts.append(
            _section(
                "Application requirements",
                quality_schema.application_view.requirements_doc,
            )
        )

    parts.append(
        _section(
            "Application view (Step 1)",
            quality_schema.application_view.render(title=f"{name}: application view"),
        )
    )

    for i, parameter_view in enumerate(parameter_views, start=1):
        parts.append(
            _section(
                f"Parameter view {i} (Step 2)",
                parameter_view.render(title=f"{name}: parameter view {i}"),
            )
        )

    for i, quality_view in enumerate(quality_schema.component_views, start=1):
        parts.append(
            _section(
                f"Quality view {i} (Step 3)",
                quality_view.render(title=f"{name}: quality view {i}"),
            )
        )

    parts.append(
        _section(
            "Integrated quality schema (Step 4)",
            quality_schema.render(title=f"{name}: integrated quality schema"),
        )
    )

    if quality_schema.integration_notes:
        notes = "\n".join(f"- {note}" for note in quality_schema.integration_notes)
        parts.append(_section("Integration decisions", notes))

    requirements = quality_schema.requirements()
    if requirements:
        listing = "\n".join(f"- {r.describe()}" for r in requirements)
        parts.append(_section("Data quality requirements", listing))

    tag_sections: list[str] = []
    owners = [e.name for e in quality_schema.er_schema.entities] + [
        r.name for r in quality_schema.er_schema.relationships
    ]
    for owner in owners:
        tag_schema = quality_schema.tag_schema_for(owner)
        if not tag_schema.tagged_columns:
            continue
        lines = [f"{owner}:"]
        for column in tag_schema.tagged_columns:
            required = sorted(tag_schema.required_for(column))
            optional = sorted(tag_schema.allowed_for(column) - set(required))
            detail = []
            if required:
                detail.append(f"required: {', '.join(required)}")
            if optional:
                detail.append(f"allowed: {', '.join(optional)}")
            lines.append(f"  {column} — {'; '.join(detail)}")
        tag_sections.append("\n".join(lines))
    if tag_sections:
        parts.append(_section("Derived tag schemas", "\n".join(tag_sections)))

    if session is not None:
        parts.append(_section("Design session log", session.render()))

    return "\n\n".join(parts) + "\n"
