"""Step 4: quality view integration and application view refinement.

"Much like schema integration, when the design is large and more than
one set of application requirements is involved, multiple quality views
may result.  To eliminate redundancy and inconsistency, these views must
be consolidated into a single global view."  (§3.4)

Three mechanisms are implemented:

1. **Union with deduplication** — identical (target, indicator)
   annotations from different views merge, keeping the union of their
   parameter provenance.
2. **Derivability analysis** — a registry of
   :class:`DerivabilityRule` objects captures facts like *age is
   computable from creation time (given current time)*; when both
   indicators annotate the same target, the derived one is dropped in
   favour of the base (the paper's worked example).
3. **Application view refinement** — Premise 1.1 reclassification: a
   quality indicator may be promoted into an application attribute (the
   paper's *company name* example), or an application attribute demoted
   to an indicator.  Refinements are explicit design-team decisions
   passed into :func:`integrate_views`.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.core.terminology import QualityIndicatorSpec
from repro.core.views import (
    ApplicationView,
    IndicatorAnnotation,
    QualitySchema,
    QualityView,
)
from repro.er.model import ERAttribute, ERSchema
from repro.errors import ViewIntegrationError


class DerivabilityRule:
    """Records that ``derived`` is computable from ``base``.

    When both appear at the same target during integration, ``derived``
    is removed and a note documents the decision.
    """

    __slots__ = ("derived", "base", "explanation")

    def __init__(self, derived: str, base: str, explanation: str) -> None:
        self.derived = derived
        self.base = base
        self.explanation = explanation

    def __repr__(self) -> str:
        return f"DerivabilityRule({self.derived!r} ← {self.base!r})"


#: Built-in rules, led by the paper's own example: "one quality view may
#: have age as an indicator, whereas another ... creation time.  The
#: design team may choose creation time ... because age can be computed
#: given current time and creation time."
DEFAULT_DERIVABILITY_RULES: tuple[DerivabilityRule, ...] = (
    DerivabilityRule(
        "age",
        "creation_time",
        "age is computable as (current time − creation time)",
    ),
    DerivabilityRule(
        "coverage_ratio",
        "population_method",
        "coverage can be estimated from how the table was populated",
    ),
)


class Refinement:
    """One application-view refinement decision (Premise 1.1).

    ``kind`` is ``"promote"`` (indicator → application attribute, the
    paper's company-name example) or ``"demote"`` (application attribute
    → quality indicator, the bank-teller example).
    """

    PROMOTE = "promote"
    DEMOTE = "demote"

    def __init__(
        self,
        kind: str,
        owner: str,
        name: str,
        rationale: str = "",
        domain: str = "STR",
    ) -> None:
        if kind not in (self.PROMOTE, self.DEMOTE):
            raise ViewIntegrationError(
                f"unknown refinement kind {kind!r} (promote/demote)"
            )
        self.kind = kind
        self.owner = owner  # entity or relationship name
        self.name = name  # indicator or attribute name
        self.rationale = rationale
        self.domain = domain

    def describe(self) -> str:
        if self.kind == self.PROMOTE:
            action = (
                f"promote quality indicator {self.name!r} on {self.owner!r} "
                f"to an application attribute"
            )
        else:
            action = (
                f"demote application attribute {self.owner}.{self.name} "
                f"to a quality indicator"
            )
        if self.rationale:
            action += f" — {self.rationale}"
        return action

    def __repr__(self) -> str:
        return f"Refinement({self.describe()})"


def _check_same_application_view(views: Sequence[QualityView]) -> ApplicationView:
    """All component views must share one application view structure.

    Full ER *schema integration* across different application views is
    classical database design ([2], cited by the paper) and out of the
    methodology's scope; Step 4 integrates *quality* views over a common
    application view.
    """
    first = views[0].application_view
    reference = first.er_schema.to_dict()
    for view in views[1:]:
        if view.application_view.er_schema.to_dict() != reference:
            raise ViewIntegrationError(
                "component quality views are defined over different "
                "application views; integrate the application views first "
                "(schema integration, Batini et al. [2])"
            )
    return first


def _dedupe_annotations(
    views: Sequence[QualityView], notes: list[str]
) -> list[IndicatorAnnotation]:
    merged: dict[tuple[tuple[str, ...], str], IndicatorAnnotation] = {}
    conflicts: list[str] = []
    for view in views:
        for annotation in view.annotations:
            key = (annotation.target, annotation.indicator.name)
            existing = merged.get(key)
            if existing is None:
                merged[key] = annotation
                continue
            if existing.indicator.domain != annotation.indicator.domain:
                conflicts.append(
                    f"indicator {annotation.indicator.name!r} at "
                    f"{'.'.join(annotation.target)} has conflicting domains "
                    f"({existing.indicator.domain.name} vs "
                    f"{annotation.indicator.domain.name})"
                )
                continue
            merged[key] = IndicatorAnnotation(
                existing.target,
                existing.indicator,
                derived_from=tuple(
                    dict.fromkeys(existing.derived_from + annotation.derived_from)
                ),
                rationale=existing.rationale or annotation.rationale,
                mandatory=existing.mandatory or annotation.mandatory,
            )
            notes.append(
                f"merged duplicate annotation {annotation.indicator.name!r} at "
                f"{'.'.join(annotation.target)} from multiple views"
            )
    if conflicts:
        raise ViewIntegrationError(
            "quality view integration found domain conflicts: "
            + "; ".join(conflicts)
        )
    return list(merged.values())


def _apply_derivability(
    annotations: list[IndicatorAnnotation],
    rules: Sequence[DerivabilityRule],
    notes: list[str],
) -> list[IndicatorAnnotation]:
    by_target: dict[tuple[str, ...], set[str]] = {}
    for annotation in annotations:
        by_target.setdefault(annotation.target, set()).add(
            annotation.indicator.name
        )
    keep: list[IndicatorAnnotation] = []
    for annotation in annotations:
        dropped = False
        for rule in rules:
            present = by_target[annotation.target]
            if (
                annotation.indicator.name == rule.derived
                and rule.base in present
            ):
                base_annotation = next(
                    a
                    for a in annotations
                    if a.target == annotation.target
                    and a.indicator.name == rule.base
                )
                base_annotation.derived_from = tuple(
                    dict.fromkeys(
                        base_annotation.derived_from + annotation.derived_from
                    )
                )
                notes.append(
                    f"dropped {rule.derived!r} at "
                    f"{'.'.join(annotation.target)} in favour of "
                    f"{rule.base!r}: {rule.explanation}"
                )
                dropped = True
                break
        if not dropped:
            keep.append(annotation)
    return keep


def _apply_refinements(
    application_view: ApplicationView,
    annotations: list[IndicatorAnnotation],
    refinements: Sequence[Refinement],
    notes: list[str],
) -> tuple[ApplicationView, list[IndicatorAnnotation]]:
    if not refinements:
        return application_view, annotations
    er_schema = application_view.er_schema.copy()
    result = list(annotations)
    for refinement in refinements:
        kind, _ = er_schema.resolve_target((refinement.owner,))
        if kind not in ("entity", "relationship"):  # pragma: no cover
            raise ViewIntegrationError(
                f"refinement owner {refinement.owner!r} is not an entity "
                f"or relationship"
            )
        owner_obj = (
            er_schema.entity(refinement.owner)
            if kind == "entity"
            else er_schema.relationship(refinement.owner)
        )
        if refinement.kind == Refinement.PROMOTE:
            victims = [
                a
                for a in result
                if a.target[0] == refinement.owner
                and a.indicator.name == refinement.name
            ]
            if not victims:
                raise ViewIntegrationError(
                    f"cannot promote {refinement.name!r}: no such indicator "
                    f"annotation under {refinement.owner!r}"
                )
            domain = victims[0].indicator.domain
            owner_obj.add_attribute(ERAttribute(refinement.name, domain))
            result = [a for a in result if a not in victims]
        else:  # DEMOTE
            attribute = owner_obj.attribute(refinement.name)
            if kind == "entity" and refinement.name in owner_obj.key:
                raise ViewIntegrationError(
                    f"cannot demote key attribute {refinement.name!r} of "
                    f"{refinement.owner!r}"
                )
            owner_obj.remove_attribute(refinement.name)
            result = [
                a
                for a in result
                if a.target != (refinement.owner, refinement.name)
            ]
            result.append(
                IndicatorAnnotation(
                    (refinement.owner,),
                    QualityIndicatorSpec(
                        refinement.name,
                        attribute.domain,
                        doc=refinement.rationale
                        or f"demoted from application attribute "
                        f"{refinement.owner}.{refinement.name}",
                    ),
                    rationale=refinement.rationale,
                    mandatory=False,
                )
            )
        notes.append(refinement.describe())
    refined_view = ApplicationView(er_schema, application_view.requirements_doc)
    return refined_view, result


def integrate_views(
    quality_views: Sequence[QualityView],
    rules: Sequence[DerivabilityRule] = DEFAULT_DERIVABILITY_RULES,
    refinements: Sequence[Refinement] = (),
) -> QualitySchema:
    """Consolidate quality views into one integrated quality schema.

    Order of operations: structural check → union/dedup → derivability
    reduction → application-view refinement.  Every decision taken is
    recorded in the schema's ``integration_notes``.
    """
    if not quality_views:
        raise ViewIntegrationError("integration requires at least one quality view")
    notes: list[str] = []
    application_view = _check_same_application_view(quality_views)
    if len(quality_views) == 1:
        notes.append(
            "single quality view: no cross-view integration necessary (§3.4)"
        )
    annotations = _dedupe_annotations(quality_views, notes)
    annotations = _apply_derivability(annotations, rules, notes)
    application_view, annotations = _apply_refinements(
        application_view, annotations, refinements, notes
    )
    return QualitySchema(
        application_view,
        annotations,
        component_views=quality_views,
        integration_notes=notes,
    )
