"""Indicator → parameter value mappings and per-user quality standards.

§1.3: "User-defined functions may be used to map quality indicator
values to quality parameter values.  For example, because the source is
Wall Street Journal, an investor may conclude that data credibility is
high."

Premises 2.1/2.2/3 add that these mappings and the acceptability
thresholds built on them vary per user and per data.  This module
implements both layers:

- :class:`ParameterMapping` — a named function from a cell's indicator
  values (plus optional context such as the current date) to a
  parameter value;
- :class:`UserQualityStandard` — one user's collection of mappings plus
  acceptance predicates, evaluable over tagged relations.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Mapping, Optional, Sequence

from repro.errors import AssessmentError, MethodologyError
from repro.tagging.cell import QualityCell
from repro.tagging.relation import TaggedRelation, TaggedRow

#: Signature of a mapping function: (indicator values, context) → value.
MappingFunction = Callable[[Mapping[str, Any], Mapping[str, Any]], Any]


class ParameterMapping:
    """A user-defined function deriving one parameter value from tags.

    Parameters
    ----------
    parameter:
        Name of the quality parameter being derived.
    func:
        ``func(tags, context)`` where ``tags`` maps indicator name →
        tag value for one cell, and ``context`` supplies environment
        values (e.g. ``{"today": date(...)}``).  May return any value
        (bool, float score, label); returning None means "cannot
        determine" (e.g. required tags missing).
    uses:
        Indicator names the function reads — documented so the
        specification can check the mapping is satisfiable under the
        quality schema.
    doc:
        Human-readable statement of the rule.
    """

    def __init__(
        self,
        parameter: str,
        func: MappingFunction,
        uses: Sequence[str] = (),
        doc: str = "",
    ) -> None:
        if not parameter:
            raise MethodologyError("parameter mapping must name its parameter")
        self.parameter = parameter
        self.func = func
        self.uses = tuple(uses)
        self.doc = doc

    def evaluate(
        self,
        cell: QualityCell,
        context: Optional[Mapping[str, Any]] = None,
    ) -> Any:
        """Derive the parameter value for one cell (None if undetermined)."""
        return self.func(cell.tags_dict(), dict(context or {}))

    def describe(self) -> str:
        uses = f" (uses: {', '.join(self.uses)})" if self.uses else ""
        return f"{self.parameter}{uses}: {self.doc or '(no description)'}"

    def __repr__(self) -> str:
        return f"ParameterMapping({self.parameter!r})"


class UserQualityStandard:
    """One user's quality definitions and acceptance thresholds.

    Premise 2.2's example: an investor considers a ten-minute delay
    timely; a real-time trader does not.  Both users share indicator
    *tags*; they differ in mappings and acceptance predicates.

    Parameters
    ----------
    user:
        The user's name (for reports).
    mappings:
        The user's parameter mappings.
    acceptance:
        Maps parameter name → predicate over the derived parameter
        value; a cell is acceptable when every listed parameter's
        derived value passes its predicate.  A derived value of None
        (undetermined) fails acceptance — unknown quality is treated
        conservatively.
    """

    def __init__(
        self,
        user: str,
        mappings: Iterable[ParameterMapping] = (),
        acceptance: Optional[Mapping[str, Callable[[Any], bool]]] = None,
    ) -> None:
        if not user:
            raise MethodologyError("quality standard must name its user")
        self.user = user
        self._mappings: dict[str, ParameterMapping] = {}
        for mapping in mappings:
            self.add_mapping(mapping)
        self._acceptance: dict[str, Callable[[Any], bool]] = dict(acceptance or {})
        unknown = set(self._acceptance) - set(self._mappings)
        if unknown:
            raise MethodologyError(
                f"acceptance thresholds for unmapped parameters: {sorted(unknown)}"
            )

    # -- construction ---------------------------------------------------------

    def add_mapping(self, mapping: ParameterMapping) -> None:
        """Register a mapping (one per parameter)."""
        if mapping.parameter in self._mappings:
            raise MethodologyError(
                f"user {self.user!r} already maps parameter "
                f"{mapping.parameter!r}"
            )
        self._mappings[mapping.parameter] = mapping

    def set_acceptance(
        self, parameter: str, predicate: Callable[[Any], bool]
    ) -> None:
        """Set the acceptance predicate for one mapped parameter."""
        if parameter not in self._mappings:
            raise MethodologyError(
                f"user {self.user!r} has no mapping for parameter {parameter!r}"
            )
        self._acceptance[parameter] = predicate

    @property
    def parameters(self) -> tuple[str, ...]:
        return tuple(sorted(self._mappings))

    def mapping(self, parameter: str) -> ParameterMapping:
        """Look up the mapping for one parameter."""
        try:
            return self._mappings[parameter]
        except KeyError:
            raise AssessmentError(
                f"user {self.user!r} defines no mapping for {parameter!r}"
            ) from None

    # -- evaluation -----------------------------------------------------------------

    def evaluate_cell(
        self,
        cell: QualityCell,
        context: Optional[Mapping[str, Any]] = None,
    ) -> dict[str, Any]:
        """Derive every mapped parameter's value for one cell."""
        return {
            name: mapping.evaluate(cell, context)
            for name, mapping in self._mappings.items()
        }

    def accepts_cell(
        self,
        cell: QualityCell,
        context: Optional[Mapping[str, Any]] = None,
    ) -> bool:
        """True if the cell passes every acceptance predicate."""
        for parameter, predicate in self._acceptance.items():
            value = self._mappings[parameter].evaluate(cell, context)
            if value is None or not predicate(value):
                return False
        return True

    def acceptance_rate(
        self,
        relation: TaggedRelation,
        column: str,
        context: Optional[Mapping[str, Any]] = None,
    ) -> float:
        """Fraction of ``column`` cells this user accepts (0 if empty)."""
        relation.schema.column(column)
        if not len(relation):
            return 0.0
        accepted = sum(
            1 for row in relation if self.accepts_cell(row[column], context)
        )
        return accepted / len(relation)

    def filter_relation(
        self,
        relation: TaggedRelation,
        column: str,
        context: Optional[Mapping[str, Any]] = None,
    ) -> TaggedRelation:
        """Rows whose ``column`` cell this user accepts."""
        from repro.tagging import algebra

        relation.schema.column(column)
        return algebra.select(
            relation, lambda row: self.accepts_cell(row[column], context)
        )

    def __repr__(self) -> str:
        return (
            f"UserQualityStandard({self.user!r}, "
            f"parameters={list(self.parameters)})"
        )


def compare_standards(
    standards: Sequence[UserQualityStandard],
    relation: TaggedRelation,
    column: str,
    context: Optional[Mapping[str, Any]] = None,
) -> dict[str, float]:
    """Acceptance-rate matrix across users (Premises 2.1/2.2 made visible).

    Returns ``{user: acceptance_rate}`` over the same data — different
    users accept different fractions because their standards differ.
    """
    return {
        standard.user: standard.acceptance_rate(relation, column, context)
        for standard in standards
    }


# ---------------------------------------------------------------------------
# Ready-made mapping builders for the paper's worked examples
# ---------------------------------------------------------------------------


def credibility_from_source(
    ratings: Mapping[str, float], default: Optional[float] = None
) -> ParameterMapping:
    """Credibility derived from the ``source`` tag via a rating table.

    The paper's example: source = Wall Street Journal ⇒ credibility high.
    """

    def func(tags: Mapping[str, Any], _context: Mapping[str, Any]) -> Optional[float]:
        source = tags.get("source")
        if source is None:
            return default
        return ratings.get(source, default)

    return ParameterMapping(
        "credibility",
        func,
        uses=("source",),
        doc="rating table over the source indicator",
    )


def timeliness_from_age(max_age_days: float) -> ParameterMapping:
    """Timeliness as a boolean: the ``age`` tag must not exceed a bound."""

    def func(tags: Mapping[str, Any], _context: Mapping[str, Any]) -> Optional[bool]:
        age = tags.get("age")
        if age is None:
            return None
        return age <= max_age_days

    return ParameterMapping(
        "timeliness",
        func,
        uses=("age",),
        doc=f"data no older than {max_age_days} days is timely",
    )


def timeliness_from_creation_time(max_age_days: float) -> ParameterMapping:
    """Timeliness from ``creation_time`` and a ``today`` context value.

    Demonstrates the integration result that age is derivable: the
    mapping computes age = today − creation_time on the fly.
    """

    def func(tags: Mapping[str, Any], context: Mapping[str, Any]) -> Optional[bool]:
        created = tags.get("creation_time")
        today = context.get("today")
        if created is None or today is None:
            return None
        return (today - created).days <= max_age_days

    return ParameterMapping(
        "timeliness",
        func,
        uses=("creation_time",),
        doc=(
            f"data created within the last {max_age_days} days is timely "
            f"(age derived from creation_time and today)"
        ),
    )
