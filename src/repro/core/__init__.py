"""The paper's contribution: data quality requirements analysis & modeling.

This package implements §1.3's terms and definitions, §2's premises as
executable analyses, and §3's four-step methodology:

1. :class:`~repro.core.steps.Step1ApplicationView` — classical ER
   modeling produces the *application view*;
2. :class:`~repro.core.steps.Step2QualityParameters` — subjective
   quality parameters are elicited (with the Appendix-A candidate
   catalog) and attached to view components, producing the
   *parameter view*;
3. :class:`~repro.core.steps.Step3QualityIndicators` — parameters are
   operationalized into objective, taggable quality indicators,
   producing the *quality view*;
4. :class:`~repro.core.steps.Step4ViewIntegration` — multiple quality
   views are consolidated (redundancy/derivability/conflict analysis and
   application-view refinement), producing the integrated
   *quality schema*.

:class:`~repro.core.methodology.DataQualityModeling` orchestrates the
pipeline (Figure 2) and emits the quality-requirements specification
document.
"""

from repro.core.terminology import (
    AttributeKind,
    QualityAttribute,
    QualityIndicatorSpec,
    QualityParameter,
    QualityRequirement,
)
from repro.core.catalog import CandidateAttribute, CandidateCatalog, default_catalog
from repro.core.views import (
    ApplicationView,
    IndicatorAnnotation,
    ParameterAnnotation,
    ParameterView,
    QualitySchema,
    QualityView,
)
from repro.core.steps import (
    Step1ApplicationView,
    Step2QualityParameters,
    Step3QualityIndicators,
    Step4ViewIntegration,
)
from repro.core.methodology import DataQualityModeling, DesignSession
from repro.core.mapping import ParameterMapping, UserQualityStandard

__all__ = [
    "ApplicationView",
    "AttributeKind",
    "CandidateAttribute",
    "CandidateCatalog",
    "DataQualityModeling",
    "DesignSession",
    "IndicatorAnnotation",
    "ParameterAnnotation",
    "ParameterMapping",
    "ParameterView",
    "QualityAttribute",
    "QualityIndicatorSpec",
    "QualityParameter",
    "QualityRequirement",
    "QualitySchema",
    "QualityView",
    "Step1ApplicationView",
    "Step2QualityParameters",
    "Step3QualityIndicators",
    "Step4ViewIntegration",
    "UserQualityStandard",
    "default_catalog",
]
