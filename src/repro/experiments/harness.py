"""Small experiment-result plumbing shared by the benchmarks."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Optional


@dataclass
class ExperimentResult:
    """The outcome of one experiment run.

    ``artifact`` is the regenerated table/figure text; ``data`` holds
    the raw numbers for assertions; ``checks`` records named shape
    checks (who wins, crossovers) with their pass/fail status.
    """

    experiment_id: str
    title: str
    artifact: str
    data: dict[str, Any] = field(default_factory=dict)
    checks: dict[str, bool] = field(default_factory=dict)

    @property
    def all_checks_pass(self) -> bool:
        return all(self.checks.values())

    def check(self, name: str, passed: bool) -> bool:
        """Record one shape check; returns its status."""
        self.checks[name] = bool(passed)
        return self.checks[name]

    def render(self) -> str:
        lines = [f"=== {self.experiment_id}: {self.title} ==="]
        lines.append(self.artifact)
        if self.checks:
            lines.append("")
            lines.append("Shape checks:")
            for name, passed in self.checks.items():
                lines.append(f"  [{'PASS' if passed else 'FAIL'}] {name}")
        return "\n".join(lines)


def run_experiment(
    experiment_id: str,
    title: str,
    build: Callable[[], tuple[str, dict[str, Any]]],
) -> ExperimentResult:
    """Run one experiment builder and wrap its output.

    ``build`` returns (artifact text, data dict).
    """
    artifact, data = build()
    return ExperimentResult(experiment_id, title, artifact, data)


def bench_record(
    bench: str, n: int, seconds: float, **extra: Any
) -> dict[str, Any]:
    """One benchmark measurement with the stable JSON schema.

    Every record carries ``{"bench", "n", "seconds", "ops_per_sec"}``;
    callers may attach extra keys (e.g. ``speedup``) but must not
    change the meaning of the stable four.
    """
    if n <= 0:
        raise ValueError(f"bench {bench!r}: n must be positive, got {n}")
    if seconds <= 0:
        raise ValueError(
            f"bench {bench!r}: seconds must be positive, got {seconds}"
        )
    return {
        "bench": bench,
        "n": n,
        "seconds": seconds,
        "ops_per_sec": n / seconds,
        **extra,
    }


def write_bench_json(
    filename: str,
    records: list[dict[str, Any]],
    directory: Optional[Path] = None,
) -> Path:
    """Write benchmark records to ``directory/filename`` (repo root by
    default: two levels above the ``benchmarks/`` conftest's parent,
    resolved by the caller).  Returns the written path.

    The on-disk format is owned by the observability exporter
    (:func:`repro.obs.export.write_bench_records`); this wrapper exists
    so benchmark code keeps one import surface.
    """
    from repro.obs.export import write_bench_records

    return write_bench_records(filename, records, directory)
