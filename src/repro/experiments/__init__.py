"""Experiment harness: canonical scenarios, runners, and reporting.

The benchmarks under ``benchmarks/`` and the examples under
``examples/`` share this package so every table and figure is generated
by exactly one implementation.

- :mod:`repro.experiments.scenarios` — the paper's worked examples as
  constructors (Table 1, Table 2, the Figure 3 trading schema, the full
  Figures 4-5 methodology run, the §4 clearinghouse, and the scaled
  synthetic variants the quantitative experiments use);
- :mod:`repro.experiments.reporting` — deterministic text tables and
  series renderers;
- :mod:`repro.experiments.harness` — small experiment-result plumbing.
"""

from repro.experiments.harness import ExperimentResult, run_experiment
from repro.experiments.reporting import TextTable, render_series

__all__ = [
    "ExperimentResult",
    "TextTable",
    "render_series",
    "run_experiment",
]
