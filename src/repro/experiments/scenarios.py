"""The paper's worked examples and the scaled synthetic scenarios.

Canonical artifacts (exact paper content):

- :func:`table1_relation` / :func:`table2_relation` — the customer
  relation, untagged and tagged (§1.2, Tables 1-2);
- :func:`trading_er_schema` — the Figure 3 application view;
- :func:`run_trading_methodology` — the full Steps 1-4 run whose
  intermediate artifacts are Figures 4 and 5.

Scaled synthetic scenarios (for the quantitative experiments):

- :func:`customer_database` — an n-company manufactured customer DB
  with heterogeneous sources (E2, heterogeneity analyses);
- :func:`clearinghouse` — the §4 address clearinghouse with
  mass-mailing / fund-raising profiles (E1);
- :func:`trading_ticks` — price ticks with varying ages (E6);
- :func:`duplicated_customers` — error-injected duplicates (E7);
- :func:`degraded_federation` — unreliable quote feeds with injected
  faults for the fault-tolerant acquisition experiment (E4).
"""

from __future__ import annotations

import datetime as _dt
import random
from typing import Any, Optional

from repro.core.methodology import DataQualityModeling
from repro.er.model import (
    Cardinality,
    Entity,
    ERAttribute,
    ERSchema,
    Participant,
    Relationship,
)
from repro.manufacturing.collection import standard_methods
from repro.manufacturing.generator import make_address_book, make_companies
from repro.manufacturing.pipeline import ManufacturingPipeline
from repro.manufacturing.sources import DataSource
from repro.manufacturing.world import (
    AttributeSpec,
    World,
    choice_replacement,
    integer_step,
)
from repro.quality.profiles import ApplicationProfile, ProfileRegistry
from repro.relational.relation import Relation
from repro.relational.schema import schema
from repro.tagging.cell import QualityCell
from repro.tagging.indicators import IndicatorDefinition, IndicatorValue, TagSchema
from repro.tagging.query import IndicatorConstraint, QualityFilter
from repro.tagging.relation import TaggedRelation

# ---------------------------------------------------------------------------
# Tables 1 and 2 (§1.2)
# ---------------------------------------------------------------------------

CUSTOMER_SCHEMA = schema(
    "customer",
    [("co_name", "STR"), ("address", "STR"), ("employees", "INT")],
    key=["co_name"],
    doc="Corporate customer information (the paper's running small example)",
)


def table1_relation() -> Relation:
    """Table 1: customer information, untagged."""
    return Relation.from_tuples(
        CUSTOMER_SCHEMA,
        [
            ("Fruit Co", "12 Jay St", 4004),
            ("Nut Co", "62 Lois Av", 700),
        ],
    )


def customer_tag_schema() -> TagSchema:
    """The tag schema behind Table 2: (creation_time, source) per cell."""
    return TagSchema(
        indicators=[
            IndicatorDefinition("creation_time", "DATE", "when recorded"),
            IndicatorDefinition("source", "STR", "who recorded it"),
        ],
        allowed={
            "address": ["creation_time", "source"],
            "employees": ["creation_time", "source"],
        },
    )


def table2_relation() -> TaggedRelation:
    """Table 2: the same customers with the paper's exact quality tags."""
    relation = TaggedRelation(CUSTOMER_SCHEMA, customer_tag_schema())
    relation.insert(
        {
            "co_name": "Fruit Co",
            "address": QualityCell(
                "12 Jay St",
                [
                    IndicatorValue("creation_time", _dt.date(1991, 1, 2)),
                    IndicatorValue("source", "sales"),
                ],
            ),
            "employees": QualityCell(
                4004,
                [
                    IndicatorValue("creation_time", _dt.date(1991, 10, 3)),
                    IndicatorValue("source", "Nexis"),
                ],
            ),
        }
    )
    relation.insert(
        {
            "co_name": "Nut Co",
            "address": QualityCell(
                "62 Lois Av",
                [
                    IndicatorValue("creation_time", _dt.date(1991, 10, 24)),
                    IndicatorValue("source", "acct'g"),
                ],
            ),
            "employees": QualityCell(
                700,
                [
                    IndicatorValue("creation_time", _dt.date(1991, 10, 9)),
                    IndicatorValue("source", "estimate"),
                ],
            ),
        }
    )
    return relation


# ---------------------------------------------------------------------------
# Figure 3: the stock-trading application view
# ---------------------------------------------------------------------------


def trading_er_schema() -> ERSchema:
    """The Figure 3 ER schema: client, company stock, and trade."""
    er = ERSchema(
        "trading",
        doc=(
            "A stock trader keeps information about companies, and trades "
            "of company stocks by clients (§3.1)."
        ),
    )
    er.add_entity(
        Entity(
            "client",
            attributes=[
                ERAttribute("account_number", "STR", "client identifier"),
                ERAttribute("name", "STR"),
                ERAttribute("address", "STR"),
                ERAttribute("telephone", "STR"),
            ],
            key=["account_number"],
        )
    )
    er.add_entity(
        Entity(
            "company_stock",
            attributes=[
                ERAttribute(
                    "ticker_symbol",
                    "STR",
                    "short identifier used by the stock exchange",
                ),
                ERAttribute("share_price", "FLOAT"),
                ERAttribute("research_report", "STR"),
            ],
            key=["ticker_symbol"],
        )
    )
    er.add_relationship(
        Relationship(
            "trade",
            participants=[
                Participant("client", Cardinality.MANY),
                Participant("company_stock", Cardinality.MANY),
            ],
            attributes=[
                ERAttribute("date", "DATE"),
                ERAttribute("quantity", "INT"),
                ERAttribute("trade_price", "FLOAT"),
            ],
            doc="a buy/sell of company stock by a client",
        )
    )
    return er


#: Step 2 parameter requests for the trading example (Figure 4 content).
TRADING_PARAMETER_REQUESTS: tuple[tuple[tuple[str, ...], str, str], ...] = (
    (
        ("company_stock", "share_price"),
        "timeliness",
        "the user is concerned with how old the price data is",
    ),
    (
        ("company_stock", "research_report"),
        "credibility",
        "whose analysis is this?",
    ),
    (
        ("company_stock", "research_report"),
        "cost",
        "the user is concerned with the price of the data",
    ),
    (
        ("company_stock", "research_report"),
        "interpretability",
        "reports arrive in multiple stored formats",
    ),
    (
        ("client", "telephone"),
        "accuracy",
        "multiple collection mechanisms are used for telephone numbers",
    ),
    (
        ("trade",),
        "inspection",
        "trade records must be verifiable (the '√ inspection' requirement)",
    ),
)

#: Step 3 explicit operationalizations reproducing Figure 5 exactly.
def trading_indicator_decisions() -> dict[tuple[tuple[str, ...], str], list[Any]]:
    """The design team's Figure 5 choices, expressed as Step 3 decisions."""
    from repro.core.terminology import QualityIndicatorSpec

    return {
        (("company_stock", "share_price"), "timeliness"): [
            QualityIndicatorSpec(
                "age", "FLOAT", measure="days since quote", doc="age of the datum"
            )
        ],
        (("company_stock", "research_report"), "credibility"): [
            QualityIndicatorSpec(
                "analyst_name", "STR", doc="analyst credited for the report"
            )
        ],
        (("company_stock", "research_report"), "cost"): [
            QualityIndicatorSpec("price", "FLOAT", doc="monetary price of the data")
        ],
        (("company_stock", "research_report"), "interpretability"): [
            QualityIndicatorSpec(
                "media", "STR", doc="stored format: bitmap, ASCII, postscript"
            )
        ],
        (("client", "telephone"), "accuracy"): [
            QualityIndicatorSpec(
                "collection_method",
                "STR",
                doc="'over the phone' or 'from an information service'",
            )
        ],
        (("trade",), "inspection"): [
            QualityIndicatorSpec(
                "inspection",
                "STR",
                doc="inspection mechanism maintaining data reliability",
            )
        ],
    }


def run_trading_methodology() -> DataQualityModeling:
    """Run Steps 1-4 on the trading example; returns the loaded pipeline.

    The returned object carries the application view (Figure 3), the
    parameter view (Figure 4), the quality view (Figure 5), and the
    integrated quality schema.
    """
    modeling = DataQualityModeling()
    application_view = modeling.step1(
        trading_er_schema(),
        "Client is identified by an account number, and has a name, address "
        "and telephone number.  Company stock is identified by the ticker "
        "symbol, and has share price and research report.  A trade records "
        "date, quantity of shares, and trade price.",
    )
    parameter_view = modeling.step2(
        application_view, TRADING_PARAMETER_REQUESTS
    )
    quality_view = modeling.step3(
        parameter_view, decisions=trading_indicator_decisions(), auto=False
    )
    modeling.step4([quality_view])
    return modeling


# ---------------------------------------------------------------------------
# Scaled customer database (E2, heterogeneity)
# ---------------------------------------------------------------------------


def customer_database(
    n_companies: int = 200,
    seed: int = 11,
    simulated_days: int = 180,
) -> tuple[World, ManufacturingPipeline, TaggedRelation]:
    """A manufactured n-company customer database with mixed sources.

    Addresses come from the accurate, current accounting department;
    employee counts from a noisy, laggy estimation source — reproducing
    the §1.2 "disparate sources" situation at scale.
    """
    companies = make_companies(n_companies, seed=seed)
    address_pool = [values["address"] for values in companies.values()]
    world = World(
        _dt.date(1991, 1, 1),
        companies,
        specs=[
            AttributeSpec("employees", 0.01, integer_step(50)),
            AttributeSpec("address", 0.001, choice_replacement(address_pool)),
        ],
        seed=seed,
    )
    world.advance(simulated_days)
    methods = standard_methods(seed=seed)
    pipeline = ManufacturingPipeline(world, CUSTOMER_SCHEMA, "co_name")
    pipeline.assign(
        "address",
        DataSource("acct'g", world, error_rate=0.02, latency_days=3, seed=seed),
        methods["manual_entry"],
    )
    pipeline.assign(
        "employees",
        DataSource(
            "estimate", world, error_rate=0.30, latency_days=45, seed=seed + 1
        ),
        methods["over_the_phone"],
    )
    relation = pipeline.manufacture()
    return world, pipeline, relation


# ---------------------------------------------------------------------------
# §4: the address clearinghouse (E1)
# ---------------------------------------------------------------------------

ADDRESS_SCHEMA = schema(
    "address_book",
    [
        ("person_id", "STR"),
        ("name", "STR"),
        ("address", "STR"),
        ("city", "STR"),
    ],
    key=["person_id"],
    doc="An information clearinghouse for addresses of individuals (§4)",
)


def clearinghouse(
    n_people: int = 500,
    seed: int = 23,
    simulated_days: int = 365,
) -> tuple[World, ManufacturingPipeline, TaggedRelation, ProfileRegistry]:
    """The §4 clearinghouse: people, drifting addresses, graded profiles.

    Two sources feed addresses: a reliable postal feed and a cheap
    purchased list (higher error, long latency).  Two stored profiles
    reproduce §4's grades:

    - ``mass_mailing`` — no indicator constraints;
    - ``fund_raising`` — requires a reliable source and recent creation.
    """
    book = make_address_book(n_people, seed=seed)
    street_pool = sorted({values["address"] for values in book.values()})
    world = World(
        _dt.date(1990, 1, 1),
        book,
        specs=[
            AttributeSpec("address", 0.004, choice_replacement(street_pool)),
        ],
        seed=seed,
    )
    world.advance(simulated_days)
    methods = standard_methods(seed=seed)
    pipeline = ManufacturingPipeline(world, ADDRESS_SCHEMA, "person_id")
    rng = random.Random(seed)

    postal = DataSource(
        "postal_feed", world, error_rate=0.02, latency_days=7, seed=seed
    )
    purchased = DataSource(
        "purchased_list", world, error_rate=0.20, latency_days=180, seed=seed + 1
    )

    # Route name/city through the postal feed; addresses are split
    # between the two sources per person, mimicking a clearinghouse that
    # merged two acquisitions.  The split is realized by manufacturing
    # twice and interleaving rows.
    pipeline.assign("name", postal, methods["information_service"])
    pipeline.assign("city", postal, methods["information_service"])
    pipeline.assign("address", postal, methods["information_service"])
    relation_postal = pipeline.manufacture()

    pipeline_b = ManufacturingPipeline(
        world, ADDRESS_SCHEMA, "person_id", trail=pipeline.trail
    )
    pipeline_b.assign("name", purchased, methods["over_the_phone"])
    pipeline_b.assign("city", purchased, methods["over_the_phone"])
    pipeline_b.assign("address", purchased, methods["over_the_phone"])
    relation_purchased = pipeline_b.manufacture()
    pipeline.manufactured.extend(pipeline_b.manufactured)

    merged = TaggedRelation(ADDRESS_SCHEMA, relation_postal.tag_schema)
    for row_a, row_b in zip(relation_postal, relation_purchased):
        merged.insert(row_a if rng.random() < 0.5 else row_b)

    registry = ProfileRegistry()
    registry.register(
        ApplicationProfile(
            "mass_mailing",
            QualityFilter(name="mass_mailing"),
            "no need to reach the correct individual: no quality constraints",
        )
    )
    fresh_cutoff = world.today - _dt.timedelta(days=60)
    registry.register(
        ApplicationProfile(
            "fund_raising",
            QualityFilter(
                [
                    IndicatorConstraint("address", "source", "==", "postal_feed"),
                    IndicatorConstraint(
                        "address", "creation_time", ">=", fresh_cutoff
                    ),
                ],
                name="fund_raising",
            ),
            "sensitive application: constrain source and freshness",
        )
    )
    return world, pipeline, merged, registry


# ---------------------------------------------------------------------------
# Trading ticks with latency (E6)
# ---------------------------------------------------------------------------

TICK_SCHEMA = schema(
    "ticks",
    [("ticker", "STR"), ("price", "FLOAT")],
    doc="Share-price quotes with per-quote age tags",
)


def trading_ticks(n_ticks: int = 400, seed: int = 31) -> TaggedRelation:
    """Price quotes whose ``age`` tags span seconds to days.

    Ages are drawn from a long-tailed distribution (most quotes fresh,
    some stale) so different user standards accept visibly different
    fractions (Premise 2.2's investor vs. trader).
    """
    rng = random.Random(seed)
    tag_schema = TagSchema(
        indicators=[
            IndicatorDefinition("age", "FLOAT", "age of the quote in days"),
            IndicatorDefinition("source", "STR"),
        ],
        required={"price": ["age"]},
        allowed={"price": ["source"]},
    )
    relation = TaggedRelation(TICK_SCHEMA, tag_schema)
    tickers = [f"T{i:03d}" for i in range(25)]
    for _ in range(n_ticks):
        # Log-uniform ages from ~1 second to ~2 days (in days).
        age_days = 10 ** rng.uniform(-4.9, 0.3)
        relation.insert(
            {
                "ticker": rng.choice(tickers),
                "price": QualityCell(
                    round(rng.uniform(5, 500), 2),
                    [
                        IndicatorValue("age", age_days),
                        IndicatorValue(
                            "source",
                            rng.choice(["consolidated_feed", "delayed_feed"]),
                        ),
                    ],
                ),
            }
        )
    return relation


# ---------------------------------------------------------------------------
# Duplicated customers for record linkage (E7)
# ---------------------------------------------------------------------------


def duplicated_customers(
    n_base: int = 120,
    duplicate_fraction: float = 0.4,
    seed: int = 47,
) -> tuple[list[dict[str, Any]], int]:
    """Customer records with error-injected duplicates.

    Returns ``(records, n_duplicates)``; each record carries a hidden
    ``_entity`` field naming its true identity (used only by the
    evaluation, never by the linkage model).
    """
    from repro.manufacturing.errorsim import (
        dropped_character,
        transposition,
        typo,
    )

    rng = random.Random(seed)
    companies = make_companies(n_base, seed=seed)
    records: list[dict[str, Any]] = []
    for name, values in companies.items():
        records.append(
            {
                "_entity": name,
                "co_name": name,
                "address": values["address"],
                "employees": values["employees"],
            }
        )
    injectors = [typo, transposition, dropped_character]
    n_duplicates = int(n_base * duplicate_fraction)
    base_names = list(companies)
    for i in range(n_duplicates):
        original = companies[base_names[i % len(base_names)]]
        name = base_names[i % len(base_names)]
        # Name: one to three keying errors.
        corrupt_name = name
        for _ in range(rng.randint(1, 3)):
            corrupt_name = rng.choice(injectors)(rng, corrupt_name)
        # Address: usually a keying error; sometimes the person moved and
        # the duplicate record has a *different* address entirely.
        if rng.random() < 0.25:
            corrupt_address = f"{rng.randint(1, 999)} Relocated Av"
        elif rng.random() < 0.6:
            corrupt_address = rng.choice(injectors)(rng, original["address"])
        else:
            corrupt_address = original["address"]
        # Employees: small drift usually, occasionally a stale figure far
        # from the current one.
        if rng.random() < 0.2:
            employees = int(original["employees"] * rng.uniform(1.6, 2.5))
        elif rng.random() < 0.5:
            employees = original["employees"] + rng.randint(-5, 5)
        else:
            employees = original["employees"]
        records.append(
            {
                "_entity": name,
                "co_name": corrupt_name,
                "address": corrupt_address,
                "employees": employees,
            }
        )
    rng.shuffle(records)
    return records, n_duplicates


# ---------------------------------------------------------------------------
# Degraded federation (E4)
# ---------------------------------------------------------------------------


def degraded_federation(
    n_sources: int = 3,
    n_rows: int = 200,
    error_rate: float = 0.3,
    seed: int = 53,
    max_attempts: int = 3,
):
    """E4: a federation of unreliable quote feeds with injected faults.

    ``n_sources`` quote databases share a ticker universe (so the union
    corroborates overlapping values) and each is wrapped as an
    :class:`~repro.polygen.faults.UnreliableSource` with a seeded
    injector at ``error_rate``.  All time — injected latency, retry
    backoff, acquisition stamps — flows through one shared
    :class:`~repro.polygen.retry.ManualClock`, so runs are instantaneous
    and fully reproducible.

    Returns ``(federation, injectors, clock)`` where ``injectors`` maps
    source name to its :class:`~repro.polygen.faults.FaultInjector`.
    """
    from repro.polygen.faults import FaultInjector
    from repro.polygen.federation import Federation
    from repro.polygen.retry import CircuitBreaker, ManualClock, RetryPolicy
    from repro.relational.catalog import Database

    rng = random.Random(seed)
    quote_schema = schema(
        "quotes", [("ticker", "STR"), ("price", "FLOAT")], key=["ticker"]
    )
    tickers = [f"T{i:04d}" for i in range(n_rows)]
    clock = ManualClock(start=0.0)
    federation = Federation("markets")
    injectors = {}
    for index in range(n_sources):
        name = f"feed{index}"
        db = Database(name)
        db.create_relation(quote_schema)
        for position, ticker in enumerate(tickers):
            # Sources mostly agree; occasional per-source disagreement
            # exercises conflict rows in the union.
            price = round(100.0 + (position * 37 % 400) / 4.0, 2)
            if rng.random() < 0.05:
                price = round(price + rng.uniform(0.5, 3.0), 2)
            db.insert("quotes", {"ticker": ticker, "price": price})
        federation.register(db, credibility=1.0 - index * 0.1)
        injectors[name] = FaultInjector(
            error_rate=error_rate, seed=seed + index, sleep=clock.sleep
        )
        federation.wrap_unreliable(
            name,
            injector=injectors[name],
            retry=RetryPolicy(
                max_attempts=max_attempts,
                base_delay=0.05,
                sleep=clock.sleep,
                clock=clock,
            ),
            breaker=CircuitBreaker(
                failure_threshold=max_attempts + 1,
                recovery_time=30.0,
                clock=clock,
            ),
            wall_clock=clock,
        )
    return federation, injectors, clock
