"""Naive (pre-optimization) reference operators for equivalence checks.

These functions reproduce the original execution strategy of the three
algebra layers: per-row column-name lookups (``column_names.index``-style
resolution through ``row[name]``), dict round-trips between operators,
and re-validation of every value and tag through the public ``insert``
path.  They are deliberately *slow but obviously correct*, and exist for
two purposes:

- the property tests in ``tests/*/test_fastpath.py`` assert the fast
  paths in :mod:`repro.relational.algebra`, :mod:`repro.tagging.algebra`
  and :mod:`repro.polygen.algebra` return identical results;
- the benchmark suite measures speedup of the fast path against these
  as the "naive" baseline (``BENCH_E2.json`` / ``BENCH_E3.json``).

Do not use these in application code.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence

from repro.errors import QueryError
from repro.polygen.model import PolygenCell, PolygenRelation, PolygenRow
from repro.relational.relation import Relation, Row
from repro.tagging.cell import QualityCell
from repro.tagging.query import QualityFilter
from repro.tagging.relation import TaggedRelation, TaggedRow

# -- plain relations ---------------------------------------------------------


def naive_select(relation: Relation, predicate: Callable[[Row], bool]) -> Relation:
    """σ via the public validating insert (original code path)."""
    result = relation.empty_like()
    for row in relation:
        if predicate(row):
            result.insert(row)
    return result


def naive_project(
    relation: Relation,
    columns: Sequence[str],
    new_name: Optional[str] = None,
) -> Relation:
    """π via per-row name lookups and dict rebuilds."""
    if not columns:
        raise QueryError("projection requires at least one column")
    out_schema = relation.schema.project(columns, new_name)
    result = Relation(out_schema)
    for row in relation:
        result.insert({c: row[c] for c in columns})
    return result


def naive_equi_join(
    left: Relation,
    right: Relation,
    on: Sequence[tuple[str, str]],
    new_name: Optional[str] = None,
) -> Relation:
    """Hash join materializing every output row as a dict."""
    if not on:
        raise QueryError("equi_join requires at least one column pair")
    for lcol, rcol in on:
        left.schema.column(lcol)
        right.schema.column(rcol)
    name = new_name or f"{left.schema.name}_join_{right.schema.name}"
    out_schema = left.schema.concat(right.schema, name)
    result = Relation(out_schema)
    names = out_schema.column_names

    index: dict[tuple[Any, ...], list[Row]] = {}
    for rrow in right:
        key = tuple(rrow[rcol] for _, rcol in on)
        index.setdefault(key, []).append(rrow)
    for lrow in left:
        key = tuple(lrow[lcol] for lcol, _ in on)
        for rrow in index.get(key, ()):
            result.insert(
                dict(zip(names, lrow.values_tuple() + rrow.values_tuple()))
            )
    return result


# -- tagged relations --------------------------------------------------------


def naive_tagged_select(
    relation: TaggedRelation, predicate: Callable[[TaggedRow], bool]
) -> TaggedRelation:
    """σ re-validating every surviving row's values and tags."""
    result = relation.empty_like()
    for row in relation:
        if predicate(row):
            result.insert(row)
    return result


def naive_tagged_project(
    relation: TaggedRelation,
    columns: Sequence[str],
    new_name: Optional[str] = None,
) -> TaggedRelation:
    """π via per-row name lookups into cell dicts."""
    if not columns:
        raise QueryError("projection requires at least one column")
    out_schema = relation.schema.project(columns, new_name)
    out_tags = relation.tag_schema.project(columns)
    result = TaggedRelation(out_schema, out_tags)
    for row in relation:
        result.insert({c: row[c] for c in columns})
    return result


def naive_tagged_equi_join(
    left: TaggedRelation,
    right: TaggedRelation,
    on: Sequence[tuple[str, str]],
    new_name: Optional[str] = None,
) -> TaggedRelation:
    """Hash join building per-row cell dicts and re-validating tags."""
    if not on:
        raise QueryError("equi_join requires at least one column pair")
    for lcol, rcol in on:
        left.schema.column(lcol)
        right.schema.column(rcol)
    name = new_name or f"{left.schema.name}_join_{right.schema.name}"
    out_schema = left.schema.concat(right.schema, name)
    left_map, right_map = left.schema.concat_maps(right.schema)
    out_tags = left.tag_schema.rename_columns(left_map).merge(
        right.tag_schema.rename_columns(right_map)
    )
    result = TaggedRelation(out_schema, out_tags)

    index: dict[tuple[Any, ...], list[TaggedRow]] = {}
    for rrow in right:
        key = tuple(_freeze(rrow.value(rcol)) for _, rcol in on)
        index.setdefault(key, []).append(rrow)
    for lrow in left:
        key = tuple(_freeze(lrow.value(lcol)) for lcol, _ in on)
        for rrow in index.get(key, ()):
            cells: dict[str, QualityCell] = {}
            for c in left.schema.column_names:
                cells[left_map[c]] = lrow[c]
            for c in right.schema.column_names:
                cells[right_map[c]] = rrow[c]
            result.insert(cells)
    return result


def naive_quality_filter(
    relation: TaggedRelation, quality_filter: QualityFilter
) -> TaggedRelation:
    """Grade filtering with per-row, per-constraint name lookups."""
    for constraint in quality_filter.constraints:
        relation.schema.column(constraint.column)
    return naive_tagged_select(relation, quality_filter.test)


# -- polygen relations -------------------------------------------------------


def naive_polygen_select(
    relation: PolygenRelation,
    predicate: Callable[[PolygenRow], bool],
    using: Sequence[str] = (),
) -> PolygenRelation:
    """σ with per-row name lookups for the examined columns."""
    for name in using:
        relation.schema.column(name)
    result = relation.empty_like()
    for row in relation:
        if predicate(row):
            examined: frozenset[str] = frozenset()
            for name in using:
                examined |= row[name].originating
            result.insert(row.with_intermediate(examined) if examined else row)
    return result


def naive_polygen_project(
    relation: PolygenRelation,
    columns: Sequence[str],
    new_name: Optional[str] = None,
) -> PolygenRelation:
    """π via per-row name lookups into cell dicts."""
    if not columns:
        raise QueryError("projection requires at least one column")
    out_schema = relation.schema.project(columns, new_name)
    result = PolygenRelation(out_schema)
    for row in relation:
        result.insert({c: row[c] for c in columns})
    return result


def naive_polygen_equi_join(
    left: PolygenRelation,
    right: PolygenRelation,
    on: Sequence[tuple[str, str]],
    new_name: Optional[str] = None,
) -> PolygenRelation:
    """Hash join with dict round-trips and per-cell re-validation."""
    if not on:
        raise QueryError("equi_join requires at least one column pair")
    for lcol, rcol in on:
        left.schema.column(lcol)
        right.schema.column(rcol)
    name = new_name or f"{left.schema.name}_join_{right.schema.name}"
    out_schema = left.schema.concat(right.schema, name)
    left_map, right_map = left.schema.concat_maps(right.schema)
    result = PolygenRelation(out_schema)

    index: dict[tuple[Any, ...], list[PolygenRow]] = {}
    for rrow in right:
        key = tuple(_freeze(rrow.value(rcol)) for _, rcol in on)
        index.setdefault(key, []).append(rrow)
    for lrow in left:
        key = tuple(_freeze(lrow.value(lcol)) for lcol, _ in on)
        for rrow in index.get(key, ()):
            examined: frozenset[str] = frozenset()
            for lcol, rcol in on:
                examined |= lrow[lcol].originating | rrow[rcol].originating
            cells: dict[str, PolygenCell] = {}
            for c in left.schema.column_names:
                cells[left_map[c]] = lrow[c].with_intermediate(examined)
            for c in right.schema.column_names:
                cells[right_map[c]] = rrow[c].with_intermediate(examined)
            result.insert(cells)
    return result


def _freeze(value: Any) -> Any:
    try:
        hash(value)
        return value
    except TypeError:
        return repr(value)
